//! Pipeline instruction generation (Fig. 7, step 6): lowering a [`Plan`]
//! into per-device instruction streams executable by the back-end.
//!
//! One stream is emitted per chain slot (a stage's replicas run in
//! lockstep, so one stream represents all of them). Streams contain the
//! paper's instruction set — micro-batch stage forwards/backwards (and
//! self-conditioning forwards), rendezvous send/receive between adjacent
//! stages, non-trainable forwards placed into bubbles, and the leftover
//! frozen tail — and can be replayed on the instruction-level simulator to
//! validate that the realised makespan matches the analytic schedule.

use crate::plan::Plan;
use dpipe_schedule::{OpKind, PipelineDirection, ScheduledOp};
use dpipe_sim::Instruction;

/// Deterministic rendezvous tag for a transfer.
fn tag(direction: PipelineDirection, kind: OpKind, micro_batch: usize, boundary: usize) -> u64 {
    let d = matches!(direction, PipelineDirection::Up) as u64;
    let k = match kind {
        OpKind::Forward => 0u64,
        OpKind::SelfCondForward => 1,
        OpKind::Backward => 2,
    };
    (d << 40) | (k << 32) | ((micro_batch as u64) << 16) | boundary as u64
}

/// Generates per-slot instruction streams realising the plan's iteration:
/// the pipelined trainable part, the bubble fills at their positions, and
/// the leftover frozen tail. Gradient synchronisation is overlappable
/// communication and is not represented in the compute streams.
pub fn generate_instructions(plan: &Plan) -> Vec<Vec<Instruction>> {
    let num_slots = plan.schedule.num_slots;
    // Per-slot ops in execution order.
    let mut per_slot: Vec<Vec<&ScheduledOp>> = vec![Vec::new(); num_slots];
    for op in &plan.schedule.ops {
        per_slot[op.op.slot].push(op);
    }
    for list in &mut per_slot {
        list.sort_by(|a, b| a.start.total_cmp(&b.start));
    }
    // Slot of each (direction, stage).
    let slot_of = |direction: PipelineDirection, stage: usize| -> Option<usize> {
        plan.schedule
            .ops
            .iter()
            .find(|o| o.op.direction == direction && o.op.stage == stage)
            .map(|o| o.op.slot)
    };
    let max_stage = |direction: PipelineDirection| -> usize {
        plan.schedule
            .ops
            .iter()
            .filter(|o| o.op.direction == direction)
            .map(|o| o.op.stage)
            .max()
            .unwrap_or(0)
    };

    // Fill items per slot, positioned by their bubble's start time.
    let mut fills: Vec<Vec<(f64, f64, String)>> = vec![Vec::new(); num_slots]; // (time, dur, label)
    for bf in &plan.fill.bubbles {
        let bubble = &plan.bubbles[bf.bubble_index];
        let mut t = bubble.start;
        for item in &bf.items {
            for &slot in &bubble.slots {
                fills[slot].push((
                    t,
                    item.duration,
                    format!("frozen c{} l{}", item.component.index(), item.layer),
                ));
            }
            t += item.duration;
        }
    }

    let mut streams: Vec<Vec<Instruction>> = Vec::with_capacity(num_slots);
    for slot in 0..num_slots {
        let mut prog: Vec<Instruction> = Vec::new();
        let mut fill_iter = {
            let mut f = std::mem::take(&mut fills[slot]);
            f.sort_by(|a, b| a.0.total_cmp(&b.0));
            f.into_iter().peekable()
        };
        for op in &per_slot[slot] {
            // Emit any fill work scheduled before this op starts.
            while let Some(&(t, dur, _)) = fill_iter.peek() {
                if t < op.start - 1e-12 {
                    let Some((_, _, label)) = fill_iter.next() else {
                        break;
                    };
                    prog.push(Instruction::Compute {
                        label,
                        seconds: dur,
                    });
                    let _ = (t, dur);
                } else {
                    break;
                }
            }
            let o = &op.op;
            let dir = o.direction;
            let last = max_stage(dir);
            match o.kind {
                OpKind::Forward | OpKind::SelfCondForward => {
                    if o.stage > 0 {
                        if let Some(peer) = slot_of(dir, o.stage - 1) {
                            prog.push(Instruction::Recv {
                                peer,
                                tag: tag(dir, o.kind, o.micro_batch, o.stage),
                            });
                        }
                    }
                    prog.push(Instruction::Compute {
                        label: format!("{} s{} mb{}", o.kind, o.stage, o.micro_batch),
                        seconds: op.end - op.start,
                    });
                    if o.stage < last {
                        if let Some(peer) = slot_of(dir, o.stage + 1) {
                            prog.push(Instruction::Send {
                                peer,
                                tag: tag(dir, o.kind, o.micro_batch, o.stage + 1),
                                seconds: 0.0,
                            });
                        }
                    }
                }
                OpKind::Backward => {
                    if o.stage < last {
                        if let Some(peer) = slot_of(dir, o.stage + 1) {
                            prog.push(Instruction::Recv {
                                peer,
                                tag: tag(dir, o.kind, o.micro_batch, o.stage),
                            });
                        }
                    }
                    prog.push(Instruction::Compute {
                        label: format!("B s{} mb{}", o.stage, o.micro_batch),
                        seconds: op.end - op.start,
                    });
                    if o.stage > 0 {
                        if let Some(peer) = slot_of(dir, o.stage - 1) {
                            prog.push(Instruction::Send {
                                peer,
                                tag: tag(dir, o.kind, o.micro_batch, o.stage - 1),
                                seconds: 0.0,
                            });
                        }
                    }
                }
            }
        }
        // Remaining fills (bubbles after the slot's last op).
        for (_, dur, label) in fill_iter {
            prog.push(Instruction::Compute {
                label,
                seconds: dur,
            });
        }
        // Leftover frozen tail runs on every slot.
        if plan.fill.leftover_time > 0.0 {
            prog.push(Instruction::Compute {
                label: "frozen leftover tail".to_owned(),
                seconds: plan.fill.leftover_time,
            });
        }
        streams.push(prog);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;
    use dpipe_sim::InstructionSim;

    fn plan_for(model: dpipe_model::ModelSpec, batch: u32) -> Plan {
        Planner::new(model, ClusterSpec::single_node(8))
            .plan(batch)
            .unwrap()
    }

    #[test]
    fn streams_execute_without_deadlock() {
        let plan = plan_for(zoo::stable_diffusion_v2_1(), 256);
        let streams = generate_instructions(&plan);
        assert_eq!(streams.len(), plan.schedule.num_slots);
        let (traces, makespan) = InstructionSim::run(&streams).unwrap();
        assert!(!traces.is_empty());
        assert!(makespan > 0.0);
    }

    #[test]
    fn makespan_matches_analytic_iteration() {
        let plan = plan_for(zoo::controlnet_v1_0(), 384);
        let streams = generate_instructions(&plan);
        let (_, makespan) = InstructionSim::run(&streams).unwrap();
        // Compute-side iteration: the analytic compute end plus the tail
        // (sync overlaps and is not in the streams). Rendezvous blocking
        // can add small serialisation relative to the analytic model.
        let analytic = plan.schedule.compute_end() + plan.fill.leftover_time;
        let rel = (makespan - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "instruction makespan {makespan} vs analytic {analytic} ({:.1}%)",
            rel * 100.0
        );
    }

    #[test]
    fn sends_and_recvs_are_balanced() {
        let plan = plan_for(zoo::stable_diffusion_v2_1(), 128);
        let streams = generate_instructions(&plan);
        let count = |pred: &dyn Fn(&Instruction) -> bool| -> usize {
            streams.iter().flatten().filter(|i| pred(i)).count()
        };
        let sends = count(&|i| matches!(i, Instruction::Send { .. }));
        let recvs = count(&|i| matches!(i, Instruction::Recv { .. }));
        assert_eq!(sends, recvs);
    }

    #[test]
    fn bidirectional_plans_lower_too() {
        let plan = plan_for(zoo::cdm_lsun(), 256);
        let streams = generate_instructions(&plan);
        let (_, makespan) = InstructionSim::run(&streams).unwrap();
        let analytic = plan.schedule.compute_end() + plan.fill.leftover_time;
        let rel = (makespan - analytic).abs() / analytic;
        assert!(rel < 0.08, "{makespan} vs {analytic}");
    }

    #[test]
    fn fill_work_appears_in_streams() {
        let plan = plan_for(zoo::controlnet_v1_0(), 384);
        assert!(plan.fill.filled_time() > 0.0, "plan should fill bubbles");
        let streams = generate_instructions(&plan);
        let frozen_items = streams
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instruction::Compute { label, .. } if label.starts_with("frozen c")))
            .count();
        let expected: usize = plan
            .fill
            .bubbles
            .iter()
            .map(|b| b.items.len() * plan.bubbles[b.bubble_index].slots.len())
            .sum();
        assert_eq!(frozen_items, expected);
    }
}
