//! The planner's output.

use dpipe_fill::FillPlan;
use dpipe_partition::{BidirectionalPlan, HyperParams, PartitionPlan};
use dpipe_schedule::{Bubble, PipelineSchedule};
use dpipe_stablehash::StableHasher;
use serde::{Deserialize, Serialize};

/// Partitioning result for the trainable part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BackbonePartition {
    /// One backbone, unidirectional pipeline.
    Single(PartitionPlan),
    /// Two backbones, bidirectional pipelines over the same chain.
    Bidirectional(BidirectionalPlan),
}

impl BackbonePartition {
    /// The estimated upper bound `T_max` used to rank partitions.
    pub fn t_max(&self) -> f64 {
        match self {
            BackbonePartition::Single(p) => p.t_max,
            BackbonePartition::Bidirectional(p) => p.t_max,
        }
    }
}

/// Cost of the offline planning passes (paper §6.4).
///
/// `partition_seconds` and `fill_seconds` are summed over every evaluated
/// configuration: under a sequential search (`Planner::with_parallelism(1)`,
/// the default) that equals wall time, while a parallel search sums CPU
/// seconds across its workers and can therefore exceed the call's wall
/// time. `profiling_seconds` is always the simulated profiling wall time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PreprocessingReport {
    /// Simulated profiling wall time (parallel across the cluster).
    pub profiling_seconds: f64,
    /// Partitioning-DP CPU seconds summed across all configs (and, in a
    /// parallel search, across workers).
    pub partition_seconds: f64,
    /// Schedule simulation + bubble filling CPU seconds, summed likewise.
    pub fill_seconds: f64,
}

/// A complete DiffusionPipe execution plan: the best configuration found,
/// its schedule, its bubble-filling assignment, and headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Winning hyper-parameters (S, M, D).
    pub hyper: HyperParams,
    /// The backbone partition.
    pub partition: BackbonePartition,
    /// Simulated backbone pipeline schedule (one iteration).
    pub schedule: PipelineSchedule,
    /// Bubbles handed to the filler (chronological).
    pub bubbles: Vec<Bubble>,
    /// Bubble-filling assignment (cross-iteration, §3.2).
    pub fill: FillPlan,
    /// End-to-end iteration time, seconds.
    pub iteration_time: f64,
    /// Cluster throughput, samples/second.
    pub throughput: f64,
    /// Residual bubble ratio after filling.
    pub bubble_ratio: f64,
    /// Estimated peak per-device memory, bytes.
    pub peak_memory_bytes: u64,
    /// Offline planning cost.
    pub preprocessing: PreprocessingReport,
}

impl Plan {
    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.hyper.num_stages
    }

    /// Data-parallel degree (`world / D`).
    pub fn data_parallel_degree(&self, world: usize) -> usize {
        world / self.hyper.group_size
    }

    /// Stable 64-bit plan identifier derived from the plan's decision
    /// variables and headline metrics (via [`StableHasher`]).
    ///
    /// Two plans that pick the same configuration and predict the same
    /// performance share an id; any drift in the planner's output changes
    /// it, which makes the id a cheap byte-identity check for cached plans.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("diffusionpipe_core::Plan");
        h.write_usize(self.hyper.num_stages);
        h.write_usize(self.hyper.num_micro_batches);
        h.write_usize(self.hyper.group_size);
        h.write_bool(matches!(
            self.partition,
            BackbonePartition::Bidirectional(_)
        ));
        h.write_f64(self.partition.t_max());
        h.write_f64(self.iteration_time);
        h.write_f64(self.throughput);
        h.write_f64(self.bubble_ratio);
        h.write_u64(self.peak_memory_bytes);
        h.finish()
    }

    /// One-line human-readable summary, ending in the plan id
    /// ([`Plan::fingerprint`] in hex).
    pub fn summary(&self) -> String {
        format!(
            "S={} M={} D={} | iter {:.1} ms | {:.1} samples/s | bubbles {:.1}% | mem {:.1} GiB | id {:016x}",
            self.hyper.num_stages,
            self.hyper.num_micro_batches,
            self.hyper.group_size,
            self.iteration_time * 1e3,
            self.throughput,
            self.bubble_ratio * 100.0,
            self.peak_memory_bytes as f64 / (1u64 << 30) as f64,
            self.fingerprint(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_numbers() {
        let plan = Plan {
            hyper: HyperParams {
                num_stages: 2,
                num_micro_batches: 4,
                group_size: 8,
            },
            partition: BackbonePartition::Single(PartitionPlan {
                stages: vec![],
                num_micro_batches: 4,
                micro_batch: 8.0,
                t0: 0.0,
                t_sync_gap: 0.0,
                t_max: 0.5,
            }),
            schedule: PipelineSchedule {
                ops: vec![],
                syncs: vec![],
                num_slots: 2,
                slot_replication: vec![4, 4],
                micro_batch: 8.0,
                group_batch: 32.0,
            },
            bubbles: vec![],
            fill: FillPlan {
                bubbles: vec![],
                leftover_time: 0.0,
                baseline_frozen_time: 0.0,
            },
            iteration_time: 0.25,
            throughput: 128.0,
            bubble_ratio: 0.03,
            peak_memory_bytes: 16 << 30,
            preprocessing: PreprocessingReport::default(),
        };
        let s = plan.summary();
        assert!(s.contains("S=2") && s.contains("M=4") && s.contains("D=8"));
        assert!(s.contains("128.0 samples/s"));
        assert!(s.contains(&format!("id {:016x}", plan.fingerprint())));
        assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
        assert_eq!(plan.data_parallel_degree(16), 2);
        assert_eq!(plan.num_stages(), 2);
        assert_eq!(plan.partition.t_max(), 0.5);
    }
}
