//! Machine-readable plan summaries (re-homed from `dpipe_serve` so every
//! layer above the planner — serve, CLI, bench — shares one encoding
//! without a dependency cycle; the JSON tree itself lives in
//! [`dpipe_spec::json`]).

use crate::plan::{BackbonePartition, Plan};
use dpipe_spec::json::JsonValue;

/// The machine-readable summary of a [`Plan`], shared by `dpipe plan
/// --json`, `dpipe serve --json` and the sweep report.
pub fn plan_json(plan: &Plan) -> JsonValue {
    JsonValue::Object(vec![
        (
            "id".to_owned(),
            JsonValue::Str(format!("{:016x}", plan.fingerprint())),
        ),
        (
            "num_stages".to_owned(),
            JsonValue::UInt(plan.hyper.num_stages as u64),
        ),
        (
            "num_micro_batches".to_owned(),
            JsonValue::UInt(plan.hyper.num_micro_batches as u64),
        ),
        (
            "group_size".to_owned(),
            JsonValue::UInt(plan.hyper.group_size as u64),
        ),
        (
            "partition".to_owned(),
            JsonValue::Str(
                match plan.partition {
                    BackbonePartition::Single(_) => "single",
                    BackbonePartition::Bidirectional(_) => "bidirectional",
                }
                .to_owned(),
            ),
        ),
        (
            "iteration_time_s".to_owned(),
            JsonValue::Num(plan.iteration_time),
        ),
        (
            "throughput_samples_per_s".to_owned(),
            JsonValue::Num(plan.throughput),
        ),
        ("bubble_ratio".to_owned(), JsonValue::Num(plan.bubble_ratio)),
        (
            "peak_memory_bytes".to_owned(),
            JsonValue::UInt(plan.peak_memory_bytes),
        ),
        ("summary".to_owned(), JsonValue::Str(plan.summary())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;

    #[test]
    fn plan_json_round_trips_headline_numbers() {
        let plan = Planner::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8))
            .plan(64)
            .unwrap();
        let rendered = plan_json(&plan).to_string();
        assert!(rendered.contains(&format!("\"id\":\"{:016x}\"", plan.fingerprint())));
        assert!(rendered.contains("\"throughput_samples_per_s\":"));
        assert!(rendered.contains("\"partition\":\"single\""));
        // The emission is valid JSON the spec parser reads back.
        let parsed = dpipe_spec::json::parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("num_stages").unwrap().as_u64(),
            Some(plan.hyper.num_stages as u64)
        );
    }
}
