//! Planning errors.

use std::error::Error;
use std::fmt;

/// Errors from the end-to-end planner.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The model failed validation.
    InvalidModel(String),
    /// No (S, M, D) configuration fits in device memory.
    NoFeasibleConfig,
    /// Models with more than two backbones are not supported by the
    /// bidirectional scheduler (the paper groups >2 backbones into two
    /// direction groups; this reproduction covers the evaluated 1–2
    /// backbone cases).
    TooManyBackbones(usize),
    /// The request around the model is degenerate (e.g. a cluster with no
    /// devices or a zero batch), or planning it died unexpectedly. Raised
    /// by serving layers that must never panic on caller input.
    InvalidRequest(String),
    /// Record-backed profiling did not cover the model (a model/profile
    /// mismatch). Wraps [`dpipe_profile::ProfileError`]; callers inside
    /// serve workers receive this instead of a panic.
    Profile(String),
    /// The serving infrastructure itself failed (a planner panic was
    /// contained, a worker was lost, a channel closed). Unlike the other
    /// variants this says nothing about the request: retrying the same
    /// spec may well succeed, so serving layers must not cache it and
    /// should report it as a server-side (5xx) failure.
    Internal(String),
}

impl PlanError {
    /// True when the error is a deterministic verdict about the request
    /// itself — the same spec will fail the same way every time, so caching
    /// the outcome is sound. [`PlanError::Internal`] is the one transient
    /// variant: it reflects the state of the service, not the spec.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, PlanError::Internal(_))
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            PlanError::NoFeasibleConfig => {
                f.write_str("no pipeline configuration fits in device memory")
            }
            PlanError::TooManyBackbones(n) => {
                write!(f, "{n} backbones unsupported (max 2)")
            }
            PlanError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            PlanError::Profile(m) => write!(f, "profile error: {m}"),
            PlanError::Internal(m) => write!(f, "internal service error: {m}"),
        }
    }
}

impl From<dpipe_profile::ProfileError> for PlanError {
    fn from(e: dpipe_profile::ProfileError) -> Self {
        PlanError::Profile(e.to_string())
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(PlanError::TooManyBackbones(3).to_string().contains('3'));
        assert!(PlanError::NoFeasibleConfig.to_string().contains("memory"));
        assert!(PlanError::InvalidRequest("no devices".to_owned())
            .to_string()
            .contains("no devices"));
    }

    #[test]
    fn only_internal_errors_are_transient() {
        assert!(PlanError::NoFeasibleConfig.is_deterministic());
        assert!(PlanError::InvalidModel("x".into()).is_deterministic());
        assert!(PlanError::InvalidRequest("x".into()).is_deterministic());
        assert!(PlanError::Profile("x".into()).is_deterministic());
        let internal = PlanError::Internal("worker lost".into());
        assert!(!internal.is_deterministic());
        assert!(internal.to_string().contains("worker lost"));
    }

    #[test]
    fn profile_errors_convert() {
        let e = dpipe_profile::ProfileError::MissingLayer {
            component: dpipe_model::ComponentId(1),
            layer: dpipe_model::LayerId(2),
        };
        let p: PlanError = e.into();
        assert!(matches!(&p, PlanError::Profile(m) if m.contains("not profiled")));
        assert!(p.to_string().contains("profile error"));
    }
}
