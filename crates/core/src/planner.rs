//! The end-to-end planning workflow.

use crate::error::PlanError;
use crate::plan::{BackbonePartition, Plan, PreprocessingReport};
use dpipe_baselines::MemoryModel;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_fill::{FillConfig, Filler};
use dpipe_model::ModelSpec;
use dpipe_partition::{enumerate_configs, PartitionConfig, Partitioner, SearchSpace};
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};
use dpipe_schedule::{PipelineSchedule, ScheduleBuilder, ScheduleKind};
use dpipe_sim::CombinedIteration;
use std::time::Instant;

/// Feature toggles, used for the paper's Fig. 15 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Fill bubbles with the frozen part (the core contribution).
    pub bubble_filling: bool,
    /// Allow partial-batch layers inside bubbles.
    pub partial_batch: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            bubble_filling: true,
            partial_batch: true,
        }
    }
}

/// The DiffusionPipe planner. See the crate docs for the workflow.
#[derive(Debug)]
pub struct Planner {
    model: ModelSpec,
    cluster: ClusterSpec,
    device: DeviceModel,
    search: SearchSpace,
    options: PlannerOptions,
    fill_cfg: FillConfig,
}

impl Planner {
    /// Creates a planner with default device model, search space and
    /// options.
    pub fn new(model: ModelSpec, cluster: ClusterSpec) -> Self {
        Planner {
            model,
            cluster,
            device: DeviceModel::a100_like(),
            search: SearchSpace::default(),
            options: PlannerOptions::default(),
            fill_cfg: FillConfig::default(),
        }
    }

    /// Overrides the device model.
    pub fn with_device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Overrides the hyper-parameter search space.
    pub fn with_search_space(mut self, search: SearchSpace) -> Self {
        self.search = search;
        self
    }

    /// Sets ablation options (Fig. 15).
    pub fn with_options(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the bubble-filling configuration.
    pub fn with_fill_config(mut self, cfg: FillConfig) -> Self {
        self.fill_cfg = cfg;
        self
    }

    /// Runs the full workflow for a global batch size, returning the best
    /// plan by simulated cluster throughput.
    ///
    /// For cascaded models, `global_batch` is the per-backbone batch (the
    /// paper trains all backbones of a CDM at the same batch size).
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan(&self, global_batch: u32) -> Result<Plan, PlanError> {
        self.model
            .validate()
            .map_err(|e| PlanError::InvalidModel(e.to_string()))?;
        let backbones: Vec<_> = self.model.backbones().map(|(id, _)| id).collect();
        if backbones.len() > 2 {
            return Err(PlanError::TooManyBackbones(backbones.len()));
        }

        // Step 1: profile (simulated wall time reported).
        let profiler =
            Profiler::new(self.device.clone()).with_world_size(self.cluster.world_size());
        let (db, profile_report) = profiler.profile(&self.model, global_batch);

        let min_layers = backbones
            .iter()
            .map(|&b| self.model.component(b).num_layers())
            .min()
            .expect("validated model has a backbone");
        let configs = enumerate_configs(&self.cluster, global_batch, min_layers, &self.search);

        let mut fill_cfg = self.fill_cfg.clone();
        fill_cfg.partial_batch = self.options.partial_batch;

        let mut best: Option<Plan> = None;
        let mut partition_seconds = 0.0;
        let mut fill_seconds = 0.0;
        let world = self.cluster.world_size();
        let mm = MemoryModel::new(&self.model);

        for hp in configs {
            let Some(layout) = DataParallelLayout::new(&self.cluster, hp.group_size) else {
                continue;
            };
            let cfg = PartitionConfig::new(
                hp.num_stages,
                hp.num_micro_batches,
                hp.group_batch(global_batch, world),
            );
            let part = Partitioner::new(&db, &self.cluster, &layout);

            let t0 = Instant::now();
            let partition = if backbones.len() == 1 {
                match part.partition_single(backbones[0], &cfg) {
                    Ok(p) => BackbonePartition::Single(p),
                    Err(_) => continue,
                }
            } else {
                match part.partition_bidirectional(backbones[0], backbones[1], &cfg) {
                    Ok(p) => BackbonePartition::Bidirectional(p),
                    Err(_) => continue,
                }
            };
            partition_seconds += t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let builder = ScheduleBuilder::new(&db, &self.cluster, &layout);
            let schedule = match &partition {
                BackbonePartition::Single(p) => builder.build_single(p, ScheduleKind::Fifo1F1B),
                BackbonePartition::Bidirectional(p) => builder.build_bidirectional(p),
            };
            let Ok(schedule) = schedule else { continue };

            let bubbles = schedule.bubbles(fill_cfg.min_bubble_seconds);
            let filler = Filler::new(&db, fill_cfg.clone());
            let fill = if self.options.bubble_filling {
                match filler.fill(&bubbles, schedule.group_batch, hp.group_size) {
                    Ok(f) => f,
                    Err(_) => continue,
                }
            } else {
                // Ablation: nothing filled; the frozen part is a pure tail.
                match filler.fill(&[], schedule.group_batch, hp.group_size) {
                    Ok(f) => f,
                    Err(_) => continue,
                }
            };
            let combined = CombinedIteration::new(&schedule, &bubbles, &fill);
            fill_seconds += t1.elapsed().as_secs_f64();

            let peak = self.peak_memory(&mm, &partition, &schedule);
            if peak > self.cluster.device_memory_bytes {
                continue;
            }
            let dp_groups = world / hp.group_size;
            let throughput = combined.cluster_throughput(dp_groups);
            let plan = Plan {
                hyper: hp,
                partition,
                schedule,
                bubbles,
                fill,
                iteration_time: combined.iteration_time(),
                throughput,
                bubble_ratio: combined.bubble_ratio(),
                peak_memory_bytes: peak,
                preprocessing: PreprocessingReport::default(),
            };
            let better = best.as_ref().is_none_or(|b| plan.throughput > b.throughput);
            if better {
                best = Some(plan);
            }
        }

        let mut plan = best.ok_or(PlanError::NoFeasibleConfig)?;
        plan.preprocessing = PreprocessingReport {
            profiling_seconds: profile_report.wall_time_seconds,
            partition_seconds,
            fill_seconds,
        };
        Ok(plan)
    }

    /// Convenience accessor for the profile database used during planning,
    /// for callers that want to inspect layer times afterwards.
    pub fn profile(&self, global_batch: u32) -> ProfileDb {
        Profiler::new(self.device.clone())
            .with_world_size(self.cluster.world_size())
            .profile(&self.model, global_batch)
            .0
    }

    fn peak_memory(
        &self,
        mm: &MemoryModel<'_>,
        partition: &BackbonePartition,
        schedule: &PipelineSchedule,
    ) -> u64 {
        let stage_peaks = |p: &dpipe_partition::PartitionPlan| -> u64 {
            let s_count = p.stages.len();
            p.stages
                .iter()
                .enumerate()
                .map(|(s, st)| {
                    let in_flight = p.num_micro_batches.min(s_count - s).max(1);
                    mm.pipeline_stage_peak(
                        st.component,
                        st.layers.clone(),
                        st.local_batch(p.micro_batch),
                        in_flight,
                    )
                })
                .max()
                .unwrap_or(0)
        };
        let _ = schedule;
        match partition {
            BackbonePartition::Single(p) => stage_peaks(p),
            // Bidirectional: each device holds one stage of each backbone.
            BackbonePartition::Bidirectional(p) => stage_peaks(&p.down) + stage_peaks(&p.up),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    #[test]
    fn sd_plan_beats_no_fill_ablation() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let full = Planner::new(model.clone(), cluster.clone())
            .plan(256)
            .unwrap();
        let no_fill = Planner::new(model, cluster)
            .with_options(PlannerOptions {
                bubble_filling: false,
                partial_batch: false,
            })
            .plan(256)
            .unwrap();
        assert!(
            full.throughput > no_fill.throughput,
            "full {} !> no_fill {}",
            full.throughput,
            no_fill.throughput
        );
    }

    #[test]
    fn partial_batch_ablation_is_between() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let full = Planner::new(model.clone(), cluster.clone())
            .plan(384)
            .unwrap();
        let no_partial = Planner::new(model.clone(), cluster.clone())
            .with_options(PlannerOptions {
                bubble_filling: true,
                partial_batch: false,
            })
            .plan(384)
            .unwrap();
        let no_fill = Planner::new(model, cluster)
            .with_options(PlannerOptions {
                bubble_filling: false,
                partial_batch: false,
            })
            .plan(384)
            .unwrap();
        assert!(full.throughput >= no_partial.throughput);
        assert!(no_partial.throughput >= 0.98 * no_fill.throughput);
    }

    #[test]
    fn cdm_uses_bidirectional_partition() {
        let model = zoo::cdm_lsun();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(256).unwrap();
        assert!(matches!(
            plan.partition,
            BackbonePartition::Bidirectional(_)
        ));
        assert!(plan.throughput > 0.0);
    }

    #[test]
    fn plan_reports_preprocessing_costs() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(64).unwrap();
        // §6.4: partitioning ~0.5 s, filling < 1 s, profiling tens of
        // seconds (simulated). Wall times here just need to be sane.
        assert!(plan.preprocessing.profiling_seconds > 0.0);
        assert!(plan.preprocessing.partition_seconds < 30.0);
        assert!(plan.preprocessing.fill_seconds < 30.0);
    }

    #[test]
    fn residual_bubbles_are_small() {
        // Fig. 14: DiffusionPipe's bubble ratio < 5%.
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(256).unwrap();
        assert!(plan.bubble_ratio < 0.08, "ratio {}", plan.bubble_ratio);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut model = zoo::stable_diffusion_v2_1();
        model.components.retain(|c| !c.is_trainable());
        let err = Planner::new(model, ClusterSpec::single_node(8))
            .plan(64)
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidModel(_)));
    }
}
