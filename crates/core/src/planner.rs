//! The end-to-end planning workflow.

use crate::error::PlanError;
use crate::plan::{BackbonePartition, Plan, PreprocessingReport};
use dpipe_baselines::MemoryModel;
use dpipe_cluster::{ClassMap, ClusterSpec, DataParallelLayout};
use dpipe_fill::{FillConfig, Filler};
use dpipe_model::{ComponentId, ModelSpec};
use dpipe_partition::{
    enumerate_configs, DpStats, HyperParams, PartitionConfig, Partitioner, SearchSpace,
};
use dpipe_profile::{CostPrefix, DeviceModel, ProfileDb, Profiler, ProfilingReport};
use dpipe_schedule::{ScheduleBuilder, ScheduleKind};
use dpipe_sim::CombinedIteration;
use dpipe_spec::PlanSpec;
use dpipe_trace::{Span, SpanId, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub use dpipe_spec::PlannerOptions;

/// Counters describing one planning call (returned by
/// [`Planner::plan_with_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Hyper-parameter configurations enumerated.
    pub configs: usize,
    /// Configurations that produced a complete, memory-feasible candidate.
    pub feasible: usize,
    /// Partition-DP counters summed over every configuration.
    pub dp: DpStats,
    /// Configurations whose bubble-filling pass was skipped because their
    /// post-schedule throughput upper bound could not beat the best plan
    /// found so far. A performance counter: the exact value depends on
    /// evaluation order, so it may vary across parallel runs (the selected
    /// plan never does).
    pub fill_skipped: usize,
    /// Worker threads the config search actually used.
    pub parallelism: usize,
}

/// One evaluated configuration (internal).
struct ConfigOutcome {
    index: usize,
    plan: Option<Plan>,
    partition_seconds: f64,
    fill_seconds: f64,
    stats: DpStats,
    fill_skipped: bool,
}

/// Per-worker reduction state (internal).
#[derive(Default)]
struct WorkerResult {
    best: Option<(usize, Plan)>,
    feasible: usize,
    partition_seconds: f64,
    fill_seconds: f64,
    stats: DpStats,
    fill_skipped: usize,
}

impl WorkerResult {
    /// Folds one config outcome in; `outcome.index` must be increasing per
    /// worker, which the work-stealing cursor guarantees.
    fn absorb(&mut self, outcome: ConfigOutcome) {
        self.partition_seconds += outcome.partition_seconds;
        self.fill_seconds += outcome.fill_seconds;
        self.stats.merge(&outcome.stats);
        self.fill_skipped += usize::from(outcome.fill_skipped);
        if let Some(plan) = outcome.plan {
            self.feasible += 1;
            // Strictly-better-throughput wins, so the earliest config index
            // is kept on exact ties — identical to the sequential loop.
            let better = self
                .best
                .as_ref()
                .is_none_or(|(_, b)| plan.throughput > b.throughput);
            if better {
                self.best = Some((outcome.index, plan));
            }
        }
    }

    /// Merges another worker's reduction, preserving the same total order
    /// (max throughput, ties broken by the smaller config index).
    fn merge(&mut self, other: WorkerResult) {
        self.feasible += other.feasible;
        self.partition_seconds += other.partition_seconds;
        self.fill_seconds += other.fill_seconds;
        self.stats.merge(&other.stats);
        self.fill_skipped += other.fill_skipped;
        if let Some((oi, op)) = other.best {
            let replace = match &self.best {
                None => true,
                Some((si, sp)) => {
                    op.throughput > sp.throughput || (op.throughput == sp.throughput && oi < *si)
                }
            };
            if replace {
                self.best = Some((oi, op));
            }
        }
    }
}

/// The DiffusionPipe planner. See the crate docs for the workflow.
///
/// Heterogeneous clusters ([`ClusterSpec::machine_classes`]) are planned
/// end to end: one profile database per device class, stage costs looked up
/// against the class of the devices each stage lands on, per-stage device
/// memory limits, class-scaled intra-node collectives, and a bubble-filling
/// tail timed on the slowest class (the data-parallel frozen part waits for
/// it). Homogeneous clusters take the exact same code path with a single
/// class, bit-identical to the pre-heterogeneity planner.
#[derive(Debug)]
pub struct Planner {
    model: ModelSpec,
    cluster: ClusterSpec,
    device: DeviceModel,
    search: SearchSpace,
    options: PlannerOptions,
    fill_cfg: FillConfig,
    schedule: ScheduleKind,
    parallelism: usize,
    record_backed: bool,
    tracer: Tracer,
    trace_parent: Option<SpanId>,
}

impl Planner {
    /// Creates a planner with default device model, search space and
    /// options.
    ///
    /// Prefer describing runs as a [`PlanSpec`] and using
    /// [`Planner::from_spec`]: the spec form is serializable, validated
    /// and shared with the serving layer, sweeps, the CLI and the bench
    /// harness. This constructor (and the `with_*` knobs below) remains
    /// as the imperative escape hatch the spec path itself is built on.
    pub fn new(model: ModelSpec, cluster: ClusterSpec) -> Self {
        Planner {
            model,
            cluster,
            device: DeviceModel::a100_like(),
            search: SearchSpace::default(),
            options: PlannerOptions::default(),
            fill_cfg: FillConfig::default(),
            schedule: ScheduleKind::Fifo1F1B,
            parallelism: 1,
            record_backed: false,
            tracer: Tracer::off(),
            trace_parent: None,
        }
    }

    /// Builds a planner from a declarative [`PlanSpec`]: resolves the
    /// model reference and maps every spec knob onto the corresponding
    /// builder. The produced plans are byte-identical to configuring the
    /// same knobs through `Planner::new().with_*` — the spec is a
    /// *description* of a planner, not a different planner.
    ///
    /// The spec's `global_batch` is carried by the spec itself; call
    /// [`Planner::plan_spec`] for the one-shot form, or
    /// `from_spec(&spec)?.plan(spec.global_batch)` explicitly.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidRequest`] for an unsupported `schema_version`
    /// or an unresolvable zoo reference. Everything else fails exactly
    /// where the builder path fails: an invalid inline model is
    /// [`PlanError::InvalidModel`] from [`Planner::plan`], degenerate
    /// batches and class assignments are `InvalidRequest` from there too.
    pub fn from_spec(spec: &PlanSpec) -> Result<Self, PlanError> {
        if spec.schema_version != dpipe_spec::SCHEMA_VERSION {
            return Err(PlanError::InvalidRequest(
                dpipe_spec::SpecError::UnsupportedVersion(u64::from(spec.schema_version))
                    .to_string(),
            ));
        }
        // Resolution failure is an invalid *request*; an inline model that
        // fails structural validation stays an InvalidModel error from
        // plan(), exactly like the builder path.
        let model = spec
            .model
            .resolve()
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?;
        Ok(Planner::new(model, spec.cluster.clone())
            .with_options(spec.options)
            .with_search_space(spec.search)
            .with_fill_config(spec.fill.clone())
            .with_schedule_kind(spec.schedule)
            .with_parallelism(spec.effective_parallelism())
            .with_record_backed_profiles(spec.record_backed))
    }

    /// Plans a declarative [`PlanSpec`] end to end (the batch comes from
    /// the spec).
    ///
    /// # Errors
    ///
    /// See [`Planner::from_spec`] and [`PlanError`].
    pub fn plan_spec(spec: &PlanSpec) -> Result<Plan, PlanError> {
        Planner::from_spec(spec)?.plan(spec.global_batch)
    }

    /// Overrides the device model.
    pub fn with_device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Overrides the hyper-parameter search space. (Soft-deprecated:
    /// prefer [`PlanSpec::with_search_space`] + [`Planner::from_spec`].)
    pub fn with_search_space(mut self, search: SearchSpace) -> Self {
        self.search = search;
        self
    }

    /// Sets ablation options (Fig. 15). (Soft-deprecated: prefer
    /// [`PlanSpec::with_options`] + [`Planner::from_spec`].)
    pub fn with_options(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the bubble-filling configuration. (Soft-deprecated:
    /// prefer [`PlanSpec::with_fill_config`] + [`Planner::from_spec`].)
    pub fn with_fill_config(mut self, cfg: FillConfig) -> Self {
        self.fill_cfg = cfg;
        self
    }

    /// Selects the single-backbone pipeline schedule family (default:
    /// FIFO-1F1B, the paper's schedule). Bidirectional (cascaded-model)
    /// plans always use the bidirectional schedule and ignore this knob.
    pub fn with_schedule_kind(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Fans the per-configuration search of one plan call across `workers`
    /// threads (1 = sequential, the default). The result is identical for
    /// any worker count: candidates are ranked by simulated throughput with
    /// exact ties broken by enumeration order, a total order.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Records planning phases into `tracer` (default: [`Tracer::off`],
    /// which makes every span site a no-op). Tracing is observation only —
    /// the selected plan is byte-identical with any tracer attached; the
    /// golden equivalence suite runs the fast path under an enabled tracer
    /// to pin that down.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Parents this planner's root `plan` span under an existing span
    /// (e.g. a serving-layer request span), so one trace follows a request
    /// from the HTTP accept down into the partition DP.
    pub fn with_trace_parent(mut self, parent: Option<SpanId>) -> Self {
        self.trace_parent = parent;
        self
    }

    /// Switches planning onto *record-backed* profiling: timing queries are
    /// answered by piecewise-linear interpolation over profiled samples
    /// (the paper's mode of operation) instead of the analytic device
    /// model. A model/profile mismatch surfaces as [`PlanError::Profile`]
    /// — a typed error, never a panic — so serving layers can forward it.
    pub fn with_record_backed_profiles(mut self, record_backed: bool) -> Self {
        self.record_backed = record_backed;
        self
    }

    /// Builds one profile database per device class (analytic or
    /// record-backed), plus the profiling report of the reference pass.
    fn profile_class_dbs(
        &self,
        compute_scales: &[f64],
        global_batch: u32,
    ) -> Result<(Vec<ProfileDb>, ProfilingReport), PlanError> {
        let world = self.cluster.world_size();
        if !self.record_backed {
            let profiler = Profiler::new(self.device.clone()).with_world_size(world);
            return Ok(profiler.profile_classes(&self.model, global_batch, compute_scales));
        }
        let mut dbs = Vec::with_capacity(compute_scales.len());
        let mut report = None;
        for &scale in compute_scales {
            let device = if scale == 1.0 {
                self.device.clone()
            } else {
                self.device.scaled(scale)
            };
            let profiler = Profiler::new(device).with_world_size(world);
            let (db, r) = profiler.profile_records(&self.model, global_batch)?;
            if report.is_none() {
                report = Some(r);
            }
            dbs.push(db);
        }
        let report = report.ok_or_else(|| {
            PlanError::InvalidRequest("cluster resolves to zero device classes".to_owned())
        })?;
        Ok((dbs, report))
    }

    /// Runs the full workflow for a global batch size, returning the best
    /// plan by simulated cluster throughput.
    ///
    /// For cascaded models, `global_batch` is the per-backbone batch (the
    /// paper trains all backbones of a CDM at the same batch size).
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan(&self, global_batch: u32) -> Result<Plan, PlanError> {
        self.plan_with_stats(global_batch).map(|(plan, _)| plan)
    }

    /// [`Planner::plan`] plus search counters: configs enumerated and
    /// feasible, DP candidates evaluated and pruned, threads used.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_with_stats(&self, global_batch: u32) -> Result<(Plan, PlanStats), PlanError> {
        let mut root = self.tracer.child_span("plan", self.trace_parent);
        root.set("model", self.model.name.as_str());
        root.set("world_size", self.cluster.world_size());
        root.set("global_batch", global_batch);
        let root_id = root.id();

        let mut validate_span = self.tracer.child_span("validate", root_id);
        self.model
            .validate()
            .map_err(|e| PlanError::InvalidModel(e.to_string()))?;
        self.cluster
            .validate_classes()
            .map_err(PlanError::InvalidRequest)?;
        let backbones: Vec<_> = self.model.backbones().map(|(id, _)| id).collect();
        if backbones.len() > 2 {
            return Err(PlanError::TooManyBackbones(backbones.len()));
        }
        validate_span.set("backbones", backbones.len());
        validate_span.finish();

        // Step 1: profile once per device class (simulated wall time
        // reported). Homogeneous clusters resolve to a single class.
        let class_map = self.cluster.class_map();
        let mut profile_span = self.tracer.child_span("profile", root_id);
        let (dbs, profile_report) =
            self.profile_class_dbs(&class_map.compute_scales(), global_batch)?;
        profile_span.set("classes", dbs.len());
        profile_span.set("simulated_wall_s", profile_report.wall_time_seconds);
        profile_span.finish();

        let mut enumerate_span = self.tracer.child_span("enumerate_configs", root_id);
        let min_layers = backbones
            .iter()
            .map(|&b| self.model.component(b).num_layers())
            .min()
            .ok_or_else(|| PlanError::InvalidRequest("model has no backbone component".into()))?;
        let configs = enumerate_configs(&self.cluster, global_batch, min_layers, &self.search)
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?;
        enumerate_span.set("configs", configs.len());
        enumerate_span.finish();

        let mut fill_cfg = self.fill_cfg.clone();
        fill_cfg.partial_batch = self.options.partial_batch;
        let world = self.cluster.world_size();

        // One CostPrefix per (backbone, device class), shared (read-only)
        // by every config of this call: rows for every local batch the
        // uniform DPs query, built from the class's own database.
        let prefix_span = self.tracer.child_span("cost_prefixes", root_id);
        let prefixes: Vec<Vec<CostPrefix>> = backbones
            .iter()
            .map(|&bb| {
                dbs.iter()
                    .map(|class_db| {
                        let mut prefix = CostPrefix::new(class_db, bb);
                        for hp in &configs {
                            let cfg = PartitionConfig::new(
                                hp.num_stages,
                                hp.num_micro_batches,
                                hp.group_batch(global_batch, world),
                            );
                            let r = hp.group_size / hp.num_stages;
                            prefix.ensure_batch(class_db, cfg.micro_batch() / r as f64);
                        }
                        prefix
                    })
                    .collect()
            })
            .collect();
        prefix_span.finish();

        let mm = MemoryModel::new(&self.model);
        let mut search_span = self.tracer.child_span("config_search", root_id);
        let search_id = search_span.id();
        // `best_so_far` is this worker's best throughput: a config whose
        // post-schedule upper bound cannot beat it skips the filling pass.
        let evaluate = |index: usize, best_so_far: f64| -> ConfigOutcome {
            self.evaluate_config(
                index,
                configs[index],
                global_batch,
                &dbs,
                &backbones,
                &prefixes,
                &fill_cfg,
                &mm,
                &class_map,
                best_so_far,
                search_id,
            )
        };

        let workers = self.parallelism.max(1).min(configs.len().max(1));
        let mut result = WorkerResult::default();
        if workers <= 1 {
            for index in 0..configs.len() {
                let beat = result
                    .best
                    .as_ref()
                    .map_or(f64::NEG_INFINITY, |(_, b)| b.throughput);
                result.absorb(evaluate(index, beat));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let total = configs.len();
            let partials = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = WorkerResult::default();
                            loop {
                                let index = cursor.fetch_add(1, Ordering::Relaxed);
                                if index >= total {
                                    break;
                                }
                                let beat = local
                                    .best
                                    .as_ref()
                                    .map_or(f64::NEG_INFINITY, |(_, b)| b.throughput);
                                local.absorb(evaluate(index, beat));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(partial) => partial,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect::<Vec<_>>()
            });
            for partial in partials {
                result.merge(partial);
            }
        }
        search_span.set("workers", workers);
        search_span.set("feasible", result.feasible);
        search_span.set("fill_skipped", result.fill_skipped);
        search_span.set("dp_candidates", result.stats.candidates);
        search_span.set("dp_pruned", result.stats.pruned);
        search_span.finish();

        let mut select_span = self.tracer.child_span("select", root_id);
        let stats = PlanStats {
            configs: configs.len(),
            feasible: result.feasible,
            dp: result.stats,
            fill_skipped: result.fill_skipped,
            parallelism: workers,
        };
        let (best_index, mut plan) = result.best.ok_or(PlanError::NoFeasibleConfig)?;
        plan.preprocessing = PreprocessingReport {
            profiling_seconds: profile_report.wall_time_seconds,
            partition_seconds: result.partition_seconds,
            fill_seconds: result.fill_seconds,
        };
        select_span.set("best_config", best_index);
        select_span.set("throughput", plan.throughput);
        select_span.finish();
        root.set("configs", configs.len());
        root.finish();
        Ok((plan, stats))
    }

    /// Evaluates one (S, M, D) configuration end to end: partition,
    /// schedule, fill, memory check, throughput. Pure with respect to the
    /// shared inputs, so configs can be evaluated on any thread.
    ///
    /// `best_so_far` short-circuits the filling pass: filling only ever
    /// *adds* time beyond the backbone schedule, so
    /// `group_batch / max(compute_end, sync_end)` bounds the group
    /// throughput from above and a config strictly below the best known
    /// throughput can be abandoned without changing the selection.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_config(
        &self,
        index: usize,
        hp: HyperParams,
        global_batch: u32,
        dbs: &[ProfileDb],
        backbones: &[ComponentId],
        prefixes: &[Vec<CostPrefix>],
        fill_cfg: &FillConfig,
        mm: &MemoryModel<'_>,
        class_map: &ClassMap,
        best_so_far: f64,
        search_span: Option<SpanId>,
    ) -> ConfigOutcome {
        let mut span = self.tracer.child_span("config", search_span);
        span.set("index", index);
        span.set("stages", hp.num_stages);
        span.set("micro_batches", hp.num_micro_batches);
        span.set("group_size", hp.group_size);
        let outcome = self.evaluate_config_inner(
            index,
            hp,
            global_batch,
            dbs,
            backbones,
            prefixes,
            fill_cfg,
            mm,
            class_map,
            best_so_far,
            &mut span,
        );
        // DpStats for *this* config folded in as attributes (summed stats
        // land on the `config_search` span and in `PlanStats`).
        span.set("dp_candidates", outcome.stats.candidates);
        span.set("dp_pruned", outcome.stats.pruned);
        span.set("fill_skipped", outcome.fill_skipped);
        span.set("feasible", outcome.plan.is_some());
        if let Some(plan) = &outcome.plan {
            span.set("throughput", plan.throughput);
        }
        outcome
    }

    /// The body of [`Planner::evaluate_config`]; `span` is the config's
    /// trace span, used only to parent the partition/schedule/fill child
    /// spans (a no-op span when tracing is off).
    #[allow(clippy::too_many_arguments)]
    fn evaluate_config_inner(
        &self,
        index: usize,
        hp: HyperParams,
        global_batch: u32,
        dbs: &[ProfileDb],
        backbones: &[ComponentId],
        prefixes: &[Vec<CostPrefix>],
        fill_cfg: &FillConfig,
        mm: &MemoryModel<'_>,
        class_map: &ClassMap,
        best_so_far: f64,
        span: &mut Span,
    ) -> ConfigOutcome {
        let mut outcome = ConfigOutcome {
            index,
            plan: None,
            partition_seconds: 0.0,
            fill_seconds: 0.0,
            stats: DpStats::default(),
            fill_skipped: false,
        };
        let world = self.cluster.world_size();
        let Some(layout) = DataParallelLayout::new(&self.cluster, hp.group_size) else {
            return outcome;
        };
        let cfg = PartitionConfig::new(
            hp.num_stages,
            hp.num_micro_batches,
            hp.group_batch(global_batch, world),
        );
        let part = Partitioner::new(&dbs[0], &self.cluster, &layout).with_class_dbs(dbs);

        let t0 = Instant::now();
        let partition_span = self.tracer.child_span("partition", span.id());
        let partition = if backbones.len() == 1 {
            match part.partition_single_with(backbones[0], &cfg, &prefixes[0], &mut outcome.stats) {
                Ok(p) => BackbonePartition::Single(p),
                Err(_) => return outcome,
            }
        } else {
            match part.partition_bidirectional_with(
                backbones[0],
                backbones[1],
                &cfg,
                &prefixes[0],
                &prefixes[1],
                &mut outcome.stats,
            ) {
                Ok(p) => BackbonePartition::Bidirectional(p),
                Err(_) => return outcome,
            }
        };
        partition_span.finish();
        outcome.partition_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let schedule_span = self.tracer.child_span("schedule", span.id());
        let builder = ScheduleBuilder::new(&dbs[0], &self.cluster, &layout).with_class_dbs(dbs);
        let schedule = match &partition {
            BackbonePartition::Single(p) => builder.build_single(p, self.schedule),
            BackbonePartition::Bidirectional(p) => builder.build_bidirectional(p),
        };
        schedule_span.finish();
        let Ok(schedule) = schedule else {
            return outcome;
        };

        let dp_groups = world / hp.group_size;
        let makespan = schedule.compute_end().max(schedule.sync_end());
        if makespan > 0.0 {
            let throughput_ub = dp_groups as f64 * schedule.group_batch / makespan;
            if throughput_ub < best_so_far {
                // Fill-skip upper-bound cut: the span attribute lands on the
                // config span via the wrapper.
                outcome.fill_skipped = true;
                return outcome;
            }
        }

        let mut fill_span = self.tracer.child_span("fill", span.id());
        let bubbles = schedule.bubbles(fill_cfg.min_bubble_seconds);
        // The frozen part runs data-parallel on every device; its tail is
        // gated by the slowest device class.
        let filler = Filler::new(
            &dbs[class_map.slowest_class().min(dbs.len() - 1)],
            fill_cfg.clone(),
        );
        let fill = if self.options.bubble_filling {
            match filler.fill(&bubbles, schedule.group_batch, hp.group_size) {
                Ok(f) => f,
                Err(_) => return outcome,
            }
        } else {
            // Ablation: nothing filled; the frozen part is a pure tail.
            match filler.fill(&[], schedule.group_batch, hp.group_size) {
                Ok(f) => f,
                Err(_) => return outcome,
            }
        };
        let combined = CombinedIteration::new(&schedule, &bubbles, &fill);
        fill_span.set("bubbles", bubbles.len());
        fill_span.finish();
        outcome.fill_seconds = t1.elapsed().as_secs_f64();

        let Some(peak) = self.check_memory(mm, &partition, &layout, class_map) else {
            return outcome;
        };
        let throughput = combined.cluster_throughput(dp_groups);
        outcome.plan = Some(Plan {
            hyper: hp,
            partition,
            schedule,
            bubbles,
            fill,
            iteration_time: combined.iteration_time(),
            throughput,
            bubble_ratio: combined.bubble_ratio(),
            peak_memory_bytes: peak,
            preprocessing: PreprocessingReport::default(),
        });
        outcome
    }

    /// The pre-optimisation planning loop, kept as ground truth: a
    /// sequential walk over every configuration using the naive reference
    /// DPs ([`Partitioner::partition_single_reference`]) with per-candidate
    /// `ProfileDb` walks, no shared cost tables, no branch-and-bound and no
    /// fill short-circuiting.
    ///
    /// [`Planner::plan`] must return a byte-identical plan; the golden
    /// equivalence suite and `plan_bench` (which exits non-zero on any
    /// divergence) assert exactly that, and `plan_bench` uses the runtime
    /// ratio as the speedup headline.
    ///
    /// # Errors
    ///
    /// See [`PlanError`].
    pub fn plan_reference(&self, global_batch: u32) -> Result<Plan, PlanError> {
        self.model
            .validate()
            .map_err(|e| PlanError::InvalidModel(e.to_string()))?;
        self.cluster
            .validate_classes()
            .map_err(PlanError::InvalidRequest)?;
        let backbones: Vec<_> = self.model.backbones().map(|(id, _)| id).collect();
        if backbones.len() > 2 {
            return Err(PlanError::TooManyBackbones(backbones.len()));
        }
        let class_map = self.cluster.class_map();
        let (dbs, profile_report) =
            self.profile_class_dbs(&class_map.compute_scales(), global_batch)?;
        let min_layers = backbones
            .iter()
            .map(|&b| self.model.component(b).num_layers())
            .min()
            .ok_or_else(|| PlanError::InvalidRequest("model has no backbone component".into()))?;
        let configs = enumerate_configs(&self.cluster, global_batch, min_layers, &self.search)
            .map_err(|e| PlanError::InvalidRequest(e.to_string()))?;

        let mut fill_cfg = self.fill_cfg.clone();
        fill_cfg.partial_batch = self.options.partial_batch;
        let world = self.cluster.world_size();
        let mm = MemoryModel::new(&self.model);

        let mut best: Option<Plan> = None;
        let mut partition_seconds = 0.0;
        let mut fill_seconds = 0.0;
        for hp in configs {
            let Some(layout) = DataParallelLayout::new(&self.cluster, hp.group_size) else {
                continue;
            };
            let cfg = PartitionConfig::new(
                hp.num_stages,
                hp.num_micro_batches,
                hp.group_batch(global_batch, world),
            );
            let part = Partitioner::new(&dbs[0], &self.cluster, &layout).with_class_dbs(&dbs);
            let t0 = Instant::now();
            let partition = if backbones.len() == 1 {
                match part.partition_single_reference(backbones[0], &cfg) {
                    Ok(p) => BackbonePartition::Single(p),
                    Err(_) => continue,
                }
            } else {
                match part.partition_bidirectional_reference(backbones[0], backbones[1], &cfg) {
                    Ok(p) => BackbonePartition::Bidirectional(p),
                    Err(_) => continue,
                }
            };
            partition_seconds += t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let builder =
                ScheduleBuilder::new(&dbs[0], &self.cluster, &layout).with_class_dbs(&dbs);
            let schedule = match &partition {
                BackbonePartition::Single(p) => builder.build_single(p, self.schedule),
                BackbonePartition::Bidirectional(p) => builder.build_bidirectional(p),
            };
            let Ok(schedule) = schedule else { continue };
            let bubbles = schedule.bubbles(fill_cfg.min_bubble_seconds);
            let filler = Filler::new(
                &dbs[class_map.slowest_class().min(dbs.len() - 1)],
                fill_cfg.clone(),
            );
            let fill = if self.options.bubble_filling {
                match filler.fill(&bubbles, schedule.group_batch, hp.group_size) {
                    Ok(f) => f,
                    Err(_) => continue,
                }
            } else {
                match filler.fill(&[], schedule.group_batch, hp.group_size) {
                    Ok(f) => f,
                    Err(_) => continue,
                }
            };
            let combined = CombinedIteration::new(&schedule, &bubbles, &fill);
            fill_seconds += t1.elapsed().as_secs_f64();

            let Some(peak) = self.check_memory(&mm, &partition, &layout, &class_map) else {
                continue;
            };
            let dp_groups = world / hp.group_size;
            let throughput = combined.cluster_throughput(dp_groups);
            let plan = Plan {
                hyper: hp,
                partition,
                schedule,
                bubbles,
                fill,
                iteration_time: combined.iteration_time(),
                throughput,
                bubble_ratio: combined.bubble_ratio(),
                peak_memory_bytes: peak,
                preprocessing: PreprocessingReport::default(),
            };
            let better = best.as_ref().is_none_or(|b| plan.throughput > b.throughput);
            if better {
                best = Some(plan);
            }
        }
        let mut plan = best.ok_or(PlanError::NoFeasibleConfig)?;
        plan.preprocessing = PreprocessingReport {
            profiling_seconds: profile_report.wall_time_seconds,
            partition_seconds,
            fill_seconds,
        };
        Ok(plan)
    }

    /// Convenience accessor for the profile database used during planning,
    /// for callers that want to inspect layer times afterwards.
    pub fn profile(&self, global_batch: u32) -> ProfileDb {
        Profiler::new(self.device.clone())
            .with_world_size(self.cluster.world_size())
            .profile(&self.model, global_batch)
            .0
    }

    /// Memory feasibility under per-class device memory limits. Returns the
    /// reported peak (max per-stage peak; bidirectional plans sum the two
    /// pipelines' peaks, as each device holds one stage of each backbone)
    /// when every stage fits the tightest memory budget among its devices,
    /// `None` otherwise. On homogeneous clusters every budget equals
    /// `device_memory_bytes`, reproducing the original single-limit check
    /// decision for decision.
    fn check_memory(
        &self,
        mm: &MemoryModel<'_>,
        partition: &BackbonePartition,
        layout: &DataParallelLayout,
        class_map: &ClassMap,
    ) -> Option<u64> {
        let stage_limit = |st: &dpipe_partition::StagePlan| -> u64 {
            class_map.min_memory(layout.groups.iter().flat_map(|g| st.devices_in_group(g)))
        };
        let stage_peak = |p: &dpipe_partition::PartitionPlan, s: usize| -> u64 {
            let st = &p.stages[s];
            let in_flight = p.num_micro_batches.min(p.stages.len() - s).max(1);
            mm.pipeline_stage_peak(
                st.component,
                st.layers.clone(),
                st.local_batch(p.micro_batch),
                in_flight,
            )
        };
        match partition {
            BackbonePartition::Single(p) => {
                let mut peak = 0u64;
                for s in 0..p.stages.len() {
                    let this = stage_peak(p, s);
                    if this > stage_limit(&p.stages[s]) {
                        return None;
                    }
                    peak = peak.max(this);
                }
                Some(peak)
            }
            // Bidirectional: each device holds one stage of each backbone;
            // the (conservative) budget is the tightest memory among all
            // chain devices, checked against the two pipelines' peak sum.
            BackbonePartition::Bidirectional(p) => {
                let peaks = |plan: &dpipe_partition::PartitionPlan| -> u64 {
                    (0..plan.stages.len())
                        .map(|s| stage_peak(plan, s))
                        .max()
                        .unwrap_or(0)
                };
                let total = peaks(&p.down) + peaks(&p.up);
                let limit = class_map
                    .min_memory(layout.groups.iter().flat_map(|g| g.devices.iter().copied()));
                if total > limit {
                    None
                } else {
                    Some(total)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    #[test]
    fn sd_plan_beats_no_fill_ablation() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let full = Planner::new(model.clone(), cluster.clone())
            .plan(256)
            .unwrap();
        let no_fill = Planner::new(model, cluster)
            .with_options(PlannerOptions {
                bubble_filling: false,
                partial_batch: false,
            })
            .plan(256)
            .unwrap();
        assert!(
            full.throughput > no_fill.throughput,
            "full {} !> no_fill {}",
            full.throughput,
            no_fill.throughput
        );
    }

    #[test]
    fn partial_batch_ablation_is_between() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let full = Planner::new(model.clone(), cluster.clone())
            .plan(384)
            .unwrap();
        let no_partial = Planner::new(model.clone(), cluster.clone())
            .with_options(PlannerOptions {
                bubble_filling: true,
                partial_batch: false,
            })
            .plan(384)
            .unwrap();
        let no_fill = Planner::new(model, cluster)
            .with_options(PlannerOptions {
                bubble_filling: false,
                partial_batch: false,
            })
            .plan(384)
            .unwrap();
        assert!(full.throughput >= no_partial.throughput);
        assert!(no_partial.throughput >= 0.98 * no_fill.throughput);
    }

    #[test]
    fn cdm_uses_bidirectional_partition() {
        let model = zoo::cdm_lsun();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(256).unwrap();
        assert!(matches!(
            plan.partition,
            BackbonePartition::Bidirectional(_)
        ));
        assert!(plan.throughput > 0.0);
    }

    #[test]
    fn plan_reports_preprocessing_costs() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(64).unwrap();
        // §6.4: partitioning ~0.5 s, filling < 1 s, profiling tens of
        // seconds (simulated). Wall times here just need to be sane.
        assert!(plan.preprocessing.profiling_seconds > 0.0);
        assert!(plan.preprocessing.partition_seconds < 30.0);
        assert!(plan.preprocessing.fill_seconds < 30.0);
    }

    #[test]
    fn residual_bubbles_are_small() {
        // Fig. 14: DiffusionPipe's bubble ratio < 5%.
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let plan = Planner::new(model, cluster).plan(256).unwrap();
        assert!(plan.bubble_ratio < 0.08, "ratio {}", plan.bubble_ratio);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut model = zoo::stable_diffusion_v2_1();
        model.components.retain(|c| !c.is_trainable());
        let err = Planner::new(model, ClusterSpec::single_node(8))
            .plan(64)
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidModel(_)));
    }

    #[test]
    fn degenerate_search_space_is_invalid_request() {
        let model = zoo::stable_diffusion_v2_1();
        let err = Planner::new(model, ClusterSpec::single_node(8))
            .with_search_space(SearchSpace {
                max_stages: 0,
                max_micro_batches: 8,
            })
            .plan(64)
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidRequest(_)), "{err:?}");
    }

    #[test]
    fn parallel_plan_is_identical_for_any_worker_count() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let sequential = Planner::new(model.clone(), cluster.clone())
            .plan(256)
            .unwrap();
        for workers in [2usize, 4, 16] {
            let parallel = Planner::new(model.clone(), cluster.clone())
                .with_parallelism(workers)
                .plan(256)
                .unwrap();
            assert_eq!(
                parallel.summary(),
                sequential.summary(),
                "workers {workers}"
            );
            assert_eq!(parallel.partition, sequential.partition);
        }
    }

    #[test]
    fn fast_plan_matches_reference_bit_for_bit() {
        for model in [zoo::stable_diffusion_v2_1(), zoo::cdm_lsun()] {
            let cluster = ClusterSpec::single_node(8);
            let planner = Planner::new(model, cluster).with_parallelism(2);
            let fast = planner.plan(128).unwrap();
            let reference = planner.plan_reference(128).unwrap();
            assert_eq!(fast.summary(), reference.summary());
            assert_eq!(fast.partition, reference.partition);
            assert_eq!(fast.fill, reference.fill);
        }
    }

    #[test]
    fn from_spec_reproduces_the_builder_path_byte_for_byte() {
        let cluster = ClusterSpec::single_node(8);
        for spec in [
            PlanSpec::zoo("sd", cluster.clone(), 256),
            PlanSpec::new(zoo::stable_diffusion_v2_1(), cluster.clone(), 256),
        ] {
            let via_spec = Planner::plan_spec(&spec).unwrap();
            let direct = Planner::new(zoo::stable_diffusion_v2_1(), cluster.clone())
                .plan(256)
                .unwrap();
            assert_eq!(via_spec.summary(), direct.summary());
            assert_eq!(via_spec.partition, direct.partition);
            assert_eq!(via_spec.fill, direct.fill);
        }
    }

    #[test]
    fn from_spec_rejects_unknown_models_and_versions() {
        let unknown = PlanSpec::zoo("warpdrive", ClusterSpec::single_node(8), 64);
        let err = Planner::from_spec(&unknown).unwrap_err();
        assert!(
            matches!(&err, PlanError::InvalidRequest(m) if m.contains("warpdrive")),
            "{err:?}"
        );
        let mut future = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 64);
        future.schema_version = 99;
        let err = Planner::from_spec(&future).unwrap_err();
        assert!(
            matches!(&err, PlanError::InvalidRequest(m) if m.contains("schema_version")),
            "{err:?}"
        );
        // An invalid *inline* model still surfaces from plan(), like the
        // builder path.
        let mut broken = zoo::stable_diffusion_v2_1();
        broken.components.retain(|c| !c.is_trainable());
        let spec = PlanSpec::new(broken, ClusterSpec::single_node(8), 64);
        let err = Planner::plan_spec(&spec).unwrap_err();
        assert!(matches!(err, PlanError::InvalidModel(_)), "{err:?}");
    }

    #[test]
    fn spec_schedule_kind_is_honoured_and_fast_path_stays_equivalent() {
        let spec = PlanSpec::zoo("sd", ClusterSpec::single_node(8), 128)
            .with_schedule(ScheduleKind::GPipe)
            .with_parallelism(2);
        let planner = Planner::from_spec(&spec).unwrap();
        let gpipe = planner.plan(128).unwrap();
        let reference = planner.plan_reference(128).unwrap();
        assert_eq!(gpipe.summary(), reference.summary());
        assert_eq!(gpipe.partition, reference.partition);
        // GPipe schedules differently than 1F1B for the same inputs.
        let fifo = Planner::plan_spec(&spec.clone().with_schedule(ScheduleKind::Fifo1F1B)).unwrap();
        assert!(gpipe.throughput > 0.0 && fifo.throughput > 0.0);
    }

    #[test]
    fn stats_report_search_effort() {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let (plan, stats) = Planner::new(model, cluster)
            .with_parallelism(2)
            .plan_with_stats(256)
            .unwrap();
        assert!(plan.throughput > 0.0);
        assert!(stats.configs > 0);
        assert!(stats.feasible > 0 && stats.feasible <= stats.configs);
        assert!(stats.dp.candidates > 0);
        assert!(stats.dp.pruned <= stats.dp.candidates);
        assert_eq!(stats.parallelism, 2);
    }
}
