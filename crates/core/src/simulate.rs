//! Fault-injecting simulation of a complete [`Plan`] plus degraded-mode
//! re-planning.
//!
//! The planner's schedule is analytic: every op carries its simulated start
//! and end time. This module lowers that schedule to per-slot instruction
//! streams ([`dpipe_sim::Instruction`]) whose discrete-event replay is
//! *exact* — with no faults the replayed iteration time agrees with
//! [`Plan::iteration_time`] to floating-point noise. A seeded
//! [`FaultSpec`] (stragglers, degraded links, node drops) then perturbs the
//! replay per data-parallel group, yielding a reproducible degraded
//! timeline, throughput deltas, and — when machines drop — a re-plan on the
//! surviving cluster with a [`MigrationDiff`] describing how stages move.
//!
//! The lowering keeps communication as delay edges (eager sends), handles
//! bubble-filled frozen work as extra compute at the front of each bubble,
//! and accounts for the leftover frozen tail and gradient syncs
//! analytically, shifting each sync by how much its stage's last backward
//! slipped in the replay.

use crate::error::PlanError;
use crate::plan::{BackbonePartition, Plan};
use dpipe_cluster::{DataParallelLayout, MachineId, PipelineGroup};
use dpipe_schedule::{OpKind, PipelineDirection};
use dpipe_sim::{FaultPlan, FaultSpec, FaultedRun, Instruction, InstructionSim};
use dpipe_spec::json::JsonValue;
use dpipe_spec::PlanSpec;
use dpipe_trace::{SpanId, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What one instruction in a lowered stream stands for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StreamMeta {
    /// A backbone op (forward/self-cond/backward).
    Op {
        kind: OpKind,
        direction: PipelineDirection,
    },
    /// Frozen work filled into a bubble.
    Fill,
    /// A communication edge (send or recv).
    Comm,
}

/// A plan lowered to per-slot instruction streams.
struct Lowered {
    /// Instruction stream per chain slot.
    streams: Vec<Vec<Instruction>>,
    /// Parallel metadata per instruction.
    meta: Vec<Vec<StreamMeta>>,
    /// Analytic end of the last backward per (slot, direction) — the
    /// anchor each gradient sync starts from.
    last_backward: HashMap<(usize, PipelineDirection), f64>,
}

/// Lowers the plan's analytic schedule to exact instruction streams.
///
/// Per slot, ops are laid out in realized start order; every dependency
/// becomes an eager `Send` (duration = the edge's communication delay)
/// right after its producer and a `Recv` right before its consumer, under
/// a globally unique tag. Fill items become plain `Compute` entries at the
/// front of their bubble on every idle slot, mirroring
/// [`dpipe_sim::CombinedIteration`]'s accounting.
fn lower_plan(plan: &Plan) -> Lowered {
    let sched = &plan.schedule;
    let num_slots = sched.num_slots;

    // Dependency edges, tagged globally.
    struct Edge {
        src_slot: usize,
        dst_slot: usize,
        delay: f64,
        tag: u64,
    }
    let mut edges: Vec<Edge> = Vec::new();
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); sched.ops.len()];
    let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); sched.ops.len()];
    for (j, op) in sched.ops.iter().enumerate() {
        for &(dep, delay) in &op.op.deps {
            let id = edges.len();
            edges.push(Edge {
                src_slot: sched.ops[dep.0].op.slot,
                dst_slot: op.op.slot,
                delay,
                tag: id as u64,
            });
            incoming[j].push(id);
            outgoing[dep.0].push(id);
        }
    }

    // Per-slot items in realized order: key (start, class, order) with
    // fills (class 0) ahead of ops (class 1) on the vanishingly rare exact
    // tie — a fill always occupies the *front* of an idle window.
    enum Item {
        Op(usize),
        Fill { label: String, seconds: f64 },
    }
    let mut items: Vec<Vec<(f64, u8, usize, Item)>> = (0..num_slots).map(|_| Vec::new()).collect();
    for (j, op) in sched.ops.iter().enumerate() {
        items[op.op.slot].push((op.start, 1, op.op.priority, Item::Op(j)));
    }
    let mut fill_seq = 0usize;
    for bf in &plan.fill.bubbles {
        let bubble = &plan.bubbles[bf.bubble_index];
        let mut t = bubble.start;
        for item in &bf.items {
            if item.duration > 0.0 {
                for &slot in &bubble.slots {
                    items[slot].push((
                        t,
                        0,
                        fill_seq,
                        Item::Fill {
                            label: format!("fill c{} l{}", item.component.0, item.layer),
                            seconds: item.duration,
                        },
                    ));
                }
            }
            t += item.duration;
            fill_seq += 1;
        }
    }
    for list in &mut items {
        list.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    }

    let mut streams: Vec<Vec<Instruction>> = (0..num_slots).map(|_| Vec::new()).collect();
    let mut meta: Vec<Vec<StreamMeta>> = (0..num_slots).map(|_| Vec::new()).collect();
    let mut last_backward: HashMap<(usize, PipelineDirection), f64> = HashMap::new();
    for (slot, list) in items.iter().enumerate() {
        for (_, _, _, item) in list {
            match item {
                Item::Fill { label, seconds } => {
                    streams[slot].push(Instruction::Compute {
                        label: label.clone(),
                        seconds: *seconds,
                    });
                    meta[slot].push(StreamMeta::Fill);
                }
                Item::Op(j) => {
                    let sop = &sched.ops[*j];
                    for &e in &incoming[*j] {
                        streams[slot].push(Instruction::Recv {
                            peer: edges[e].src_slot,
                            tag: edges[e].tag,
                        });
                        meta[slot].push(StreamMeta::Comm);
                    }
                    streams[slot].push(Instruction::Compute {
                        label: format!(
                            "{}{} s{} mb{}",
                            sop.op.kind,
                            match sop.op.direction {
                                PipelineDirection::Down => "",
                                PipelineDirection::Up => "^",
                            },
                            sop.op.stage,
                            sop.op.micro_batch
                        ),
                        seconds: sop.op.duration,
                    });
                    meta[slot].push(StreamMeta::Op {
                        kind: sop.op.kind,
                        direction: sop.op.direction,
                    });
                    for &e in &outgoing[*j] {
                        streams[slot].push(Instruction::Send {
                            peer: edges[e].dst_slot,
                            tag: edges[e].tag,
                            seconds: edges[e].delay,
                        });
                        meta[slot].push(StreamMeta::Comm);
                    }
                    if sop.op.kind == OpKind::Backward {
                        let entry = last_backward
                            .entry((slot, sop.op.direction))
                            .or_insert(f64::NEG_INFINITY);
                        *entry = entry.max(sop.end);
                    }
                }
            }
        }
    }
    Lowered {
        streams,
        meta,
        last_backward,
    }
}

/// Global device ranks executing each chain slot, for one pipeline group.
///
/// Single pipelines map stage `i` to slot `i`; bidirectional pipelines map
/// a stage to `device_offsets[0] / replication` (mirroring the schedule
/// builder), with the down and up stage sharing one slot's devices.
fn slot_devices(plan: &Plan, group: &PipelineGroup) -> Vec<Vec<usize>> {
    let mut devices: Vec<Vec<usize>> = (0..plan.schedule.num_slots).map(|_| Vec::new()).collect();
    match &plan.partition {
        BackbonePartition::Single(p) => {
            for (i, sp) in p.stages.iter().enumerate() {
                devices[i] = sp
                    .devices_in_group(group)
                    .into_iter()
                    .map(|d| d.rank())
                    .collect();
            }
        }
        BackbonePartition::Bidirectional(b) => {
            for sp in b.down.stages.iter().chain(b.up.stages.iter()) {
                let slot = sp.device_offsets[0] / sp.replication;
                for d in sp.devices_in_group(group) {
                    if !devices[slot].contains(&d.rank()) {
                        devices[slot].push(d.rank());
                    }
                }
            }
        }
    }
    devices
}

/// One group's replay, reduced to the figures the report needs.
struct GroupEval {
    run: FaultedRun,
    /// Complete-iteration time; `None` when devices dropped or stranded.
    iteration: Option<f64>,
    /// Busy (compute + fill) seconds per slot.
    slot_busy: Vec<f64>,
}

fn run_group(plan: &Plan, lowered: &Lowered, fplan: &FaultPlan) -> Result<GroupEval, PlanError> {
    let run = InstructionSim::run_faulted(&lowered.streams, fplan)
        .map_err(|e| PlanError::Internal(format!("instruction simulation failed: {e}")))?;
    let mut compute_end = 0.0f64;
    let mut fill_end = 0.0f64;
    let mut slot_busy = vec![0.0f64; lowered.streams.len()];
    let mut last_backward: HashMap<(usize, PipelineDirection), f64> = HashMap::new();
    for t in &run.traces {
        match lowered.meta[t.device][t.index] {
            StreamMeta::Op { kind, direction } => {
                compute_end = compute_end.max(t.end);
                slot_busy[t.device] += t.end - t.start;
                if kind == OpKind::Backward {
                    let entry = last_backward
                        .entry((t.device, direction))
                        .or_insert(f64::NEG_INFINITY);
                    *entry = entry.max(t.end);
                }
            }
            StreamMeta::Fill => {
                fill_end = fill_end.max(t.end);
                slot_busy[t.device] += t.end - t.start;
            }
            StreamMeta::Comm => {}
        }
    }
    // Each gradient sync starts after its stage's last backward; shift it
    // by however much that backward slipped versus the analytic schedule.
    let sync_end = plan
        .schedule
        .syncs
        .iter()
        .map(|s| {
            let key = (s.slot, s.direction);
            let shift = match (last_backward.get(&key), lowered.last_backward.get(&key)) {
                (Some(&replayed), Some(&analytic)) => (replayed - analytic).max(0.0),
                _ => 0.0,
            };
            s.start + shift + s.duration
        })
        .fold(0.0, f64::max);
    // The leftover frozen tail runs data-parallel on every slot right
    // after backbone compute; a straggler active at that point stretches it.
    let tail_scale = (0..lowered.streams.len())
        .map(|s| fplan.compute_scale(s, compute_end))
        .fold(1.0, f64::max);
    let leftover = plan.fill.leftover_time * tail_scale;
    let complete = run.dropped_devices.is_empty() && run.stranded_devices.is_empty();
    let iteration = complete.then(|| (compute_end + leftover).max(sync_end).max(fill_end));
    Ok(GroupEval {
        run,
        iteration,
        slot_busy,
    })
}

/// One labelled span of a degraded timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSpan {
    /// Human-readable label (`"F s1 mb2"`, `"fill c0 l3"`).
    pub label: String,
    /// Start time, seconds.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// The degraded timeline of one chain slot (group 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotTimeline {
    /// Chain slot index.
    pub slot: usize,
    /// Global device ranks executing the slot in lockstep.
    pub devices: Vec<usize>,
    /// Compute and fill spans in start order.
    pub spans: Vec<TimelineSpan>,
}

/// Headline figures of a fault-injected simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Fingerprint of the fault spec driving the run.
    pub fault_fingerprint: u64,
    /// Fingerprint of the simulated plan.
    pub plan_fingerprint: u64,
    /// Devices in the cluster.
    pub world_size: usize,
    /// Machines in the cluster.
    pub num_machines: usize,
    /// Data-parallel groups simulated.
    pub dp_groups: usize,
    /// The planner's analytic iteration time, seconds.
    pub predicted_iteration: f64,
    /// Fault-free replayed iteration time (agrees with the prediction to
    /// floating-point noise).
    pub simulated_iteration: f64,
    /// Degraded iteration time; `None` when a node drop left the iteration
    /// incomplete.
    pub degraded_iteration: Option<f64>,
    /// The plan's analytic cluster throughput, samples/second.
    pub baseline_throughput: f64,
    /// Degraded cluster throughput, when the iteration completes.
    pub degraded_throughput: Option<f64>,
    /// Relative throughput change, `(degraded - baseline) / baseline`.
    pub throughput_delta: Option<f64>,
    /// Latest event time across all groups (even incomplete ones).
    pub makespan: f64,
    /// Instructions that executed, summed over groups.
    pub completed_instructions: usize,
    /// Instructions across all groups' streams.
    pub total_instructions: usize,
    /// Global ranks halted by a node drop.
    pub dropped_devices: Vec<usize>,
    /// Global ranks blocked forever on a dropped peer.
    pub stranded_devices: Vec<usize>,
    /// Busy fraction per global rank over the degraded run.
    pub device_utilization: Vec<f64>,
}

/// Where a stage of the plan lives: the unit the migration diff compares.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageLayout {
    /// `"down"` or `"up"`.
    pub direction: String,
    /// Backbone component index.
    pub component: usize,
    /// First layer (inclusive).
    pub layer_start: usize,
    /// Last layer (exclusive).
    pub layer_end: usize,
    /// Replication degree within the group.
    pub replication: usize,
    /// Chain offsets of the stage's devices.
    pub device_offsets: Vec<usize>,
}

/// One edit step of a [`MigrationDiff`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageEdit {
    /// Stage `index` changes shape or placement.
    Changed {
        /// Position in the flattened stage list.
        index: usize,
        /// Layout before.
        old: StageLayout,
        /// Layout after.
        new: StageLayout,
    },
    /// Stage `index` disappears (applied in descending index order).
    Removed {
        /// Position in the old stage list.
        index: usize,
        /// The layout removed.
        old: StageLayout,
    },
    /// A stage appears at `index` (applied in ascending index order).
    Added {
        /// Position in the new stage list.
        index: usize,
        /// The layout added.
        new: StageLayout,
    },
}

/// A constructive diff between two plans' stage layouts: applying the
/// edits to the old layout yields the new one exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationDiff {
    /// Edit script, aligned changes first, then removals (descending),
    /// then additions (ascending).
    pub edits: Vec<StageEdit>,
    /// Aligned stages whose devices or replication changed.
    pub stages_moved: usize,
    /// Layers whose device placement changed (or that changed stage).
    pub layers_reassigned: usize,
    /// Global ranks that left the cluster.
    pub devices_retired: Vec<usize>,
}

/// Flattens a plan's partition into comparable stage layouts (down
/// pipeline first, then up).
pub fn stage_layouts(plan: &Plan) -> Vec<StageLayout> {
    let flat = |stages: &[dpipe_partition::StagePlan], direction: &str| {
        stages
            .iter()
            .map(|sp| StageLayout {
                direction: direction.to_owned(),
                component: sp.component.0,
                layer_start: sp.layers.start,
                layer_end: sp.layers.end,
                replication: sp.replication,
                device_offsets: sp.device_offsets.clone(),
            })
            .collect::<Vec<_>>()
    };
    match &plan.partition {
        BackbonePartition::Single(p) => flat(&p.stages, "down"),
        BackbonePartition::Bidirectional(b) => {
            let mut v = flat(&b.down.stages, "down");
            v.extend(flat(&b.up.stages, "up"));
            v
        }
    }
}

impl MigrationDiff {
    /// Computes the edit script turning `old` into `new`.
    pub fn between(old: &[StageLayout], new: &[StageLayout], devices_retired: Vec<usize>) -> Self {
        let aligned = old.len().min(new.len());
        let mut edits = Vec::new();
        let mut stages_moved = 0;
        for i in 0..aligned {
            if old[i] != new[i] {
                if old[i].device_offsets != new[i].device_offsets
                    || old[i].replication != new[i].replication
                {
                    stages_moved += 1;
                }
                edits.push(StageEdit::Changed {
                    index: i,
                    old: old[i].clone(),
                    new: new[i].clone(),
                });
            }
        }
        for i in (aligned..old.len()).rev() {
            edits.push(StageEdit::Removed {
                index: i,
                old: old[i].clone(),
            });
        }
        for (i, layout) in new.iter().enumerate().skip(aligned) {
            edits.push(StageEdit::Added {
                index: i,
                new: layout.clone(),
            });
        }
        // A layer is reassigned when the devices it runs on change (or it
        // has no owner on one side).
        let owners = |layouts: &[StageLayout]| {
            let mut map: HashMap<(String, usize, usize), Vec<usize>> = HashMap::new();
            for l in layouts {
                for layer in l.layer_start..l.layer_end {
                    map.insert(
                        (l.direction.clone(), l.component, layer),
                        l.device_offsets.clone(),
                    );
                }
            }
            map
        };
        let before = owners(old);
        let after = owners(new);
        let mut layers_reassigned = 0;
        for (key, devs) in &before {
            if after.get(key) != Some(devs) {
                layers_reassigned += 1;
            }
        }
        for key in after.keys() {
            if !before.contains_key(key) {
                layers_reassigned += 1;
            }
        }
        MigrationDiff {
            edits,
            stages_moved,
            layers_reassigned,
            devices_retired,
        }
    }

    /// Applies the edit script to `old`, producing the new layout.
    pub fn apply(&self, old: &[StageLayout]) -> Vec<StageLayout> {
        let mut out = old.to_vec();
        for edit in &self.edits {
            match edit {
                StageEdit::Changed { index, new, .. } => {
                    if let Some(slot) = out.get_mut(*index) {
                        *slot = new.clone();
                    }
                }
                StageEdit::Removed { index, .. } => {
                    if *index < out.len() {
                        out.remove(*index);
                    }
                }
                StageEdit::Added { index, new } => {
                    let at = (*index).min(out.len());
                    out.insert(at, new.clone());
                }
            }
        }
        out
    }
}

/// Outcome of re-planning on the surviving cluster after node drops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replan {
    /// Machines removed from the cluster.
    pub dropped_machines: Vec<usize>,
    /// Machines that survive.
    pub surviving_machines: usize,
    /// Devices that survive.
    pub surviving_world: usize,
    /// The re-planned configuration.
    pub plan: Plan,
    /// How stages migrate from the old plan to the new one.
    pub diff: MigrationDiff,
    /// The re-plan's cluster throughput, samples/second.
    pub recovered_throughput: f64,
    /// `recovered_throughput / baseline_throughput`.
    pub recovery_ratio: f64,
}

/// A complete fault-injected simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Headline figures.
    pub report: SimReport,
    /// Group 0's degraded per-slot timeline.
    pub timeline: Vec<SlotTimeline>,
    /// Degraded-mode re-plan (present when machines dropped and at least
    /// one machine survives).
    pub replan: Option<Replan>,
}

fn uint_array(values: &[usize]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::UInt(v as u64)).collect())
}

fn opt_num(value: Option<f64>) -> JsonValue {
    value.map_or(JsonValue::Null, JsonValue::Num)
}

fn stage_layout_json(layout: &StageLayout) -> JsonValue {
    JsonValue::Object(vec![
        (
            "direction".to_owned(),
            JsonValue::Str(layout.direction.clone()),
        ),
        (
            "component".to_owned(),
            JsonValue::UInt(layout.component as u64),
        ),
        (
            "layer_start".to_owned(),
            JsonValue::UInt(layout.layer_start as u64),
        ),
        (
            "layer_end".to_owned(),
            JsonValue::UInt(layout.layer_end as u64),
        ),
        (
            "replication".to_owned(),
            JsonValue::UInt(layout.replication as u64),
        ),
        (
            "device_offsets".to_owned(),
            uint_array(&layout.device_offsets),
        ),
    ])
}

impl MigrationDiff {
    /// The diff as a JSON object (constructive edit script included).
    pub fn to_json_value(&self) -> JsonValue {
        let edits = self
            .edits
            .iter()
            .map(|edit| {
                let fields = match edit {
                    StageEdit::Changed { index, old, new } => vec![
                        ("op".to_owned(), JsonValue::Str("changed".to_owned())),
                        ("index".to_owned(), JsonValue::UInt(*index as u64)),
                        ("old".to_owned(), stage_layout_json(old)),
                        ("new".to_owned(), stage_layout_json(new)),
                    ],
                    StageEdit::Removed { index, old } => vec![
                        ("op".to_owned(), JsonValue::Str("removed".to_owned())),
                        ("index".to_owned(), JsonValue::UInt(*index as u64)),
                        ("old".to_owned(), stage_layout_json(old)),
                    ],
                    StageEdit::Added { index, new } => vec![
                        ("op".to_owned(), JsonValue::Str("added".to_owned())),
                        ("index".to_owned(), JsonValue::UInt(*index as u64)),
                        ("new".to_owned(), stage_layout_json(new)),
                    ],
                };
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            (
                "stages_moved".to_owned(),
                JsonValue::UInt(self.stages_moved as u64),
            ),
            (
                "layers_reassigned".to_owned(),
                JsonValue::UInt(self.layers_reassigned as u64),
            ),
            (
                "devices_retired".to_owned(),
                uint_array(&self.devices_retired),
            ),
            ("edits".to_owned(), JsonValue::Array(edits)),
        ])
    }
}

/// The simulation outcome as a JSON object — the `simulation` field of
/// both `dpipe simulate --json` and `POST /simulate`, built in one place
/// so the two surfaces stay byte-identical. The ASCII timeline is a
/// render-side view ([`render_sim_timeline`]) and deliberately not part
/// of the document.
pub fn simulation_json(outcome: &SimulationOutcome) -> JsonValue {
    let r = &outcome.report;
    let report = JsonValue::Object(vec![
        (
            "fault_fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", r.fault_fingerprint)),
        ),
        (
            "plan_fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", r.plan_fingerprint)),
        ),
        (
            "world_size".to_owned(),
            JsonValue::UInt(r.world_size as u64),
        ),
        (
            "num_machines".to_owned(),
            JsonValue::UInt(r.num_machines as u64),
        ),
        ("dp_groups".to_owned(), JsonValue::UInt(r.dp_groups as u64)),
        (
            "predicted_iteration_s".to_owned(),
            JsonValue::Num(r.predicted_iteration),
        ),
        (
            "simulated_iteration_s".to_owned(),
            JsonValue::Num(r.simulated_iteration),
        ),
        (
            "degraded_iteration_s".to_owned(),
            opt_num(r.degraded_iteration),
        ),
        (
            "baseline_throughput".to_owned(),
            JsonValue::Num(r.baseline_throughput),
        ),
        (
            "degraded_throughput".to_owned(),
            opt_num(r.degraded_throughput),
        ),
        ("throughput_delta".to_owned(), opt_num(r.throughput_delta)),
        ("makespan_s".to_owned(), JsonValue::Num(r.makespan)),
        (
            "completed_instructions".to_owned(),
            JsonValue::UInt(r.completed_instructions as u64),
        ),
        (
            "total_instructions".to_owned(),
            JsonValue::UInt(r.total_instructions as u64),
        ),
        ("dropped_devices".to_owned(), uint_array(&r.dropped_devices)),
        (
            "stranded_devices".to_owned(),
            uint_array(&r.stranded_devices),
        ),
        (
            "device_utilization".to_owned(),
            JsonValue::Array(
                r.device_utilization
                    .iter()
                    .map(|&u| JsonValue::Num(u))
                    .collect(),
            ),
        ),
    ]);
    let replan = outcome.replan.as_ref().map_or(JsonValue::Null, |rp| {
        JsonValue::Object(vec![
            (
                "dropped_machines".to_owned(),
                uint_array(&rp.dropped_machines),
            ),
            (
                "surviving_machines".to_owned(),
                JsonValue::UInt(rp.surviving_machines as u64),
            ),
            (
                "surviving_world".to_owned(),
                JsonValue::UInt(rp.surviving_world as u64),
            ),
            (
                "recovered_throughput".to_owned(),
                JsonValue::Num(rp.recovered_throughput),
            ),
            (
                "recovery_ratio".to_owned(),
                JsonValue::Num(rp.recovery_ratio),
            ),
            ("diff".to_owned(), rp.diff.to_json_value()),
            ("plan".to_owned(), crate::json::plan_json(&rp.plan)),
        ])
    });
    JsonValue::Object(vec![
        ("report".to_owned(), report),
        ("replan".to_owned(), replan),
    ])
}

/// The spec of the surviving cluster after this fault spec's node drops.
pub fn degraded_spec(spec: &PlanSpec, faults: &FaultSpec) -> PlanSpec {
    let removed: Vec<MachineId> = faults
        .dropped_machines()
        .into_iter()
        .map(MachineId)
        .collect();
    let mut degraded = spec.clone();
    degraded.cluster = spec.cluster.without_machines(&removed);
    degraded
}

/// Simulates `plan` on `spec`'s cluster under `faults`.
///
/// Every data-parallel group is replayed with the group index as the fault
/// plan's salt, so groups sharing a seed stay deterministic but
/// uncorrelated. When the fault spec drops machines and at least one
/// machine survives, `replan_with` is invoked on the surviving cluster's
/// spec (callers route this through their planner or plan cache) and the
/// result is compared stage by stage with the original plan.
///
/// # Errors
///
/// [`PlanError::InvalidRequest`] when the fault spec does not fit the
/// cluster, whatever `replan_with` returns when degraded re-planning
/// fails, and [`PlanError::Internal`] if the replay itself errors (a bug,
/// not an input problem).
pub fn simulate_plan(
    spec: &PlanSpec,
    plan: &Plan,
    faults: &FaultSpec,
    tracer: &Tracer,
    parent: Option<SpanId>,
    replan_with: impl FnOnce(&PlanSpec) -> Result<Plan, PlanError>,
) -> Result<SimulationOutcome, PlanError> {
    let cluster = &spec.cluster;
    let world = cluster.world_size();
    faults
        .validate(world, cluster.machines)
        .map_err(|e| PlanError::InvalidRequest(e.to_string()))?;
    let layout = DataParallelLayout::new(cluster, plan.hyper.group_size).ok_or_else(|| {
        PlanError::InvalidRequest(format!(
            "plan group size {} does not divide world size {world}",
            plan.hyper.group_size
        ))
    })?;
    let mut span = tracer.child_span("simulate", parent);
    span.set("world", world);
    span.set("dp_groups", layout.data_parallel_degree());
    span.set("faults", if faults.is_empty() { "none" } else { "some" });

    let lowered = {
        let mut s = tracer.child_span("simulate.lower", span.id());
        let lowered = lower_plan(plan);
        s.set(
            "instructions",
            lowered.streams.iter().map(Vec::len).sum::<usize>(),
        );
        s.finish();
        lowered
    };
    let machine_of: Vec<usize> = (0..world)
        .map(|d| d / cluster.devices_per_machine)
        .collect();

    // Fault-free reference replay (identical for every group).
    let reference = run_group(plan, &lowered, &FaultPlan::none())?;
    let simulated_iteration = reference
        .iteration
        .ok_or_else(|| PlanError::Internal("fault-free replay did not complete".to_owned()))?;

    // Degraded replay, one run per data-parallel group.
    let mut replay_span = tracer.child_span("simulate.replay", span.id());
    let mut groups: Vec<(Vec<Vec<usize>>, GroupEval)> = Vec::new();
    for group in &layout.groups {
        let devices = slot_devices(plan, group);
        let fplan = FaultPlan::compile(faults, &devices, &machine_of, group.index as u64);
        let eval = run_group(plan, &lowered, &fplan)?;
        groups.push((devices, eval));
    }
    let complete = groups.iter().all(|(_, e)| e.iteration.is_some());
    let degraded_iteration = complete.then(|| {
        groups
            .iter()
            .filter_map(|(_, e)| e.iteration)
            .fold(0.0, f64::max)
    });
    let makespan = groups
        .iter()
        .map(|(_, e)| e.run.makespan)
        .fold(0.0, f64::max);
    let degraded_throughput = degraded_iteration
        .map(|iter| plan.schedule.group_batch * layout.data_parallel_degree() as f64 / iter);
    let throughput_delta = degraded_throughput.map(|d| (d - plan.throughput) / plan.throughput);

    let mut dropped_devices = Vec::new();
    let mut stranded_devices = Vec::new();
    let mut device_utilization = vec![0.0f64; world];
    let mut completed_instructions = 0;
    let mut total_instructions = 0;
    for (devices, eval) in &groups {
        for &slot in &eval.run.dropped_devices {
            dropped_devices.extend(devices[slot].iter().copied());
        }
        for &slot in &eval.run.stranded_devices {
            stranded_devices.extend(devices[slot].iter().copied());
        }
        if eval.run.makespan > 0.0 {
            for (slot, ranks) in devices.iter().enumerate() {
                for &rank in ranks {
                    device_utilization[rank] = eval.slot_busy[slot] / eval.run.makespan;
                }
            }
        }
        completed_instructions += eval.run.completed_instructions;
        total_instructions += eval.run.total_instructions;
    }
    dropped_devices.sort_unstable();
    dropped_devices.dedup();
    stranded_devices.sort_unstable();
    stranded_devices.dedup();
    replay_span.set("makespan_us", (makespan * 1e6) as u64);
    replay_span.set("complete", complete);
    replay_span.finish();

    // Group 0's timeline, labelled from the lowered streams.
    let timeline: Vec<SlotTimeline> = {
        let (devices, eval) = &groups[0];
        (0..lowered.streams.len())
            .map(|slot| SlotTimeline {
                slot,
                devices: devices[slot].clone(),
                spans: eval
                    .run
                    .traces
                    .iter()
                    .filter(|t| {
                        t.device == slot
                            && !matches!(lowered.meta[t.device][t.index], StreamMeta::Comm)
                    })
                    .map(|t| TimelineSpan {
                        label: match &lowered.streams[t.device][t.index] {
                            Instruction::Compute { label, .. } => label.clone(),
                            _ => String::new(),
                        },
                        start: t.start,
                        end: t.end,
                    })
                    .collect(),
            })
            .collect()
    };

    // Degraded-mode re-plan when machines dropped.
    let dropped_machines = faults.dropped_machines();
    let replan = if dropped_machines.is_empty() {
        None
    } else {
        let degraded = degraded_spec(spec, faults);
        if degraded.cluster.world_size() == 0 {
            None
        } else {
            let mut rspan = tracer.child_span("simulate.replan", span.id());
            rspan.set("surviving_machines", degraded.cluster.machines);
            let new_plan = replan_with(&degraded)?;
            let devices_retired: Vec<usize> = dropped_machines
                .iter()
                .flat_map(|&m| {
                    (m * cluster.devices_per_machine)..((m + 1) * cluster.devices_per_machine)
                })
                .collect();
            let diff = MigrationDiff::between(
                &stage_layouts(plan),
                &stage_layouts(&new_plan),
                devices_retired,
            );
            let recovered_throughput = new_plan.throughput;
            rspan.set("recovered_throughput", recovered_throughput);
            rspan.finish();
            Some(Replan {
                dropped_machines,
                surviving_machines: degraded.cluster.machines,
                surviving_world: degraded.cluster.world_size(),
                recovery_ratio: recovered_throughput / plan.throughput,
                recovered_throughput,
                diff,
                plan: new_plan,
            })
        }
    };

    let report = SimReport {
        fault_fingerprint: faults.fingerprint(),
        plan_fingerprint: plan.fingerprint(),
        world_size: world,
        num_machines: cluster.machines,
        dp_groups: layout.data_parallel_degree(),
        predicted_iteration: plan.iteration_time,
        simulated_iteration,
        degraded_iteration,
        baseline_throughput: plan.throughput,
        degraded_throughput,
        throughput_delta,
        makespan,
        completed_instructions,
        total_instructions,
        dropped_devices,
        stranded_devices,
        device_utilization,
    };
    span.set("degraded_iteration_us", (makespan * 1e6) as u64);
    span.finish();
    Ok(SimulationOutcome {
        report,
        timeline,
        replan,
    })
}

/// Renders a degraded timeline as a fixed-width ASCII Gantt chart.
///
/// One row per chain slot; `F`/`B`/`S` mark backbone compute (first letter
/// of the span label), `f` marks filled frozen work, `.` idle, and `x`
/// marks the region after a device stopped early.
pub fn render_sim_timeline(outcome: &SimulationOutcome) -> String {
    const WIDTH: usize = 96;
    let makespan = outcome.report.makespan.max(1e-9);
    let mut out = String::new();
    out.push_str(&format!(
        "degraded timeline, group 0 (makespan {:.1} ms, {} cols = {:.2} ms/col)\n",
        makespan * 1e3,
        WIDTH,
        makespan * 1e3 / WIDTH as f64
    ));
    for slot in &outcome.timeline {
        let mut row = vec!['.'; WIDTH];
        let mut slot_end = 0.0f64;
        for span in &slot.spans {
            slot_end = slot_end.max(span.end);
            let a = ((span.start / makespan) * WIDTH as f64).floor() as usize;
            let b = ((span.end / makespan) * WIDTH as f64).ceil() as usize;
            let ch = match span.label.chars().next() {
                Some('f') => 'f',
                Some(c) => c.to_ascii_uppercase(),
                None => '#',
            };
            for cell in row.iter_mut().take(b.min(WIDTH)).skip(a.min(WIDTH)) {
                *cell = ch;
            }
        }
        let halted = outcome
            .report
            .dropped_devices
            .iter()
            .chain(outcome.report.stranded_devices.iter())
            .any(|d| slot.devices.contains(d));
        if halted {
            let from = ((slot_end / makespan) * WIDTH as f64).ceil() as usize;
            for cell in row.iter_mut().skip(from.min(WIDTH)) {
                *cell = 'x';
            }
        }
        let devs = slot
            .devices
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "slot {:>2} [gpu {:>9}] |{}|\n",
            slot.slot,
            devs,
            row.iter().collect::<String>()
        ));
    }
    out.push_str("legend: F/S forward, B backward, f fill, . idle, x halted\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use dpipe_cluster::ClusterSpec;
    use dpipe_sim::{NodeDropFault, StragglerFault};

    fn sd_spec(cluster: ClusterSpec) -> PlanSpec {
        PlanSpec::zoo("sd", cluster, 256)
    }

    fn no_replan(_: &PlanSpec) -> Result<Plan, PlanError> {
        panic!("replan not expected for this fault spec");
    }

    #[test]
    fn zero_fault_replay_matches_cost_model() {
        let spec = sd_spec(ClusterSpec::single_node(8));
        let plan = Planner::plan_spec(&spec).unwrap();
        let out = simulate_plan(
            &spec,
            &plan,
            &FaultSpec::none(),
            &Tracer::off(),
            None,
            no_replan,
        )
        .unwrap();
        let r = &out.report;
        assert!(
            (r.simulated_iteration - r.predicted_iteration).abs() < 1e-6,
            "replay {} vs analytic {}",
            r.simulated_iteration,
            r.predicted_iteration
        );
        assert_eq!(r.degraded_iteration, Some(r.simulated_iteration));
        assert_eq!(r.throughput_delta, Some(0.0));
        assert_eq!(r.completed_instructions, r.total_instructions);
        assert!(r.dropped_devices.is_empty() && r.stranded_devices.is_empty());
        assert!(out.replan.is_none());
        // Utilization is a fraction on every rank.
        assert!(r
            .device_utilization
            .iter()
            .all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
    }

    #[test]
    fn straggler_degrades_throughput_deterministically() {
        let spec = sd_spec(ClusterSpec::single_node(8));
        let plan = Planner::plan_spec(&spec).unwrap();
        let faults = FaultSpec {
            seed: 7,
            stragglers: vec![StragglerFault {
                device: 0,
                scale: 2.0,
                from: 0.0,
            }],
            ..FaultSpec::none()
        };
        let a = simulate_plan(&spec, &plan, &faults, &Tracer::off(), None, no_replan).unwrap();
        let b = simulate_plan(&spec, &plan, &faults, &Tracer::off(), None, no_replan).unwrap();
        assert_eq!(a, b, "same spec + seed must replay identically");
        let r = &a.report;
        let degraded = r.degraded_iteration.expect("no drops -> complete");
        assert!(
            degraded > r.simulated_iteration + 1e-9,
            "straggler must slow the iteration: {degraded} vs {}",
            r.simulated_iteration
        );
        assert!(r.throughput_delta.unwrap() < 0.0);
    }

    #[test]
    fn invalid_fault_spec_is_an_invalid_request() {
        let spec = sd_spec(ClusterSpec::single_node(8));
        let plan = Planner::plan_spec(&spec).unwrap();
        let faults = FaultSpec {
            stragglers: vec![StragglerFault {
                device: 99,
                scale: 2.0,
                from: 0.0,
            }],
            ..FaultSpec::none()
        };
        let err =
            simulate_plan(&spec, &plan, &faults, &Tracer::off(), None, no_replan).unwrap_err();
        assert!(matches!(err, PlanError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn node_drop_replans_and_diff_round_trips() {
        let spec = sd_spec(ClusterSpec::p4de(2));
        let plan = Planner::plan_spec(&spec).unwrap();
        let faults = FaultSpec {
            node_drops: vec![NodeDropFault {
                machine: 1,
                at: 0.01,
            }],
            ..FaultSpec::none()
        };
        let out = simulate_plan(
            &spec,
            &plan,
            &faults,
            &Tracer::off(),
            None,
            Planner::plan_spec,
        )
        .unwrap();
        let r = &out.report;
        assert!(r.degraded_iteration.is_none(), "drop leaves run incomplete");
        assert!(!r.dropped_devices.is_empty());
        assert!(r.dropped_devices.iter().all(|&d| d >= 8));
        let replan = out.replan.as_ref().expect("drop must trigger a re-plan");
        assert_eq!(replan.dropped_machines, vec![1]);
        assert_eq!(replan.surviving_world, 8);
        assert_eq!(replan.diff.devices_retired, (8..16).collect::<Vec<_>>());
        assert!(replan.recovered_throughput > 0.0);
        assert!(replan.recovery_ratio < 1.0 + 1e-9);
        // The diff is constructive: old + edits == new, exactly.
        let applied = replan.diff.apply(&stage_layouts(&plan));
        assert_eq!(applied, stage_layouts(&replan.plan));
        // And the timeline renderer marks the halted region.
        let text = render_sim_timeline(&out);
        assert!(text.contains('x'), "{text}");
    }

    #[test]
    fn migration_diff_edit_script_round_trips() {
        let stage = |offsets: Vec<usize>, layers: (usize, usize)| StageLayout {
            direction: "down".to_owned(),
            component: 0,
            layer_start: layers.0,
            layer_end: layers.1,
            replication: offsets.len(),
            device_offsets: offsets,
        };
        let old = vec![
            stage(vec![0, 1], (0, 4)),
            stage(vec![2, 3], (4, 8)),
            stage(vec![4, 5], (8, 12)),
        ];
        let new = vec![stage(vec![0], (0, 6)), stage(vec![1], (6, 12))];
        let diff = MigrationDiff::between(&old, &new, vec![4, 5]);
        assert_eq!(diff.apply(&old), new);
        assert_eq!(diff.stages_moved, 2);
        assert_eq!(diff.layers_reassigned, 12);
        // Identity diff is empty.
        let id = MigrationDiff::between(&old, &old, Vec::new());
        assert!(id.edits.is_empty());
        assert_eq!(id.stages_moved, 0);
        assert_eq!(id.layers_reassigned, 0);
        assert_eq!(id.apply(&old), old);
    }
}
