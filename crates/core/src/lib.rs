//! DiffusionPipe front-end: the planning workflow of Fig. 7.
//!
//! [`Planner`] wires the whole system together:
//!
//! 1. **Profile** the model on the cluster ([`dpipe_profile::Profiler`],
//!    step 1);
//! 2. **Enumerate** pipeline hyper-parameters (S, M, D) (Table 3);
//! 3. **Partition** the backbone(s) with the §4 dynamic program
//!    ([`dpipe_partition::Partitioner`], step 2) — single-backbone,
//!    bidirectional for cascaded models, self-conditioning-aware;
//! 4. **Schedule** FIFO-1F1B / bidirectional pipelines
//!    ([`dpipe_schedule::ScheduleBuilder`], step 3) and extract bubbles;
//! 5. **Fill** bubbles with the frozen part ([`dpipe_fill::Filler`], §5,
//!    step 4) under cross-iteration pipelining (§3.2);
//! 6. **Select** the configuration with the best simulated throughput
//!    (step 5) subject to device memory.
//!
//! # Example
//!
//! ```
//! use diffusionpipe_core::Planner;
//! use dpipe_cluster::ClusterSpec;
//! use dpipe_model::zoo;
//!
//! let plan = Planner::new(zoo::stable_diffusion_v2_1(), ClusterSpec::single_node(8))
//!     .plan(256)
//!     .unwrap();
//! assert!(plan.throughput > 0.0);
//! assert!(plan.bubble_ratio < 0.25);
//! ```

mod error;
mod instructions;
mod json;
mod plan;
mod planner;
mod simulate;

pub use error::PlanError;
pub use instructions::generate_instructions;
pub use json::plan_json;
pub use plan::{BackbonePartition, Plan, PreprocessingReport};
pub use planner::{PlanStats, Planner, PlannerOptions};
pub use simulate::{
    degraded_spec, render_sim_timeline, simulate_plan, simulation_json, stage_layouts,
    MigrationDiff, Replan, SimReport, SimulationOutcome, SlotTimeline, StageEdit, StageLayout,
    TimelineSpan,
};
// Fault-spec types, re-exported so simulate callers stay on one dependency.
pub use dpipe_sim::{FaultSpec, LinkFault, NodeDropFault, StragglerFault};
// The declarative spec layer, re-exported so planner callers can stay on
// one dependency: `Planner::from_spec(&PlanSpec::from_json(text)?)`.
pub use dpipe_spec::{ModelRef, PlanSpec, SpecError, SweepSpec};
// Tracing handle types, re-exported so callers can attach a tracer
// (`Planner::with_tracer`) without depending on `dpipe_trace` directly.
pub use dpipe_trace::{SpanId, Trace, Tracer};
