//! Planner behaviour across the full model zoo and cluster matrix.

use diffusionpipe_core::{BackbonePartition, Planner};
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

/// Every zoo model plans successfully at every cluster scale, with memory
/// within budget and a finite positive throughput.
#[test]
fn every_model_plans_at_every_scale() {
    let models = [
        zoo::stable_diffusion_v2_1(),
        zoo::controlnet_v1_0(),
        zoo::cdm_lsun(),
        zoo::cdm_imagenet(),
        zoo::dit_xl_2(),
        zoo::sdxl_base(),
        zoo::imagen_base(),
    ];
    for machines in [1usize, 2] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        for model in &models {
            let batch = 16 * world as u32;
            let plan = Planner::new(model.clone(), cluster.clone())
                .plan(batch)
                .unwrap_or_else(|e| panic!("{} at {world} GPUs: {e}", model.name));
            assert!(plan.throughput.is_finite() && plan.throughput > 0.0);
            assert!(plan.peak_memory_bytes <= cluster.device_memory_bytes);
            assert!(plan.iteration_time > 0.0);
            match (&plan.partition, model.backbones().count()) {
                (BackbonePartition::Single(_), 1) => {}
                (BackbonePartition::Bidirectional(_), 2) => {}
                (p, n) => panic!("{}: {n} backbones but partition {p:?}", model.name),
            }
        }
    }
}

/// Throughput grows with the global batch (larger local batches amortise
/// overheads) and with the cluster size.
#[test]
fn throughput_monotonic_in_batch_and_scale() {
    let model = zoo::stable_diffusion_v2_1();
    let cluster = ClusterSpec::single_node(8);
    let t64 = Planner::new(model.clone(), cluster.clone())
        .plan(64)
        .unwrap()
        .throughput;
    let t256 = Planner::new(model.clone(), cluster.clone())
        .plan(256)
        .unwrap()
        .throughput;
    assert!(t256 > t64, "{t256} !> {t64}");

    let big = ClusterSpec::p4de(2);
    let t_big = Planner::new(model, big).plan(512).unwrap().throughput;
    let t_small = Planner::new(zoo::stable_diffusion_v2_1(), cluster)
        .plan(256)
        .unwrap()
        .throughput;
    assert!(t_big > t_small, "{t_big} !> {t_small}");
}

/// The planner is deterministic: same inputs, identical plan.
#[test]
fn planning_is_deterministic() {
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let a = Planner::new(model.clone(), cluster.clone())
        .plan(256)
        .unwrap();
    let b = Planner::new(model, cluster).plan(256).unwrap();
    assert_eq!(a.hyper, b.hyper);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.fill.bubbles.len(), b.fill.bubbles.len());
}

/// Imagen's giant frozen encoder gets almost entirely absorbed into
/// bubbles at multi-node scale.
#[test]
fn imagen_frozen_part_is_absorbed_at_scale() {
    let model = zoo::imagen_base();
    let cluster = ClusterSpec::p4de(4);
    let plan = Planner::new(model, cluster).plan(2048).unwrap();
    assert!(plan.hyper.num_stages >= 2, "{}", plan.summary());
    let absorbed =
        plan.fill.filled_time() / (plan.fill.filled_time() + plan.fill.leftover_time).max(1e-12);
    assert!(absorbed > 0.9, "only {:.0}% absorbed", absorbed * 100.0);
}
