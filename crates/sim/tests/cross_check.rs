//! Cross-validation: the instruction-level discrete-event simulator must
//! realise the same timing as the analytic list-scheduled pipeline, and
//! random matched send/recv programs never deadlock.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::zoo;
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_profile::{DeviceModel, Profiler};
use dpipe_schedule::{ScheduleBuilder, ScheduleKind, StageTimes};
use dpipe_sim::{Instruction, InstructionSim};
use proptest::prelude::*;

/// Builds per-device instruction streams realising a GPipe schedule (all
/// forwards then all backwards) from stage times.
fn gpipe_streams(times: &StageTimes) -> Vec<Vec<Instruction>> {
    let s_count = times.num_stages();
    let m_count = times.num_micro_batches;
    let tag = |m: usize, bwd: bool| (m * 2 + bwd as usize) as u64;
    (0..s_count)
        .map(|s| {
            let mut prog = Vec::new();
            for m in 0..m_count {
                if s > 0 {
                    prog.push(Instruction::Recv {
                        peer: s - 1,
                        tag: tag(m, false),
                    });
                }
                prog.push(Instruction::Compute {
                    label: format!("f{m}"),
                    seconds: times.fwd[s],
                });
                if s + 1 < s_count {
                    prog.push(Instruction::Send {
                        peer: s + 1,
                        tag: tag(m, false),
                        seconds: times.comm_in[s + 1],
                    });
                }
            }
            for m in 0..m_count {
                if s + 1 < s_count {
                    prog.push(Instruction::Recv {
                        peer: s + 1,
                        tag: tag(m, true),
                    });
                }
                prog.push(Instruction::Compute {
                    label: format!("b{m}"),
                    seconds: times.bwd[s],
                });
                if s > 0 {
                    prog.push(Instruction::Send {
                        peer: s - 1,
                        tag: tag(m, true),
                        seconds: times.comm_in[s],
                    });
                }
            }
            prog
        })
        .collect()
}

#[test]
fn instruction_sim_matches_analytic_gpipe() {
    let mut model = zoo::stable_diffusion_v2_1();
    model.self_conditioning = None;
    let cluster = ClusterSpec::single_node(4);
    let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
    let layout = DataParallelLayout::new(&cluster, 4).unwrap();
    let bb = db.model().backbones().next().unwrap().0;
    let plan = Partitioner::new(&db, &cluster, &layout)
        .partition_single(bb, &PartitionConfig::new(4, 4, 64.0))
        .unwrap();
    let times = StageTimes::from_plan(&db, &cluster, &layout, &plan);
    let sched = ScheduleBuilder::new(&db, &cluster, &layout)
        .build_single(&plan, ScheduleKind::GPipe)
        .unwrap();
    let (_, makespan) = InstructionSim::run(&gpipe_streams(&times)).unwrap();
    let analytic = sched.compute_end();
    let rel = (makespan - analytic).abs() / analytic;
    assert!(
        rel < 0.02,
        "instruction sim {makespan} vs analytic {analytic} ({:.1}% apart)",
        rel * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random linear-pipeline instruction streams (matched sends/recvs)
    /// always complete without deadlock, and the makespan is at least the
    /// critical-path lower bound.
    #[test]
    fn random_pipelines_never_deadlock(
        stages in 1usize..5,
        micros in 1usize..5,
        fwd_ms in 1.0f64..20.0,
    ) {
        let times = StageTimes {
            fwd: vec![fwd_ms * 1e-3; stages],
            bwd: vec![2.0 * fwd_ms * 1e-3; stages],
            comm_in: vec![0.0; stages],
            feedback: 0.0,
            sync: vec![0.0; stages],
            replication: vec![1; stages],
            micro_batch: 8.0,
            num_micro_batches: micros,
            sc_scale: 0.0,
        };
        let (_, makespan) = InstructionSim::run(&gpipe_streams(&times)).unwrap();
        // Lower bound: every micro-batch passes through every stage.
        let lower = (micros as f64) * 3.0 * fwd_ms * 1e-3;
        prop_assert!(makespan >= lower - 1e-12);
        // Upper bound: fully serialised execution.
        let upper = (stages * micros) as f64 * 3.0 * fwd_ms * 1e-3 + 1e-12;
        prop_assert!(makespan <= upper);
    }
}

/// Every committed golden plan spec replays, fault-free, to exactly the
/// analytic iteration time (1e-6 absolute): the DES instruction lowering is
/// an exact realisation of the cost model, not an approximation.
#[test]
fn zero_fault_replay_matches_cost_model_for_golden_specs() {
    use diffusionpipe_core::{simulate_plan, FaultSpec, Planner, Tracer};
    use dpipe_spec::PlanSpec;

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json") && !n.starts_with("sweep") && !n.starts_with("faults"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "expected golden specs, found {names:?}");
    for name in names {
        let text = std::fs::read_to_string(format!("{dir}/{name}")).unwrap();
        let spec = PlanSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let plan = Planner::plan_spec(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = simulate_plan(
            &spec,
            &plan,
            &FaultSpec::none(),
            &Tracer::off(),
            None,
            |_| unreachable!("fault-free simulation never re-plans"),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let replayed = out.report.simulated_iteration;
        assert!(
            (replayed - plan.iteration_time).abs() < 1e-6,
            "{name}: replay {replayed} vs analytic {}",
            plan.iteration_time
        );
    }
}

/// The cascaded (bidirectional-pipeline) path replays exactly too — its
/// slot mapping and up-direction dependency edges are different code.
#[test]
fn zero_fault_replay_matches_cost_model_for_cascaded_model() {
    use diffusionpipe_core::{simulate_plan, FaultSpec, Planner, Tracer};
    use dpipe_spec::PlanSpec;

    let spec = PlanSpec::zoo("cdm-lsun", ClusterSpec::p4de(2), 128);
    let plan = Planner::plan_spec(&spec).unwrap();
    let out = simulate_plan(
        &spec,
        &plan,
        &FaultSpec::none(),
        &Tracer::off(),
        None,
        |_| unreachable!("fault-free simulation never re-plans"),
    )
    .unwrap();
    let replayed = out.report.simulated_iteration;
    assert!(
        (replayed - plan.iteration_time).abs() < 1e-6,
        "cdm-lsun: replay {replayed} vs analytic {}",
        plan.iteration_time
    );
}
