//! Discrete-event simulation of full DiffusionPipe iterations.
//!
//! Two layers of simulation:
//!
//! * [`CombinedIteration`] merges a backbone [`dpipe_schedule::PipelineSchedule`]
//!   with a [`dpipe_fill::FillPlan`] into the complete cross-iteration
//!   timeline of §3.2 — frozen work inside bubbles, the leftover frozen tail
//!   after the pipeline, and gradient synchronisation overlapped with both —
//!   yielding iteration time, throughput, and the residual bubble ratio
//!   reported in the paper's Fig. 14.
//! * [`InstructionSim`] is an instruction-level discrete-event simulator:
//!   per-device instruction streams with rendezvous send/recv and
//!   all-reduce, used to validate that generated back-end instruction
//!   streams realise the analytic schedule (and to catch deadlocks).
//!
//! The [`fault`] module turns the instruction layer into a failure-mode
//! laboratory: a seeded, JSON-round-trippable [`FaultSpec`] (stragglers,
//! degraded/flaky links, node drops) compiles to a [`FaultPlan`] that
//! [`InstructionSim::run_faulted`] consults per instruction, producing a
//! reproducible degraded timeline ([`FaultedRun`]).
//!
//! # Example
//!
//! ```
//! use dpipe_sim::CombinedIteration;
//! use dpipe_fill::{FillConfig, Filler};
//! use dpipe_cluster::{ClusterSpec, DataParallelLayout};
//! use dpipe_model::zoo;
//! use dpipe_partition::{PartitionConfig, Partitioner};
//! use dpipe_profile::{DeviceModel, Profiler};
//! use dpipe_schedule::{ScheduleBuilder, ScheduleKind};
//!
//! let model = zoo::stable_diffusion_v2_1();
//! let cluster = ClusterSpec::single_node(8);
//! let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
//! let layout = DataParallelLayout::new(&cluster, 8).unwrap();
//! let bb = model.backbones().next().unwrap().0;
//! let plan = Partitioner::new(&db, &cluster, &layout)
//!     .partition_single(bb, &PartitionConfig::new(4, 4, 64.0))
//!     .unwrap();
//! let sched = ScheduleBuilder::new(&db, &cluster, &layout)
//!     .build_single(&plan, ScheduleKind::Fifo1F1B)
//!     .unwrap();
//! let bubbles = sched.bubbles(0.010);
//! let fill = Filler::new(&db, FillConfig::default())
//!     .fill(&bubbles, sched.group_batch, 8)
//!     .unwrap();
//! let combined = CombinedIteration::new(&sched, &bubbles, &fill);
//! assert!(combined.bubble_ratio() < sched.bubble_ratio());
//! ```

mod combine;
mod des;
pub mod fault;
mod instr;

pub use combine::CombinedIteration;
pub use des::{Event, EventQueue, SimError};
pub use fault::{FaultPlan, FaultSpec, LinkFault, NodeDropFault, StragglerFault};
pub use instr::{FaultedRun, InstrError, Instruction, InstructionSim, InstructionTrace};
