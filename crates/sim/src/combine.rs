//! Merging a backbone schedule with a bubble-filling plan into a complete
//! cross-iteration timeline.

use dpipe_fill::FillPlan;
use dpipe_schedule::{extract_bubbles, Bubble, PipelineSchedule};
use serde::{Deserialize, Serialize};

/// One complete training iteration under cross-iteration pipelining
/// (paper §3.2 / Fig. 9): the backbone pipeline of iteration `t` with its
/// bubbles hosting the frozen computation of iteration `t+1`, the leftover
/// frozen tail, and gradient syncs overlapped with both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedIteration {
    /// Per-slot busy intervals of the merged timeline.
    busy: Vec<Vec<(f64, f64)>>,
    /// Devices per slot.
    slot_replication: Vec<usize>,
    /// End of backbone compute.
    compute_end: f64,
    /// End of gradient synchronisation.
    sync_end: f64,
    /// Leftover frozen tail duration (runs on all slots after compute).
    leftover: f64,
    /// Group batch per iteration (trainable samples).
    group_batch: f64,
}

impl CombinedIteration {
    /// Merges a simulated pipeline schedule with its bubble-filling plan.
    ///
    /// `bubbles` must be the same list that was handed to
    /// [`dpipe_fill::Filler::fill`] — each [`FillPlan`] entry's
    /// `bubble_index` refers into it.
    ///
    /// # Panics
    ///
    /// Panics if a fill entry's `bubble_index` is out of range.
    pub fn new(schedule: &PipelineSchedule, bubbles: &[Bubble], fill: &FillPlan) -> Self {
        let mut busy = schedule.busy_intervals();
        // Fill items occupy the front of their bubble on every idle slot.
        for bf in &fill.bubbles {
            let b = &bubbles[bf.bubble_index];
            let used = bf.used_time();
            if used > 0.0 {
                for &slot in &b.slots {
                    busy[slot].push((b.start, b.start + used));
                }
            }
        }
        // Leftover frozen tail: all slots busy after compute ends.
        let compute_end = schedule.compute_end();
        let leftover = fill.leftover_time;
        if leftover > 0.0 {
            for slot_busy in &mut busy {
                slot_busy.push((compute_end, compute_end + leftover));
            }
        }
        for slot_busy in &mut busy {
            slot_busy.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
        CombinedIteration {
            busy,
            slot_replication: schedule.slot_replication.clone(),
            compute_end,
            sync_end: schedule.sync_end(),
            leftover,
            group_batch: schedule.group_batch,
        }
    }

    /// A no-filling variant: the whole frozen part runs as a tail.
    pub fn without_filling(schedule: &PipelineSchedule, frozen_tail: f64) -> Self {
        let mut busy = schedule.busy_intervals();
        let compute_end = schedule.compute_end();
        if frozen_tail > 0.0 {
            for slot_busy in &mut busy {
                slot_busy.push((compute_end, compute_end + frozen_tail));
            }
        }
        CombinedIteration {
            busy,
            slot_replication: schedule.slot_replication.clone(),
            compute_end,
            sync_end: schedule.sync_end(),
            leftover: frozen_tail,
            group_batch: schedule.group_batch,
        }
    }

    /// Iteration time: compute + frozen tail, and synchronisation, must all
    /// complete.
    pub fn iteration_time(&self) -> f64 {
        (self.compute_end + self.leftover).max(self.sync_end)
    }

    /// Throughput of one pipeline group, samples/second.
    pub fn group_throughput(&self) -> f64 {
        self.group_batch / self.iteration_time()
    }

    /// Cluster throughput with `dp_groups` identical groups.
    pub fn cluster_throughput(&self, dp_groups: usize) -> f64 {
        self.group_throughput() * dp_groups as f64
    }

    /// Residual bubbles of the merged timeline.
    pub fn bubbles(&self, min_duration: f64) -> Vec<Bubble> {
        extract_bubbles(
            &self.busy,
            &self.slot_replication,
            self.iteration_time(),
            min_duration,
        )
    }

    /// Residual bubble ratio (paper §6 metric) after filling.
    pub fn bubble_ratio(&self) -> f64 {
        let iter = self.iteration_time();
        if iter <= 0.0 {
            return 0.0;
        }
        let idle: f64 = self
            .bubbles(0.0)
            .iter()
            .map(|b| b.duration() * b.devices as f64)
            .sum();
        let total: usize = self.slot_replication.iter().sum();
        idle / (iter * total as f64)
    }

    /// End of backbone compute (before the frozen tail).
    pub fn compute_end(&self) -> f64 {
        self.compute_end
    }

    /// Duration of the frozen tail.
    pub fn leftover(&self) -> f64 {
        self.leftover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_cluster::{ClusterSpec, DataParallelLayout};
    use dpipe_fill::{FillConfig, Filler};
    use dpipe_model::zoo;
    use dpipe_partition::{PartitionConfig, Partitioner};
    use dpipe_profile::{DeviceModel, Profiler};
    use dpipe_schedule::{ScheduleBuilder, ScheduleKind};

    fn pipeline(
        stages: usize,
        micro: usize,
    ) -> (dpipe_profile::ProfileDb, ClusterSpec, PipelineSchedule) {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let bb = db.model().backbones().next().unwrap().0;
        let plan = Partitioner::new(&db, &cluster, &layout)
            .partition_single(bb, &PartitionConfig::new(stages, micro, 64.0))
            .unwrap();
        let sched = ScheduleBuilder::new(&db, &cluster, &layout)
            .build_single(&plan, ScheduleKind::Fifo1F1B)
            .unwrap();
        (db, cluster, sched)
    }

    #[test]
    fn filling_beats_no_filling() {
        let (db, _, sched) = pipeline(4, 4);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles = sched.bubbles(0.010);
        let fill = filler.fill(&bubbles, sched.group_batch, 8).unwrap();
        let filled = CombinedIteration::new(&sched, &bubbles, &fill);
        let unfilled = CombinedIteration::without_filling(&sched, fill.baseline_frozen_time);
        assert!(filled.iteration_time() < unfilled.iteration_time());
        assert!(filled.group_throughput() > unfilled.group_throughput());
    }

    #[test]
    fn bubble_ratio_drops_after_filling() {
        let (db, _, sched) = pipeline(4, 4);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles = sched.bubbles(0.010);
        let fill = filler.fill(&bubbles, sched.group_batch, 8).unwrap();
        let combined = CombinedIteration::new(&sched, &bubbles, &fill);
        assert!(
            combined.bubble_ratio() < sched.bubble_ratio(),
            "after {} !< before {}",
            combined.bubble_ratio(),
            sched.bubble_ratio()
        );
    }

    #[test]
    fn cluster_throughput_scales_with_groups() {
        let (db, _, sched) = pipeline(2, 4);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles = sched.bubbles(0.010);
        let fill = filler.fill(&bubbles, sched.group_batch, 8).unwrap();
        let combined = CombinedIteration::new(&sched, &bubbles, &fill);
        assert!((combined.cluster_throughput(4) - 4.0 * combined.group_throughput()).abs() < 1e-9);
    }

    #[test]
    fn iteration_time_includes_tail_and_sync() {
        let (db, _, sched) = pipeline(2, 2);
        let filler = Filler::new(&db, FillConfig::default());
        let fill = filler.fill(&[], sched.group_batch, 8).unwrap(); // nothing filled
        let combined = CombinedIteration::new(&sched, &[], &fill);
        assert!(combined.iteration_time() >= combined.compute_end() + combined.leftover() - 1e-9);
        assert!(combined.iteration_time() >= sched.sync_end() - 1e-9);
    }
}
