//! Instruction-level discrete-event simulation of per-device streams.
//!
//! The back-end of DiffusionPipe (Fig. 7) executes a static list of pipeline
//! instructions on each device. This simulator runs such streams with
//! rendezvous semantics for send/recv and barrier semantics for all-reduce,
//! validating deadlock-freedom and producing per-device timelines that can
//! be checked against the analytic schedule.

use crate::des::{EventQueue, SimError};
use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One back-end pipeline instruction (paper Fig. 7, right side).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Local computation for `seconds` (stage forward/backward, frozen
    /// layer execution, or micro-batch load).
    Compute {
        /// A free-form label for traces (e.g. `"fwd s1 mb2"`).
        label: String,
        /// Duration in seconds.
        seconds: f64,
    },
    /// Send `seconds`-worth of data to `peer` under `tag`. Sends are
    /// *eager* (buffered): the sender enqueues the transfer and proceeds
    /// immediately; the data becomes available to the receiver `seconds`
    /// later. This matches NCCL-style buffered p2p and the analytic
    /// schedule's communication-as-delay-edge model.
    Send {
        /// Receiving device index.
        peer: usize,
        /// Match tag (must be unique per (src, dst) pair at any time).
        tag: u64,
        /// Transfer duration in seconds.
        seconds: f64,
    },
    /// Receive from `peer` under `tag`: blocks until the matching eager
    /// `Send`'s data has arrived.
    Recv {
        /// Sending device index.
        peer: usize,
        /// Match tag.
        tag: u64,
    },
    /// All-reduce with every device in `group`; completes `seconds` after
    /// the last participant arrives.
    AllReduce {
        /// Participating device indices (must include this device).
        group: Vec<usize>,
        /// Collective id (participants post the same id).
        id: u64,
        /// Collective duration after the barrier.
        seconds: f64,
    },
}

/// Per-instruction execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionTrace {
    /// Device index.
    pub device: usize,
    /// Position within the device's stream.
    pub index: usize,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrError {
    /// No device could make progress (mismatched send/recv or collective).
    Deadlock {
        /// Devices stuck with unfinished streams.
        stuck_devices: Vec<usize>,
    },
    /// An instruction referenced an out-of-range device.
    BadPeer {
        /// Offending device.
        device: usize,
        /// Referenced peer.
        peer: usize,
    },
    /// An instruction produced a poisoned event time (NaN duration or
    /// similar) that the event queue rejected.
    Sim(SimError),
}

impl From<SimError> for InstrError {
    fn from(e: SimError) -> Self {
        InstrError::Sim(e)
    }
}

impl fmt::Display for InstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrError::Deadlock { stuck_devices } => {
                write!(
                    f,
                    "instruction streams deadlocked on devices {stuck_devices:?}"
                )
            }
            InstrError::BadPeer { device, peer } => {
                write!(f, "device {device} references invalid peer {peer}")
            }
            InstrError::Sim(e) => write!(f, "event scheduling failed: {e}"),
        }
    }
}

impl Error for InstrError {}

/// Outcome of a fault-injected run.
///
/// Unlike the fault-free [`InstructionSim::run`], an incomplete stream is
/// not automatically an error: devices on dropped machines stop on purpose,
/// and peers blocked on them are *stranded* — both are part of the degraded
/// timeline the caller wants to inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Per-instruction execution records, sorted by (device, index).
    pub traces: Vec<InstructionTrace>,
    /// Latest completion time across all devices.
    pub makespan: f64,
    /// Devices halted by a node-drop fault.
    pub dropped_devices: Vec<usize>,
    /// Devices blocked forever on a dropped peer (no drop of their own).
    pub stranded_devices: Vec<usize>,
    /// Instructions that executed.
    pub completed_instructions: usize,
    /// Instructions across all streams.
    pub total_instructions: usize,
}

/// Simulates per-device instruction streams to completion.
#[derive(Debug, Default)]
pub struct InstructionSim;

impl InstructionSim {
    /// Runs the streams; returns the trace of every instruction plus the
    /// makespan.
    ///
    /// # Errors
    ///
    /// Returns [`InstrError::Deadlock`] when no device can progress,
    /// [`InstrError::BadPeer`] for out-of-range device references, and
    /// [`InstrError::Sim`] if an instruction produced a poisoned time.
    pub fn run(streams: &[Vec<Instruction>]) -> Result<(Vec<InstructionTrace>, f64), InstrError> {
        let run = Self::run_faulted(streams, &FaultPlan::none())?;
        // With no faults a stalled device is a genuine deadlock.
        if !run.stranded_devices.is_empty() || !run.dropped_devices.is_empty() {
            let mut stuck = run.dropped_devices;
            stuck.extend(run.stranded_devices);
            stuck.sort_unstable();
            return Err(InstrError::Deadlock {
                stuck_devices: stuck,
            });
        }
        Ok((run.traces, run.makespan))
    }

    /// Runs the streams under `plan`, injecting stragglers, degraded links
    /// and node drops. Stream `s` of `streams` is queried against stream
    /// `s` of the plan (compile the plan with the same stream order).
    ///
    /// Fault semantics:
    ///
    /// * **Straggler** — a `Compute` *starting* at time `t` runs for
    ///   `seconds * plan.compute_scale(s, t)`.
    /// * **Degraded link** — a `Send` starting at `t` delivers after
    ///   `plan.transfer_seconds(..)`, which folds in scale and
    ///   deterministic retransmits.
    /// * **Node drop** — a device whose drop time has passed starts no
    ///   further instruction; whatever is in flight (a transfer already
    ///   sent, a compute already begun) completes. Peers blocked on a
    ///   dropped device forever are reported stranded.
    ///
    /// # Errors
    ///
    /// [`InstrError::BadPeer`] for out-of-range device references and
    /// [`InstrError::Sim`] for poisoned times; incomplete streams under
    /// drops are a *result*, not an error.
    pub fn run_faulted(
        streams: &[Vec<Instruction>],
        plan: &FaultPlan,
    ) -> Result<FaultedRun, InstrError> {
        let n = streams.len();
        // Validate peers up front.
        for (d, stream) in streams.iter().enumerate() {
            for ins in stream {
                let peer = match ins {
                    Instruction::Send { peer, .. } | Instruction::Recv { peer, .. } => Some(*peer),
                    Instruction::AllReduce { group, .. } => {
                        group.iter().find(|&&g| g >= n).copied()
                    }
                    Instruction::Compute { .. } => None,
                };
                if let Some(p) = peer {
                    if p >= n {
                        return Err(InstrError::BadPeer { device: d, peer: p });
                    }
                }
            }
        }

        let mut queue: EventQueue<usize> = EventQueue::new(); // device wake-ups
        let mut pc = vec![0usize; n]; // program counter per device
        let mut dev_time = vec![0.0f64; n];
        let mut traces = Vec::new();
        // Rendezvous bookkeeping: (src, dst, tag) -> ready time of the early
        // side.
        let mut pending_send: HashMap<(usize, usize, u64), f64> = HashMap::new();
        let mut pending_recv: HashMap<(usize, usize, u64), f64> = HashMap::new();
        // Collective: id -> (arrived devices, latest arrival)
        let mut collectives: HashMap<u64, (Vec<usize>, f64)> = HashMap::new();

        // Devices that hit their drop gate (started nothing past it).
        let mut dropped = vec![false; n];

        for d in 0..n {
            queue.schedule(0.0, d)?;
        }
        // Blocked devices wait for a matching event; when the match arrives
        // we reschedule them.
        while let Some(ev) = queue.pop() {
            let d = ev.payload;
            if pc[d] >= streams[d].len() || dropped[d] {
                continue;
            }
            let now = dev_time[d].max(ev.time);
            // Node drop: nothing *starts* at or after the drop time; the
            // instruction in flight when the machine died has already been
            // traced and completes.
            if plan.drop_at(d).is_some_and(|t| now >= t - 1e-12) {
                dropped[d] = true;
                continue;
            }
            match &streams[d][pc[d]] {
                Instruction::Compute { seconds, .. } => {
                    let end = now + seconds * plan.compute_scale(d, now);
                    traces.push(InstructionTrace {
                        device: d,
                        index: pc[d],
                        start: now,
                        end,
                    });
                    dev_time[d] = end;
                    pc[d] += 1;
                    queue.schedule(end, d)?;
                }
                Instruction::Send { peer, tag, seconds } => {
                    // Eager send: enqueue the transfer; data arrives after
                    // the (possibly degraded) transfer time. The sender
                    // proceeds immediately.
                    let key = (d, *peer, *tag);
                    let arrival = now + plan.transfer_seconds(d, *peer, now, *seconds, *tag);
                    traces.push(InstructionTrace {
                        device: d,
                        index: pc[d],
                        start: now,
                        end: now,
                    });
                    dev_time[d] = now;
                    pc[d] += 1;
                    queue.schedule(now, d)?;
                    if let Some(recv_posted) = pending_recv.remove(&key) {
                        // The receiver is blocked at its recv; complete it.
                        let end = recv_posted.max(arrival);
                        traces.push(InstructionTrace {
                            device: *peer,
                            index: pc[*peer],
                            start: recv_posted,
                            end,
                        });
                        dev_time[*peer] = dev_time[*peer].max(end);
                        pc[*peer] += 1;
                        queue.schedule(end, *peer)?;
                    } else {
                        pending_send.insert(key, arrival);
                    }
                }
                Instruction::Recv { peer, tag } => {
                    let key = (*peer, d, *tag);
                    if let Some(arrival) = pending_send.remove(&key) {
                        let end = now.max(arrival);
                        traces.push(InstructionTrace {
                            device: d,
                            index: pc[d],
                            start: now,
                            end,
                        });
                        dev_time[d] = end;
                        pc[d] += 1;
                        queue.schedule(end, d)?;
                    } else {
                        pending_recv.insert(key, now);
                        // Blocked: the matching send will wake us.
                    }
                }
                Instruction::AllReduce { group, id, seconds } => {
                    let entry = collectives.entry(*id).or_insert_with(|| (Vec::new(), 0.0));
                    if !entry.0.contains(&d) {
                        entry.0.push(d);
                        entry.1 = entry.1.max(now);
                    }
                    if entry.0.len() == group.len() {
                        let end = entry.1 + seconds;
                        let members = entry.0.clone();
                        collectives.remove(id);
                        for &m in &members {
                            traces.push(InstructionTrace {
                                device: m,
                                index: pc[m],
                                start: now.min(end),
                                end,
                            });
                            dev_time[m] = dev_time[m].max(end);
                            pc[m] += 1;
                            queue.schedule(end, m)?;
                        }
                    }
                    // else: blocked until the last member arrives.
                }
            }
        }

        // Classify unfinished streams: a device halts *dropped* when it hit
        // its own drop gate (or sits blocked with a drop of its own
        // pending); otherwise it is stranded on a dead peer.
        let mut dropped_devices = Vec::new();
        let mut stranded_devices = Vec::new();
        for d in 0..n {
            if pc[d] >= streams[d].len() {
                continue;
            }
            if dropped[d] || plan.drop_at(d).is_some() {
                dropped_devices.push(d);
            } else {
                stranded_devices.push(d);
            }
        }
        let makespan = dev_time.iter().copied().fold(0.0, f64::max);
        traces.sort_by_key(|t| (t.device, t.index));
        Ok(FaultedRun {
            traces,
            makespan,
            dropped_devices,
            stranded_devices,
            completed_instructions: pc.iter().sum(),
            total_instructions: streams.iter().map(Vec::len).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(s: f64) -> Instruction {
        Instruction::Compute {
            label: "c".into(),
            seconds: s,
        }
    }

    #[test]
    fn sequential_compute() {
        let streams = vec![vec![compute(1.0), compute(2.0)]];
        let (traces, makespan) = InstructionSim::run(&streams).unwrap();
        assert_eq!(makespan, 3.0);
        assert_eq!(traces[1].start, 1.0);
    }

    #[test]
    fn send_recv_rendezvous() {
        let streams = vec![
            vec![
                compute(1.0),
                Instruction::Send {
                    peer: 1,
                    tag: 7,
                    seconds: 0.5,
                },
            ],
            vec![Instruction::Recv { peer: 0, tag: 7 }, compute(1.0)],
        ];
        let (traces, makespan) = InstructionSim::run(&streams).unwrap();
        // Transfer starts when both sides ready (t=1), takes 0.5; receiver
        // computes 1.0 after.
        assert!((makespan - 2.5).abs() < 1e-12, "{makespan}");
        let recv_end = traces
            .iter()
            .find(|t| t.device == 1 && t.index == 0)
            .unwrap()
            .end;
        assert!((recv_end - 1.5).abs() < 1e-12);
    }

    #[test]
    fn recv_posted_first_works() {
        let streams = vec![
            vec![Instruction::Recv { peer: 1, tag: 1 }],
            vec![
                compute(2.0),
                Instruction::Send {
                    peer: 0,
                    tag: 1,
                    seconds: 1.0,
                },
            ],
        ];
        let (_, makespan) = InstructionSim::run(&streams).unwrap();
        assert!((makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_barrier() {
        let group = vec![0, 1, 2];
        let ar = |id| Instruction::AllReduce {
            group: group.clone(),
            id,
            seconds: 0.5,
        };
        let streams = vec![
            vec![compute(1.0), ar(9)],
            vec![compute(3.0), ar(9)],
            vec![ar(9)],
        ];
        let (traces, makespan) = InstructionSim::run(&streams).unwrap();
        // Barrier at t=3 (slowest), +0.5 collective.
        assert!((makespan - 3.5).abs() < 1e-12);
        for t in traces
            .iter()
            .filter(|t| matches!(t.index, 1) || t.device == 2)
        {
            assert!((t.end - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_tags_deadlock() {
        let streams = vec![
            vec![Instruction::Send {
                peer: 1,
                tag: 1,
                seconds: 0.1,
            }],
            vec![Instruction::Recv { peer: 0, tag: 2 }],
        ];
        let err = InstructionSim::run(&streams).unwrap_err();
        assert!(matches!(err, InstrError::Deadlock { .. }));
    }

    #[test]
    fn bad_peer_detected() {
        let streams = vec![vec![Instruction::Send {
            peer: 5,
            tag: 0,
            seconds: 0.1,
        }]];
        assert_eq!(
            InstructionSim::run(&streams).unwrap_err(),
            InstrError::BadPeer { device: 0, peer: 5 }
        );
    }

    #[test]
    fn pipeline_staircase_timing() {
        // 2-stage pipeline, 2 micro-batches, fwd only: classic staircase.
        let f = 1.0;
        let mk_tag = |mb: usize| mb as u64;
        let streams = vec![
            vec![
                compute(f),
                Instruction::Send {
                    peer: 1,
                    tag: mk_tag(0),
                    seconds: 0.0,
                },
                compute(f),
                Instruction::Send {
                    peer: 1,
                    tag: mk_tag(1),
                    seconds: 0.0,
                },
            ],
            vec![
                Instruction::Recv {
                    peer: 0,
                    tag: mk_tag(0),
                },
                compute(f),
                Instruction::Recv {
                    peer: 0,
                    tag: mk_tag(1),
                },
                compute(f),
            ],
        ];
        let (_, makespan) = InstructionSim::run(&streams).unwrap();
        assert!((makespan - 3.0).abs() < 1e-12, "{makespan}");
    }

    #[test]
    fn nan_duration_is_a_typed_error_not_a_panic() {
        let streams = vec![vec![compute(f64::NAN)]];
        assert!(matches!(
            InstructionSim::run(&streams).unwrap_err(),
            InstrError::Sim(crate::des::SimError::NonFiniteTime { .. })
        ));
    }

    #[test]
    fn straggler_scales_compute_from_its_start_time() {
        use crate::fault::{FaultPlan, FaultSpec, StragglerFault};
        let streams = vec![vec![compute(1.0), compute(1.0)]];
        let spec = FaultSpec {
            stragglers: vec![StragglerFault {
                device: 0,
                scale: 2.0,
                from: 0.5,
            }],
            ..FaultSpec::none()
        };
        let plan = FaultPlan::compile(&spec, &[vec![0]], &[0], 0);
        let run = InstructionSim::run_faulted(&streams, &plan).unwrap();
        // First compute starts at 0 (< from): unscaled. Second starts at
        // 1.0 (>= from): doubled.
        assert!((run.makespan - 3.0).abs() < 1e-12, "{}", run.makespan);
        assert!(run.dropped_devices.is_empty() && run.stranded_devices.is_empty());
        assert_eq!(run.completed_instructions, run.total_instructions);
    }

    #[test]
    fn node_drop_halts_device_and_strands_blocked_peer() {
        use crate::fault::{FaultPlan, FaultSpec, NodeDropFault};
        // Device 0 computes then sends; device 1 waits for the message and
        // computes. Machine of device 0 drops before the send can start.
        let streams = vec![
            vec![
                compute(1.0),
                Instruction::Send {
                    peer: 1,
                    tag: 3,
                    seconds: 0.1,
                },
            ],
            vec![Instruction::Recv { peer: 0, tag: 3 }, compute(1.0)],
        ];
        let spec = FaultSpec {
            node_drops: vec![NodeDropFault {
                machine: 0,
                at: 0.5,
            }],
            ..FaultSpec::none()
        };
        let plan = FaultPlan::compile(&spec, &[vec![0], vec![1]], &[0, 1], 0);
        let run = InstructionSim::run_faulted(&streams, &plan).unwrap();
        // The in-flight compute finishes (makespan 1.0) but the send never
        // starts; device 1 is stranded at its recv.
        assert_eq!(run.dropped_devices, vec![0]);
        assert_eq!(run.stranded_devices, vec![1]);
        assert!((run.makespan - 1.0).abs() < 1e-12, "{}", run.makespan);
        assert_eq!(run.completed_instructions, 1);
        assert_eq!(run.total_instructions, 4);
    }

    #[test]
    fn degraded_link_slows_delivery_not_sender() {
        use crate::fault::{FaultPlan, FaultSpec, LinkFault};
        let streams = vec![
            vec![Instruction::Send {
                peer: 1,
                tag: 0,
                seconds: 0.5,
            }],
            vec![Instruction::Recv { peer: 0, tag: 0 }],
        ];
        let spec = FaultSpec {
            links: vec![LinkFault {
                src_machine: 0,
                dst_machine: 1,
                scale: 3.0,
                loss: 0.0,
                retransmit: 0.0,
                from: 0.0,
                until: None,
            }],
            ..FaultSpec::none()
        };
        let plan = FaultPlan::compile(&spec, &[vec![0], vec![1]], &[0, 1], 0);
        let run = InstructionSim::run_faulted(&streams, &plan).unwrap();
        assert!((run.makespan - 1.5).abs() < 1e-12, "{}", run.makespan);
    }
}
