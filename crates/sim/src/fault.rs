//! Deterministic fault injection for the instruction-level simulator.
//!
//! A [`FaultSpec`] is the user-facing, JSON-round-trippable description of
//! what goes wrong: straggler devices (compute scaled ×k from a virtual
//! time), degraded or flaky links (communication scaled, transient loss
//! with a retransmit delay), and node drops. It is *seeded* and entirely
//! wall-clock-free: every stochastic choice (how many times a lossy link
//! retransmits a given message) is a pure hash of `(seed, endpoints, tag)`,
//! so the same spec always produces the same degraded timeline, byte for
//! byte — reruns and CI smokes diff clean.
//!
//! [`FaultPlan`] is the compiled form: the spec's machine- and
//! device-rank-level faults are lowered onto the instruction streams of one
//! simulation (streams are pipeline *slots*, which under replication hold
//! several devices in lockstep), ready for `InstructionSim::run_faulted`
//! to query per instruction.

use dpipe_spec::decode::{as_array, as_f64, as_u64, as_usize, f64_field, Fields};
use dpipe_spec::json::{parse, JsonValue};
use dpipe_spec::{SpecError, SCHEMA_VERSION};
use dpipe_stablehash::StableHasher;

/// A device whose compute slows down (or speeds up) from a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerFault {
    /// Global device rank.
    pub device: usize,
    /// Multiplier on compute durations (1.5 = 50% slower). Must be > 0.
    pub scale: f64,
    /// Virtual time (seconds) from which the scale applies; compute
    /// instructions *starting* at or after this are affected.
    pub from: f64,
}

/// A degraded or flaky link between two machines.
///
/// The pair is unordered: traffic in either direction between the two
/// machines is affected. `src_machine == dst_machine` degrades that
/// machine's intra-node links.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// One endpoint machine index.
    pub src_machine: usize,
    /// Other endpoint machine index.
    pub dst_machine: usize,
    /// Multiplier on transfer durations. Must be > 0.
    pub scale: f64,
    /// Per-attempt loss probability in `[0, 1)`; each loss costs one
    /// `retransmit` delay. Sampled deterministically from the spec seed.
    pub loss: f64,
    /// Seconds added per retransmit.
    pub retransmit: f64,
    /// Virtual time from which the fault applies.
    pub from: f64,
    /// Virtual time at which the fault clears (`None` = never).
    pub until: Option<f64>,
}

/// A machine that drops out of the cluster at a point in virtual time.
///
/// Devices on a dropped machine finish the instruction they are executing
/// but start nothing at or after `at`; peers blocked on them are reported
/// as *stranded* rather than deadlocked.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDropFault {
    /// Machine index.
    pub machine: usize,
    /// Virtual drop time in seconds.
    pub at: f64,
}

/// A seeded, reproducible description of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Schema version (shared with the plan-spec schema).
    pub schema_version: u32,
    /// Seed for all stochastic choices (retransmit sampling).
    pub seed: u64,
    /// Straggling devices.
    pub stragglers: Vec<StragglerFault>,
    /// Degraded/flaky links.
    pub links: Vec<LinkFault>,
    /// Node drops.
    pub node_drops: Vec<NodeDropFault>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// The empty fault spec: simulation degenerates to the fault-free run.
    pub fn none() -> Self {
        FaultSpec {
            schema_version: SCHEMA_VERSION,
            seed: 0,
            stragglers: Vec::new(),
            links: Vec::new(),
            node_drops: Vec::new(),
        }
    }

    /// True when no fault is declared.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty() && self.links.is_empty() && self.node_drops.is_empty()
    }

    /// Validates every fault against the target cluster's shape.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidValue`] naming the offending field: device or
    /// machine indices out of range, non-positive or non-finite scales,
    /// loss outside `[0, 1)`, negative delays or times, or an `until` not
    /// after its `from`.
    pub fn validate(&self, world_size: usize, num_machines: usize) -> Result<(), SpecError> {
        for (i, s) in self.stragglers.iter().enumerate() {
            let at = |k: &str| format!("faults.stragglers[{i}].{k}");
            if s.device >= world_size {
                return Err(SpecError::invalid(
                    at("device"),
                    format!("device {} out of range (world size {world_size})", s.device),
                ));
            }
            check_scale(&at("scale"), s.scale)?;
            check_time(&at("from"), s.from)?;
        }
        for (i, l) in self.links.iter().enumerate() {
            let at = |k: &str| format!("faults.links[{i}].{k}");
            for (key, m) in [
                ("src_machine", l.src_machine),
                ("dst_machine", l.dst_machine),
            ] {
                if m >= num_machines {
                    return Err(SpecError::invalid(
                        at(key),
                        format!("machine {m} out of range (cluster has {num_machines})"),
                    ));
                }
            }
            check_scale(&at("scale"), l.scale)?;
            if !(0.0..1.0).contains(&l.loss) {
                return Err(SpecError::invalid(at("loss"), "must be in [0, 1)"));
            }
            check_time(&at("retransmit"), l.retransmit)?;
            check_time(&at("from"), l.from)?;
            if let Some(until) = l.until {
                check_time(&at("until"), until)?;
                if until <= l.from {
                    return Err(SpecError::invalid(at("until"), "must be after `from`"));
                }
            }
        }
        for (i, d) in self.node_drops.iter().enumerate() {
            let at = |k: &str| format!("faults.node_drops[{i}].{k}");
            if d.machine >= num_machines {
                return Err(SpecError::invalid(
                    at("machine"),
                    format!(
                        "machine {} out of range (cluster has {num_machines})",
                        d.machine
                    ),
                ));
            }
            check_time(&at("at"), d.at)?;
        }
        Ok(())
    }

    /// Machines dropped by this spec, sorted and deduplicated.
    pub fn dropped_machines(&self) -> Vec<usize> {
        let mut m: Vec<usize> = self.node_drops.iter().map(|d| d.machine).collect();
        m.sort_unstable();
        m.dedup();
        m
    }

    /// Stable content fingerprint (cache/diagnostic key).
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("faultspec");
        h.write_u32(self.schema_version);
        h.write_u64(self.seed);
        h.write_usize(self.stragglers.len());
        for s in &self.stragglers {
            h.write_usize(s.device);
            h.write_f64(s.scale);
            h.write_f64(s.from);
        }
        h.write_usize(self.links.len());
        for l in &self.links {
            h.write_usize(l.src_machine);
            h.write_usize(l.dst_machine);
            h.write_f64(l.scale);
            h.write_f64(l.loss);
            h.write_f64(l.retransmit);
            h.write_f64(l.from);
            h.write_bool(l.until.is_some());
            h.write_f64(l.until.unwrap_or(0.0));
        }
        h.write_usize(self.node_drops.len());
        for d in &self.node_drops {
            h.write_usize(d.machine);
            h.write_f64(d.at);
        }
        h.finish()
    }

    /// Encodes to the JSON tree form.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".to_owned(),
                JsonValue::UInt(u64::from(self.schema_version)),
            ),
            ("seed".to_owned(), JsonValue::UInt(self.seed)),
            (
                "stragglers".to_owned(),
                JsonValue::Array(
                    self.stragglers
                        .iter()
                        .map(|s| {
                            JsonValue::Object(vec![
                                ("device".to_owned(), JsonValue::UInt(s.device as u64)),
                                ("scale".to_owned(), JsonValue::Num(s.scale)),
                                ("from".to_owned(), JsonValue::Num(s.from)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "links".to_owned(),
                JsonValue::Array(
                    self.links
                        .iter()
                        .map(|l| {
                            JsonValue::Object(vec![
                                (
                                    "src_machine".to_owned(),
                                    JsonValue::UInt(l.src_machine as u64),
                                ),
                                (
                                    "dst_machine".to_owned(),
                                    JsonValue::UInt(l.dst_machine as u64),
                                ),
                                ("scale".to_owned(), JsonValue::Num(l.scale)),
                                ("loss".to_owned(), JsonValue::Num(l.loss)),
                                ("retransmit".to_owned(), JsonValue::Num(l.retransmit)),
                                ("from".to_owned(), JsonValue::Num(l.from)),
                                (
                                    "until".to_owned(),
                                    l.until.map_or(JsonValue::Null, JsonValue::Num),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "node_drops".to_owned(),
                JsonValue::Array(
                    self.node_drops
                        .iter()
                        .map(|d| {
                            JsonValue::Object(vec![
                                ("machine".to_owned(), JsonValue::UInt(d.machine as u64)),
                                ("at".to_owned(), JsonValue::Num(d.at)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Encodes to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Decodes from the JSON tree form.
    ///
    /// # Errors
    ///
    /// Typed [`SpecError`]s with dotted field paths: unsupported schema
    /// version, unknown or missing fields, type mismatches.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, SpecError> {
        let f = Fields::new(value, "")?;
        f.allow(&[
            "schema_version",
            "seed",
            "stragglers",
            "links",
            "node_drops",
        ])?;
        if let Some(v) = f.get("schema_version") {
            let version = as_u64(v, &f.path("schema_version"))?;
            if version != u64::from(SCHEMA_VERSION) {
                return Err(SpecError::UnsupportedVersion(version));
            }
        }
        let seed = match f.get("seed") {
            Some(v) => as_u64(v, &f.path("seed"))?,
            None => 0,
        };
        let mut spec = FaultSpec {
            schema_version: SCHEMA_VERSION,
            seed,
            ..FaultSpec::none()
        };
        if let Some(v) = f.get("stragglers") {
            for (i, item) in as_array(v, &f.path("stragglers"))?.iter().enumerate() {
                let base = format!("stragglers[{i}]");
                let sf = Fields::new(item, &base)?;
                sf.allow(&["device", "scale", "from"])?;
                spec.stragglers.push(StragglerFault {
                    device: as_usize(sf.require("device")?, &sf.path("device"))?,
                    scale: f64_field(&sf, "scale")?,
                    from: optional_f64(&sf, "from")?.unwrap_or(0.0),
                });
            }
        }
        if let Some(v) = f.get("links") {
            for (i, item) in as_array(v, &f.path("links"))?.iter().enumerate() {
                let base = format!("links[{i}]");
                let lf = Fields::new(item, &base)?;
                lf.allow(&[
                    "src_machine",
                    "dst_machine",
                    "scale",
                    "loss",
                    "retransmit",
                    "from",
                    "until",
                ])?;
                spec.links.push(LinkFault {
                    src_machine: as_usize(lf.require("src_machine")?, &lf.path("src_machine"))?,
                    dst_machine: as_usize(lf.require("dst_machine")?, &lf.path("dst_machine"))?,
                    scale: optional_f64(&lf, "scale")?.unwrap_or(1.0),
                    loss: optional_f64(&lf, "loss")?.unwrap_or(0.0),
                    retransmit: optional_f64(&lf, "retransmit")?.unwrap_or(0.0),
                    from: optional_f64(&lf, "from")?.unwrap_or(0.0),
                    until: optional_f64(&lf, "until")?,
                });
            }
        }
        if let Some(v) = f.get("node_drops") {
            for (i, item) in as_array(v, &f.path("node_drops"))?.iter().enumerate() {
                let base = format!("node_drops[{i}]");
                let df = Fields::new(item, &base)?;
                df.allow(&["machine", "at"])?;
                spec.node_drops.push(NodeDropFault {
                    machine: as_usize(df.require("machine")?, &df.path("machine"))?,
                    at: f64_field(&df, "at")?,
                });
            }
        }
        Ok(spec)
    }

    /// Decodes from a JSON string.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON, otherwise as
    /// [`FaultSpec::from_json_value`].
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_json_value(&parse(text)?)
    }
}

fn check_scale(path: &str, scale: f64) -> Result<(), SpecError> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(SpecError::invalid(path, "must be a finite positive number"));
    }
    Ok(())
}

fn check_time(path: &str, t: f64) -> Result<(), SpecError> {
    if !t.is_finite() || t < 0.0 {
        return Err(SpecError::invalid(
            path,
            "must be a finite non-negative number",
        ));
    }
    Ok(())
}

fn optional_f64(fields: &Fields<'_>, key: &str) -> Result<Option<f64>, SpecError> {
    match fields.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => Ok(Some(as_f64(v, &fields.path(key))?)),
    }
}

/// Hard cap on retransmits of a single message, so a loss probability close
/// to 1 degrades the timeline instead of hanging it.
pub const MAX_RETRANSMITS: u32 = 16;

/// A [`FaultSpec`] compiled onto one simulation's instruction streams.
///
/// Streams are pipeline slots; under replication a slot holds several
/// devices executing in lockstep, so the slot's compute scale is the *max*
/// over its devices (the slowest replica gates the group) and the slot
/// drops at the *earliest* drop time among its devices' machines. Link
/// faults are matched on the machine pair of the communicating slots'
/// representative (first) devices.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-stream straggler schedule: `(from, scale)` entries per device.
    compute: Vec<Vec<Vec<(f64, f64)>>>,
    /// Per-stream drop time.
    drop_at: Vec<Option<f64>>,
    /// Representative machine per stream (for link matching).
    machine: Vec<usize>,
    /// Active link faults.
    links: Vec<LinkFault>,
    /// Spec seed mixed with the compile-time salt.
    seed: u64,
}

impl FaultPlan {
    /// The no-op plan: every query degenerates to the fault-free value,
    /// regardless of stream count.
    pub fn none() -> Self {
        FaultPlan {
            compute: Vec::new(),
            drop_at: Vec::new(),
            machine: Vec::new(),
            links: Vec::new(),
            seed: 0,
        }
    }

    /// Compiles `spec` onto instruction streams.
    ///
    /// `stream_devices[s]` lists the global device ranks executing stream
    /// `s` in lockstep; `machine_of[d]` maps a global device rank to its
    /// machine. `salt` domain-separates the retransmit sampling of
    /// independent simulations sharing one seed (e.g. per data-parallel
    /// group), keeping them deterministic but uncorrelated.
    pub fn compile(
        spec: &FaultSpec,
        stream_devices: &[Vec<usize>],
        machine_of: &[usize],
        salt: u64,
    ) -> Self {
        let compute = stream_devices
            .iter()
            .map(|devs| {
                devs.iter()
                    .map(|d| {
                        spec.stragglers
                            .iter()
                            .filter(|s| s.device == *d)
                            .map(|s| (s.from, s.scale))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let drop_at = stream_devices
            .iter()
            .map(|devs| {
                devs.iter()
                    .filter_map(|d| {
                        let m = machine_of.get(*d).copied()?;
                        spec.node_drops
                            .iter()
                            .filter(|drop| drop.machine == m)
                            .map(|drop| drop.at)
                            .reduce(f64::min)
                    })
                    .reduce(f64::min)
            })
            .collect();
        let machine = stream_devices
            .iter()
            .map(|devs| {
                devs.first()
                    .and_then(|d| machine_of.get(*d).copied())
                    .unwrap_or(0)
            })
            .collect();
        FaultPlan {
            compute,
            drop_at,
            machine,
            links: spec.links.clone(),
            seed: mix(spec.seed, &[0x6661756c74, salt]),
        }
    }

    /// Compute-duration multiplier for stream `s` at time `t`: max over the
    /// stream's lockstep devices of the product of their active stragglers.
    pub fn compute_scale(&self, s: usize, t: f64) -> f64 {
        match self.compute.get(s) {
            None => 1.0,
            Some(devs) => devs
                .iter()
                .map(|entries| {
                    entries
                        .iter()
                        .filter(|(from, _)| t >= *from - 1e-12)
                        .map(|(_, scale)| scale)
                        .product::<f64>()
                })
                .fold(1.0, f64::max),
        }
    }

    /// Time at which stream `s` stops starting instructions, if any.
    pub fn drop_at(&self, s: usize) -> Option<f64> {
        self.drop_at.get(s).copied().flatten()
    }

    /// Effective transfer duration for a send from stream `src` to stream
    /// `dst` starting at time `t` with fault-free duration `seconds`.
    /// `tag` feeds the deterministic retransmit sampling.
    pub fn transfer_seconds(&self, src: usize, dst: usize, t: f64, seconds: f64, tag: u64) -> f64 {
        if self.links.is_empty() {
            return seconds;
        }
        let (ma, mb) = (
            self.machine.get(src).copied().unwrap_or(0),
            self.machine.get(dst).copied().unwrap_or(0),
        );
        let mut total = seconds;
        for (i, l) in self.links.iter().enumerate() {
            let pair_matches = (l.src_machine == ma && l.dst_machine == mb)
                || (l.src_machine == mb && l.dst_machine == ma);
            let active = t >= l.from - 1e-12 && l.until.is_none_or(|u| t < u);
            if !pair_matches || !active {
                continue;
            }
            total *= l.scale;
            if l.loss > 0.0 && l.retransmit > 0.0 {
                let retries =
                    self.sample_retransmits(i as u64, src as u64, dst as u64, tag, l.loss);
                total += f64::from(retries) * l.retransmit;
            }
        }
        total
    }

    /// Geometric retransmit count for one message, capped at
    /// [`MAX_RETRANSMITS`]. Pure function of the seed and the message
    /// identity — no wall clock, no mutable PRNG state, no dependence on
    /// event pop order.
    fn sample_retransmits(&self, link: u64, src: u64, dst: u64, tag: u64, loss: f64) -> u32 {
        for attempt in 0..MAX_RETRANSMITS {
            let h = mix(self.seed, &[link, src, dst, tag, u64::from(attempt)]);
            if unit_f64(h) >= loss {
                return attempt;
            }
        }
        MAX_RETRANSMITS
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// SplitMix64 finaliser — a strong 64-bit avalanche.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds `parts` into `seed` with SplitMix64 rounds.
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut x = splitmix64(seed);
    for &p in parts {
        x = splitmix64(x ^ p);
    }
    x
}

/// Maps a hash to a uniform value in `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> FaultSpec {
        FaultSpec {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            stragglers: vec![StragglerFault {
                device: 3,
                scale: 1.8,
                from: 0.5,
            }],
            links: vec![LinkFault {
                src_machine: 0,
                dst_machine: 1,
                scale: 2.0,
                loss: 0.25,
                retransmit: 0.002,
                from: 0.0,
                until: Some(9.0),
            }],
            node_drops: vec![NodeDropFault {
                machine: 1,
                at: 1.25,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_identity_and_byte_stable() {
        let spec = sample_spec();
        let text = spec.to_json();
        let back = FaultSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn unknown_fields_and_bad_versions_rejected() {
        assert!(matches!(
            FaultSpec::from_json(r#"{"schema_version": 99}"#),
            Err(SpecError::UnsupportedVersion(99))
        ));
        assert!(matches!(
            FaultSpec::from_json(r#"{"stragglerz": []}"#),
            Err(SpecError::UnknownField(_))
        ));
        assert!(matches!(
            FaultSpec::from_json(r#"{"stragglers": [{"device": 0, "scale": 2.0, "typo": 1}]}"#),
            Err(SpecError::UnknownField(_))
        ));
    }

    #[test]
    fn validate_checks_ranges() {
        let mut spec = sample_spec();
        assert!(spec.validate(8, 2).is_ok());
        assert!(spec.validate(3, 2).is_err()); // straggler device 3 out of range
        assert!(spec.validate(8, 1).is_err()); // machine 1 out of range
        spec.links[0].loss = 1.0;
        assert!(spec.validate(8, 2).is_err());
        spec.links[0].loss = 0.0;
        spec.stragglers[0].scale = 0.0;
        assert!(spec.validate(8, 2).is_err());
    }

    #[test]
    fn compile_applies_straggler_drop_and_link() {
        let spec = sample_spec();
        // Two streams: slot 0 = devices {0, 3} on machine 0, slot 1 =
        // device {4} on machine 1 (4 devices per machine).
        let plan = FaultPlan::compile(&spec, &[vec![0, 3], vec![4]], &[0, 0, 0, 0, 1, 1, 1, 1], 0);
        // Straggler on device 3 gates slot 0 from t=0.5.
        assert_eq!(plan.compute_scale(0, 0.0), 1.0);
        assert_eq!(plan.compute_scale(0, 0.5), 1.8);
        assert_eq!(plan.compute_scale(1, 2.0), 1.0);
        // Machine 1 drop maps to slot 1 only.
        assert_eq!(plan.drop_at(0), None);
        assert_eq!(plan.drop_at(1), Some(1.25));
        // Cross-machine link scale doubles transfers while active.
        let t = plan.transfer_seconds(0, 1, 0.0, 0.1, 7);
        assert!(t >= 0.2, "{t}");
        // After `until`, the link fault clears.
        assert_eq!(plan.transfer_seconds(0, 1, 9.5, 0.1, 7), 0.1);
        // Intra-slot traffic on machine 0 is unaffected.
        assert_eq!(plan.transfer_seconds(0, 0, 0.0, 0.1, 7), 0.1);
    }

    #[test]
    fn retransmits_are_deterministic_and_capped() {
        let spec = sample_spec();
        let plan = FaultPlan::compile(&spec, &[vec![0], vec![4]], &[0, 0, 0, 0, 1, 1, 1, 1], 0);
        let a = plan.transfer_seconds(0, 1, 0.0, 0.1, 99);
        let b = plan.transfer_seconds(0, 1, 0.0, 0.1, 99);
        assert_eq!(a, b);
        // A different salt decorrelates but stays deterministic.
        let salted = FaultPlan::compile(&spec, &[vec![0], vec![4]], &[0, 0, 0, 0, 1, 1, 1, 1], 1);
        assert_eq!(
            salted.transfer_seconds(0, 1, 0.0, 0.1, 99),
            salted.transfer_seconds(0, 1, 0.0, 0.1, 99)
        );
        // Near-certain loss is capped, never unbounded.
        let mut lossy = sample_spec();
        lossy.links[0].loss = 0.999_999;
        let plan = FaultPlan::compile(&lossy, &[vec![0], vec![4]], &[0, 0, 0, 0, 1, 1, 1, 1], 0);
        let t = plan.transfer_seconds(0, 1, 0.0, 0.1, 1);
        let cap = 0.1 * 2.0 + f64::from(MAX_RETRANSMITS) * 0.002;
        assert!(t <= cap + 1e-12, "{t} > {cap}");
    }

    #[test]
    fn none_plan_is_identity() {
        let plan = FaultPlan::none();
        assert_eq!(plan.compute_scale(5, 1.0), 1.0);
        assert_eq!(plan.drop_at(5), None);
        assert_eq!(plan.transfer_seconds(0, 1, 0.0, 0.25, 0), 0.25);
    }
}
