//! Minimal discrete-event core: a time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event carrying a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Simulation time in seconds.
    pub time: f64,
    /// Tie-break sequence number (FIFO among equal times).
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

impl<T> Eq for Event<T> where T: PartialEq {}

impl<T: PartialEq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap (max-heap).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-time event queue.
#[derive(Debug)]
pub struct EventQueue<T: PartialEq> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
    now: f64,
}

impl<T: PartialEq> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }
}

impl<T: PartialEq> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or behind the current simulation time.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now - 1e-12,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Event {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a delay from now.
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        let now = self.now;
        self.schedule(now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 'b');
        q.schedule(1.0, 'a');
        q.schedule(3.0, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'a');
        q.pop();
        q.schedule_after(1.0, 'b');
        let e = q.pop().unwrap();
        assert_eq!(e.time, 6.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'a');
        q.pop();
        q.schedule(1.0, 'b');
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        assert_eq!(q.len(), 1);
    }
}
