//! Minimal discrete-event core: a time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// A scheduling error: the event time was poisoned and must not enter the
/// heap. `Event`'s `Ord` has to treat incomparable times as equal, so a NaN
/// that slipped in would silently corrupt heap order — rejection here is the
/// only line of defence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// The event time was NaN or infinite.
    NonFiniteTime {
        /// Offending time.
        time: f64,
    },
    /// The event time was behind the current simulation clock.
    PastTime {
        /// Offending time.
        time: f64,
        /// Clock value when scheduling was attempted.
        now: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonFiniteTime { time } => {
                write!(f, "event time must be finite, got {time}")
            }
            SimError::PastTime { time, now } => {
                write!(f, "cannot schedule into the past ({time} < {now})")
            }
        }
    }
}

impl Error for SimError {}

/// A timestamped event carrying a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Simulation time in seconds.
    pub time: f64,
    /// Tie-break sequence number (FIFO among equal times).
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

impl<T> Eq for Event<T> where T: PartialEq {}

impl<T: PartialEq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap (max-heap). Times are
        // guaranteed finite by `schedule`, so `partial_cmp` never actually
        // falls back to `Equal`.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-time event queue.
#[derive(Debug)]
pub struct EventQueue<T: PartialEq> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
    now: f64,
}

impl<T: PartialEq> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }
}

impl<T: PartialEq> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteTime`] if `time` is NaN or infinite and
    /// [`SimError::PastTime`] if it is behind the current simulation time;
    /// in both cases the event is *not* enqueued, so a poisoned time can
    /// never reach the heap's comparator.
    pub fn schedule(&mut self, time: f64, payload: T) -> Result<(), SimError> {
        if !time.is_finite() {
            return Err(SimError::NonFiniteTime { time });
        }
        if time < self.now - 1e-12 {
            return Err(SimError::PastTime {
                time,
                now: self.now,
            });
        }
        self.heap.push(Event {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        Ok(())
    }

    /// Schedules `payload` after a delay from now.
    ///
    /// # Errors
    ///
    /// Same contract as [`EventQueue::schedule`] applied to `now + delay`
    /// (a NaN or negative delay is rejected).
    pub fn schedule_after(&mut self, delay: f64, payload: T) -> Result<(), SimError> {
        let now = self.now;
        self.schedule(now + delay, payload)
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?;
        // `schedule` rejects poisoned times, so the clock can only move
        // forward; this assert guards the invariant in debug builds.
        debug_assert!(
            ev.time >= self.now - 1e-12,
            "event queue popped backwards: {} after {}",
            ev.time,
            self.now
        );
        self.now = ev.time;
        Some(ev)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 'b').unwrap();
        q.schedule(1.0, 'a').unwrap();
        q.schedule(3.0, 'c').unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1).unwrap();
        q.schedule(1.0, 2).unwrap();
        q.schedule(1.0, 3).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'a').unwrap();
        q.pop();
        q.schedule_after(1.0, 'b').unwrap();
        let e = q.pop().unwrap();
        assert_eq!(e.time, 6.0);
    }

    #[test]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'a').unwrap();
        q.pop();
        assert_eq!(
            q.schedule(1.0, 'b'),
            Err(SimError::PastTime {
                time: 1.0,
                now: 5.0
            })
        );
        // The rejected event must not have entered the heap.
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_poisoned_times() {
        let mut q = EventQueue::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                q.schedule(bad, 'x'),
                Err(SimError::NonFiniteTime { .. })
            ));
        }
        assert!(matches!(
            q.schedule_after(f64::NAN, 'x'),
            Err(SimError::NonFiniteTime { .. })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0).unwrap();
        assert_eq!(q.len(), 1);
    }

    /// A time that may be valid, negative, infinite, or NaN.
    fn arb_time() -> impl Strategy<Value = f64> {
        (0u8..8, -1e3f64..1e3).prop_map(|(kind, v)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => v,
        })
    }

    proptest! {
        /// Whatever mix of poisoned and valid times is thrown at the queue
        /// (including after the clock has advanced), every rejected time
        /// stays out of the heap and the pop sequence is nondecreasing —
        /// a poisoned time can never reorder the heap.
        #[test]
        fn poisoned_times_never_reorder_heap(
            first in proptest::collection::vec(arb_time(), 0..32),
            second in proptest::collection::vec(arb_time(), 0..32),
            drain in 0usize..32,
        ) {
            let mut q = EventQueue::new();
            let mut accepted = 0usize;
            for &t in &first {
                match q.schedule(t, ()) {
                    Ok(()) => accepted += 1,
                    Err(_) => prop_assert!(!t.is_finite() || t < -1e-12),
                }
            }
            let mut popped = Vec::new();
            for _ in 0..drain.min(q.len()) {
                popped.push(q.pop().unwrap().time);
            }
            // Second wave against an advanced clock: anything behind `now`
            // must be rejected, nothing already popped can be undercut.
            for &t in &second {
                match q.schedule(t, ()) {
                    Ok(()) => accepted += 1,
                    Err(_) => prop_assert!(!t.is_finite() || t < q.now() - 1e-12),
                }
            }
            while let Some(e) = q.pop() {
                popped.push(e.time);
            }
            prop_assert_eq!(popped.len(), accepted);
            for w in popped.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12, "reordered: {} then {}", w[0], w[1]);
            }
        }
    }
}
