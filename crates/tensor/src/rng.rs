//! Deterministic random number generation (splitmix64-based).

/// A tiny deterministic RNG. Not cryptographic; used only for reproducible
/// weight initialisation and synthetic data.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Approximately standard normal (sum of 12 uniforms minus 6).
    pub fn next_normal(&mut self) -> f32 {
        let mut s = 0.0f32;
        for _ in 0..12 {
            s += self.next_f32();
        }
        s - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = DetRng::new(4);
        let n = 10_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_normal()).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
