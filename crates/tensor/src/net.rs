//! Small sequential networks and losses.

use crate::layers::{Layer, Linear, Silu};
use crate::matrix::Matrix;

/// A sequential MLP of alternating `Linear`/`SiLU` blocks, usable both as a
/// full model and as a pipeline stage (a contiguous slice of blocks).
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Mlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mlp({} layers)", self.layers.len())
    }
}

impl Mlp {
    /// Builds `blocks` Linear+SiLU blocks of uniform width `dim`
    /// (deterministic per-block seeds derived from `seed`).
    pub fn uniform(blocks: usize, dim: usize, seed: u64) -> Self {
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(blocks * 2);
        for b in 0..blocks {
            layers.push(Box::new(Linear::new(dim, dim, seed.wrapping_add(b as u64))));
            layers.push(Box::new(Silu::new()));
        }
        Mlp { layers }
    }

    /// Builds an MLP from explicit layers.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Mlp { layers }
    }

    /// Splits into `n` contiguous stages with the given per-stage layer
    /// counts (in *blocks* of the original construction — each entry counts
    /// raw layers here).
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to the layer count.
    pub fn split(self, counts: &[usize]) -> Vec<Mlp> {
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.layers.len(),
            "split counts must cover all layers"
        );
        let mut layers = self.layers;
        let mut out = Vec::with_capacity(counts.len());
        for &c in counts {
            let rest = layers.split_off(c);
            out.push(Mlp { layers });
            layers = rest;
        }
        out
    }

    /// Number of raw layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward with caching.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.forward_inference(&h);
        }
        h
    }

    /// Backward; returns input gradient.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Forward returning the per-layer input cache, so several
    /// micro-batches can be in flight simultaneously (1F1B pipelining).
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<Matrix>) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for l in &self.layers {
            inputs.push(h.clone());
            h = l.forward_inference(&h);
        }
        (h, inputs)
    }

    /// Backward from an explicit cache produced by [`Mlp::forward_cached`],
    /// accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the layer count.
    pub fn backward_cached(&mut self, inputs: &[Matrix], grad_out: &Matrix) -> Matrix {
        assert_eq!(inputs.len(), self.layers.len(), "cache/layer mismatch");
        let mut g = grad_out.clone();
        for (l, x) in self.layers.iter_mut().rev().zip(inputs.iter().rev()) {
            g = l.backward_from(x, &g);
        }
        g
    }

    /// Concatenated parameter vector.
    pub fn params(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Concatenated gradient vector.
    pub fn grads(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    /// Overwrites gradients from a concatenated vector.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn set_grads(&mut self, grads: &[f32]) {
        let mut off = 0;
        for l in &mut self.layers {
            let n = l.grads().len();
            l.set_grads(&grads[off..off + n]);
            off += n;
        }
        assert_eq!(off, grads.len(), "gradient vector size mismatch");
    }

    /// Overwrites parameters from a concatenated vector.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn set_params(&mut self, params: &[f32]) {
        let mut off = 0;
        for l in &mut self.layers {
            let n = l.params().len();
            l.set_params(&params[off..off + n]);
            off += n;
        }
        assert_eq!(off, params.len(), "parameter vector size mismatch");
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// SGD step on every layer.
    pub fn apply_sgd(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.apply_sgd(lr);
        }
    }
}

/// Mean-squared-error loss (mean over all elements).
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> f32 {
    let n = (pred.rows() * pred.cols()) as f32;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / n
}

/// Gradient of [`mse_loss`] w.r.t. `pred`, scaled for a *global* batch of
/// `pred.rows()` rows (so micro-batch gradients sum correctly when the
/// loss normalisation uses the global element count: pass the global count
/// via `mse_grad_scaled` when splitting).
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    let n = (pred.rows() * pred.cols()) as f32;
    (pred - target).scale(2.0 / n)
}

/// [`mse_grad`] with an explicit global element count, for micro-batched
/// training where each micro-batch must be normalised by the full batch.
pub fn mse_grad_scaled(pred: &Matrix, target: &Matrix, global_elems: usize) -> Matrix {
    (pred - target).scale(2.0 / global_elems as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_loss() {
        let mut net = Mlp::uniform(2, 8, 42);
        let x = Matrix::randn(16, 8, 1);
        let y = Matrix::randn(16, 8, 2).scale(0.1);
        let mut losses = Vec::new();
        for _ in 0..50 {
            net.zero_grads();
            let pred = net.forward(&x);
            losses.push(mse_loss(&pred, &y));
            let g = mse_grad(&pred, &y);
            net.backward(&g);
            net.apply_sgd(0.05);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn split_preserves_function() {
        let net = Mlp::uniform(3, 4, 7);
        let x = Matrix::randn(5, 4, 9);
        let full = net.forward_inference(&x);
        let stages = net.split(&[2, 2, 2]);
        let mut h = x;
        for s in &stages {
            h = s.forward_inference(&h);
        }
        assert!(h.max_abs_diff(&full) < 1e-6);
    }

    #[test]
    fn split_backward_chains_like_full() {
        let mut full = Mlp::uniform(2, 4, 3);
        let x = Matrix::randn(3, 4, 5);
        let t = Matrix::zeros(3, 4);
        let pred = full.forward(&x);
        let g = mse_grad(&pred, &t);
        full.backward(&g);
        let full_grads = full.grads();

        let net = Mlp::uniform(2, 4, 3);
        let mut stages = net.split(&[2, 2]);
        let h1 = {
            let (s0, rest) = stages.split_at_mut(1);
            let h1 = s0[0].forward(&x);
            let h2 = rest[0].forward(&h1);
            let g2 = mse_grad(&h2, &t);
            let g1 = rest[0].backward(&g2);
            s0[0].backward(&g1);
            h1
        };
        let _ = h1;
        let mut staged_grads = stages[0].grads();
        staged_grads.extend(stages[1].grads());
        let diff: f32 = staged_grads
            .iter()
            .zip(&full_grads)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-6, "diff {diff}");
    }

    #[test]
    fn mse_grad_scaled_sums_across_micro_batches() {
        let pred = Matrix::randn(4, 2, 1);
        let target = Matrix::zeros(4, 2);
        let full = mse_grad(&pred, &target);
        let parts_p = pred.split_rows(2);
        let parts_t = target.split_rows(2);
        let micro: Vec<Matrix> = parts_p
            .iter()
            .zip(&parts_t)
            .map(|(p, t)| mse_grad_scaled(p, t, 8))
            .collect();
        let stacked = Matrix::vstack(&micro);
        assert!(stacked.max_abs_diff(&full) < 1e-7);
    }

    #[test]
    fn params_and_grads_align() {
        let mut net = Mlp::uniform(2, 3, 1);
        let n = net.params().len();
        assert_eq!(net.grads().len(), n);
        let fake: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        net.set_grads(&fake);
        assert_eq!(net.grads(), fake);
    }
}
