//! Minimal deterministic CPU tensor and neural-network substrate.
//!
//! The back-end execution engine (`dpipe_engine`) runs *real* numerical
//! training on simulated devices to validate the paper's §3.2 claim that
//! cross-iteration pipelining is mathematically equivalent to data-parallel
//! synchronous training. This crate provides what that needs and nothing
//! more: a 2-D `f32` matrix type, linear/activation layers with explicit
//! forward/backward, an MSE loss, and SGD — all bit-deterministic given a
//! seed.
//!
//! # Example
//!
//! ```
//! use dpipe_tensor::{Linear, Layer, Matrix, mse_loss, mse_grad};
//!
//! let mut layer = Linear::new(4, 2, 42);
//! let x = Matrix::randn(3, 4, 7);
//! let y = layer.forward(&x);
//! let target = Matrix::zeros(3, 2);
//! let loss = mse_loss(&y, &target);
//! let gout = mse_grad(&y, &target);
//! let _gin = layer.backward(&gout);
//! layer.apply_sgd(0.01);
//! assert!(loss >= 0.0);
//! ```

mod layers;
mod matrix;
mod net;
mod norm;
mod optim;
mod rng;

pub use layers::{Layer, Linear, Silu};
pub use matrix::Matrix;
pub use net::{mse_grad, mse_grad_scaled, mse_loss, Mlp};
pub use norm::LayerNorm;
pub use optim::{Optimizer, OptimizerState};
pub use rng::DetRng;
