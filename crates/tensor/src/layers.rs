//! Layers with explicit forward/backward — the natural shape for pipeline
//! stage execution.

use crate::matrix::Matrix;

/// A trainable (or stateless) layer with explicit reverse-mode methods.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// gradient w.r.t. the output and returns the gradient w.r.t. the input,
/// accumulating parameter gradients internally.
pub trait Layer: Send {
    /// Forward pass, caching activations for backward.
    fn forward(&mut self, x: &Matrix) -> Matrix;
    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;
    /// Backward pass from an explicitly supplied cached input — enables
    /// multiple in-flight micro-batches (1F1B keeps several activations
    /// alive per stage, so the single internal cache of `forward` is not
    /// enough for pipeline execution).
    fn backward_from(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix;
    /// Forward pass without caching (inference / frozen execution).
    fn forward_inference(&self, x: &Matrix) -> Matrix;
    /// Flattened view of parameters (empty if stateless).
    fn params(&self) -> Vec<f32>;
    /// Flattened accumulated gradients (same layout as `params`).
    fn grads(&self) -> Vec<f32>;
    /// Overwrites gradients (used after all-reduce averaging).
    fn set_grads(&mut self, grads: &[f32]);
    /// Overwrites parameters (used by external optimisers such as Adam).
    fn set_params(&mut self, params: &[f32]);
    /// Zeroes accumulated gradients.
    fn zero_grads(&mut self);
    /// SGD step: `p -= lr * g`.
    fn apply_sgd(&mut self, lr: f32);
}

/// Fully connected layer `y = x·W + b` with gradient accumulation.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,    // in x out
    b: Vec<f32>,  // out
    gw: Matrix,   // grad W
    gb: Vec<f32>, // grad b
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with seeded Xavier-ish initialisation.
    pub fn new(inp: usize, out: usize, seed: u64) -> Self {
        let scale = (2.0 / (inp + out) as f32).sqrt();
        Linear {
            w: Matrix::randn(inp, out, seed).scale(scale),
            b: vec![0.0; out],
            gw: Matrix::zeros(inp, out),
            gb: vec![0.0; out],
            cache_x: None,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        x.matmul(&self.w).add_row(&self.b)
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.w).add_row(&self.b)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // dpipe-analyze: allow(no-panic) -- Layer contract: backward without a prior forward is a caller bug worth a loud stop
        let x = self.cache_x.take().expect("backward called before forward");
        self.backward_from(&x, grad_out)
    }

    fn backward_from(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        // Accumulate parameter grads.
        let gw = input.transpose().matmul(grad_out);
        self.gw = &self.gw + &gw;
        for (acc, g) in self.gb.iter_mut().zip(grad_out.col_sums()) {
            *acc += g;
        }
        grad_out.matmul(&self.w.transpose())
    }

    fn params(&self) -> Vec<f32> {
        let mut p = self.w.data().to_vec();
        p.extend_from_slice(&self.b);
        p
    }

    fn grads(&self) -> Vec<f32> {
        let mut g = self.gw.data().to_vec();
        g.extend_from_slice(&self.gb);
        g
    }

    fn set_grads(&mut self, grads: &[f32]) {
        let nw = self.gw.data().len();
        assert_eq!(grads.len(), nw + self.gb.len(), "gradient size mismatch");
        self.gw.data_mut().copy_from_slice(&grads[..nw]);
        self.gb.copy_from_slice(&grads[nw..]);
    }

    fn set_params(&mut self, params: &[f32]) {
        let nw = self.w.data().len();
        assert_eq!(params.len(), nw + self.b.len(), "parameter size mismatch");
        self.w.data_mut().copy_from_slice(&params[..nw]);
        self.b.copy_from_slice(&params[nw..]);
    }

    fn zero_grads(&mut self) {
        self.gw = Matrix::zeros(self.gw.rows(), self.gw.cols());
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn apply_sgd(&mut self, lr: f32) {
        let gw = self.gw.clone();
        for (p, g) in self.w.data_mut().iter_mut().zip(gw.data()) {
            *p -= lr * g;
        }
        for (p, g) in self.b.iter_mut().zip(&self.gb) {
            *p -= lr * g;
        }
    }
}

/// SiLU activation `x * sigmoid(x)` (stateless).
#[derive(Debug, Clone, Default)]
pub struct Silu {
    cache_x: Option<Matrix>,
}

impl Silu {
    /// Creates the activation.
    pub fn new() -> Self {
        Silu::default()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Silu {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        x.map(|v| v * sigmoid(v))
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        x.map(|v| v * sigmoid(v))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // dpipe-analyze: allow(no-panic) -- Layer contract: backward without a prior forward is a caller bug worth a loud stop
        let x = self.cache_x.take().expect("backward called before forward");
        self.backward_from(&x, grad_out)
    }

    fn backward_from(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        let deriv = input.map(|v| {
            let s = sigmoid(v);
            s + v * s * (1.0 - s)
        });
        Matrix::from_vec(
            grad_out.rows(),
            grad_out.cols(),
            grad_out
                .data()
                .iter()
                .zip(deriv.data())
                .map(|(g, d)| g * d)
                .collect(),
        )
    }

    fn params(&self) -> Vec<f32> {
        Vec::new()
    }
    fn grads(&self) -> Vec<f32> {
        Vec::new()
    }
    fn set_grads(&mut self, grads: &[f32]) {
        assert!(grads.is_empty());
    }
    fn set_params(&mut self, params: &[f32]) {
        assert!(params.is_empty());
    }
    fn zero_grads(&mut self) {}
    fn apply_sgd(&mut self, _lr: f32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check of Linear via finite differences on a
    /// scalar loss `sum(y)`.
    #[test]
    fn linear_gradient_check() {
        let mut layer = Linear::new(3, 2, 11);
        let x = Matrix::randn(4, 3, 5);
        let y = layer.forward(&x);
        let ones = Matrix::from_vec(4, 2, vec![1.0; 8]);
        let gin = layer.backward(&ones);
        // d sum(y) / dx = W^T broadcast: check one element numerically.
        let eps = 1e-3f32;
        let mut x2 = x.clone();
        x2.data_mut()[0] += eps;
        let y2 = layer.forward_inference(&x2);
        let num = (y2.data().iter().sum::<f32>() - y.data().iter().sum::<f32>()) / eps;
        assert!(
            (num - gin.at(0, 0)).abs() < 1e-2,
            "num {num} vs {}",
            gin.at(0, 0)
        );
    }

    #[test]
    fn linear_weight_gradient_check() {
        let mut layer = Linear::new(2, 2, 3);
        let x = Matrix::randn(3, 2, 8);
        let y = layer.forward(&x);
        let ones = Matrix::from_vec(3, 2, vec![1.0; 6]);
        layer.backward(&ones);
        let analytic = layer.grads()[0]; // dL/dW[0,0]
        let eps = 1e-3f32;
        let mut perturbed = layer.clone();
        perturbed.w.data_mut()[0] += eps;
        let y2 = perturbed.forward_inference(&x);
        let num = (y2.data().iter().sum::<f32>() - y.data().iter().sum::<f32>()) / eps;
        assert!((num - analytic).abs() < 1e-2, "num {num} vs {analytic}");
    }

    #[test]
    fn silu_gradient_check() {
        let mut act = Silu::new();
        let x = Matrix::randn(2, 3, 21);
        let y = act.forward(&x);
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let gin = act.backward(&ones);
        let eps = 1e-3f32;
        let mut x2 = x.clone();
        x2.data_mut()[1] += eps;
        let y2 = act.forward_inference(&x2);
        let num = (y2.data().iter().sum::<f32>() - y.data().iter().sum::<f32>()) / eps;
        assert!((num - gin.data()[1]).abs() < 1e-2);
    }

    #[test]
    fn gradient_accumulation_over_micro_batches() {
        // Two backward calls accumulate; equals one backward on the stacked
        // batch.
        let x = Matrix::randn(4, 3, 5);
        let parts = x.split_rows(2);
        let mut acc = Linear::new(3, 2, 11);
        for p in &parts {
            let _ = acc.forward(p);
            let ones = Matrix::from_vec(p.rows(), 2, vec![1.0; p.rows() * 2]);
            acc.backward(&ones);
        }
        let mut full = Linear::new(3, 2, 11);
        let _ = full.forward(&x);
        let ones = Matrix::from_vec(4, 2, vec![1.0; 8]);
        full.backward(&ones);
        let diff: f32 = acc
            .grads()
            .iter()
            .zip(full.grads())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-4, "diff {diff}");
    }

    #[test]
    fn sgd_moves_params_against_gradient() {
        let mut layer = Linear::new(2, 2, 1);
        let before = layer.params();
        let x = Matrix::randn(1, 2, 2);
        let _ = layer.forward(&x);
        layer.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        layer.apply_sgd(0.1);
        let after = layer.params();
        assert_ne!(before, after);
        // p_new = p_old - lr*g.
        let g = layer.grads();
        for ((b, a), g) in before.iter().zip(&after).zip(&g) {
            assert!((b - a - 0.1 * g).abs() < 1e-6);
        }
    }

    #[test]
    fn set_grads_round_trip() {
        let mut layer = Linear::new(2, 3, 1);
        let fake: Vec<f32> = (0..9).map(|i| i as f32).collect();
        layer.set_grads(&fake);
        assert_eq!(layer.grads(), fake);
        layer.zero_grads();
        assert!(layer.grads().iter().all(|&g| g == 0.0));
    }
}
