//! Row-major 2-D `f32` matrices.

use crate::rng::DetRng;
use std::fmt;
use std::ops::{Add, Sub};

/// A dense row-major matrix of `f32` (rows = batch, cols = features).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Seeded standard-normal matrix.
    pub fn randn(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.next_normal()).collect(),
        }
    }

    /// Builds from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Matrix product `self (r×k) · other (k×c)`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds a row vector (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols);
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols) {
            for (o, b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Column sums (gradient of a broadcast bias).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Scales all elements.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Stacks matrices vertically (concatenating micro-batches).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or the input is empty.
    pub fn vstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Splits into `n` row chunks (micro-batches); the first `rows % n`
    /// chunks get an extra row.
    pub fn split_rows(&self, n: usize) -> Vec<Matrix> {
        assert!(n > 0);
        let base = self.rows / n;
        let rem = self.rows % n;
        let mut out = Vec::with_capacity(n);
        let mut r = 0;
        for i in 0..n {
            let take = base + usize::from(i < rem);
            let data = self.data[r * self.cols..(r + take) * self.cols].to_vec();
            out.push(Matrix::from_vec(take, self.cols, data));
            r += take;
        }
        out
    }

    /// Maximum absolute difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::randn(3, 5, 1);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn vstack_then_split_round_trips() {
        let a = Matrix::randn(4, 3, 1);
        let parts = a.split_rows(3); // 2 + 1 + 1 rows
        assert_eq!(
            parts.iter().map(Matrix::rows).collect::<Vec<_>>(),
            vec![2, 1, 1]
        );
        assert_eq!(Matrix::vstack(&parts), a);
    }

    #[test]
    fn bias_and_col_sums_are_adjoint() {
        let x = Matrix::zeros(3, 2);
        let y = x.add_row(&[1.0, -2.0]);
        assert_eq!(y.at(2, 1), -2.0);
        assert_eq!(y.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::randn(2, 2, 1);
        let b = Matrix::randn(2, 2, 2);
        let c = &(&a + &b) - &b;
        assert!(c.max_abs_diff(&a) < 1e-6);
        assert_eq!(a.scale(2.0).at(0, 0), 2.0 * a.at(0, 0));
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_associates_with_identity() {
        let a = Matrix::randn(3, 3, 9);
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye.data_mut()[i * 3 + i] = 1.0;
        }
        assert!(a.matmul(&eye).max_abs_diff(&a) < 1e-6);
    }
}
