//! Layer normalisation with learnable scale and bias.

use crate::layers::Layer;
use crate::matrix::Matrix;

/// Row-wise layer normalisation: `y = (x - mean) / sqrt(var + eps) * g + b`
/// with learnable gain `g` and bias `b` per feature.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: Vec<f32>,
    bias: Vec<f32>,
    g_gain: Vec<f32>,
    g_bias: Vec<f32>,
    eps: f32,
    cache_x: Option<Matrix>,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features (gain 1, bias 0).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gain: vec![1.0; dim],
            bias: vec![0.0; dim],
            g_gain: vec![0.0; dim],
            g_bias: vec![0.0; dim],
            eps: 1e-5,
            cache_x: None,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    fn normalise(&self, x: &Matrix) -> (Matrix, Vec<f32>, Vec<f32>) {
        let (r, c) = (x.rows(), x.cols());
        let mut out = Matrix::zeros(r, c);
        let mut means = Vec::with_capacity(r);
        let mut inv_stds = Vec::with_capacity(r);
        for i in 0..r {
            let row = &x.data()[i * c..(i + 1) * c];
            let mean = row.iter().sum::<f32>() / c as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            let out_row = &mut out.data_mut()[i * c..(i + 1) * c];
            for (((o, &v), &g), &b) in out_row.iter_mut().zip(row).zip(&self.gain).zip(&self.bias) {
                *o = (v - mean) * inv * g + b;
            }
            means.push(mean);
            inv_stds.push(inv);
        }
        (out, means, inv_stds)
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        self.normalise(x).0
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.normalise(x).0
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // dpipe-analyze: allow(no-panic) -- Layer contract: backward without a prior forward is a caller bug worth a loud stop
        let x = self.cache_x.take().expect("backward called before forward");
        self.backward_from(&x, grad_out)
    }

    fn backward_from(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        let (r, c) = (input.rows(), input.cols());
        let cf = c as f32;
        let mut gin = Matrix::zeros(r, c);
        for i in 0..r {
            let row = &input.data()[i * c..(i + 1) * c];
            let go = &grad_out.data()[i * c..(i + 1) * c];
            let mean = row.iter().sum::<f32>() / cf;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cf;
            let inv = 1.0 / (var + self.eps).sqrt();
            // x_hat and param grads.
            let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv).collect();
            for j in 0..c {
                self.g_gain[j] += go[j] * xhat[j];
                self.g_bias[j] += go[j];
            }
            // dL/dx via the standard layer-norm backward.
            let gxhat: Vec<f32> = (0..c).map(|j| go[j] * self.gain[j]).collect();
            let sum_g: f32 = gxhat.iter().sum();
            let sum_gx: f32 = gxhat.iter().zip(&xhat).map(|(g, h)| g * h).sum();
            for j in 0..c {
                gin.data_mut()[i * c + j] = inv / cf * (cf * gxhat[j] - sum_g - xhat[j] * sum_gx);
            }
        }
        gin
    }

    fn params(&self) -> Vec<f32> {
        let mut p = self.gain.clone();
        p.extend_from_slice(&self.bias);
        p
    }

    fn grads(&self) -> Vec<f32> {
        let mut g = self.g_gain.clone();
        g.extend_from_slice(&self.g_bias);
        g
    }

    fn set_grads(&mut self, grads: &[f32]) {
        let n = self.gain.len();
        assert_eq!(grads.len(), 2 * n, "gradient size mismatch");
        self.g_gain.copy_from_slice(&grads[..n]);
        self.g_bias.copy_from_slice(&grads[n..]);
    }

    fn set_params(&mut self, params: &[f32]) {
        let n = self.gain.len();
        assert_eq!(params.len(), 2 * n, "parameter size mismatch");
        self.gain.copy_from_slice(&params[..n]);
        self.bias.copy_from_slice(&params[n..]);
    }

    fn zero_grads(&mut self) {
        self.g_gain.iter_mut().for_each(|g| *g = 0.0);
        self.g_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn apply_sgd(&mut self, lr: f32) {
        for (p, g) in self.gain.iter_mut().zip(&self.g_gain) {
            *p -= lr * g;
        }
        for (p, g) in self.bias.iter_mut().zip(&self.g_bias) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalised() {
        let ln = LayerNorm::new(6);
        let x = Matrix::randn(4, 6, 3).scale(5.0);
        let y = ln.forward_inference(&x);
        for i in 0..4 {
            let row = &y.data()[i * 6..(i + 1) * 6];
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut ln = LayerNorm::new(4);
        // Non-trivial gain/bias so the parameter path is exercised too.
        ln.set_params(&[1.5, 0.5, 2.0, 1.0, 0.1, -0.2, 0.3, 0.0]);
        let x = Matrix::randn(3, 4, 7);
        let y = ln.forward(&x);
        let ones = Matrix::from_vec(3, 4, vec![1.0; 12]);
        let gin = ln.backward(&ones);
        let eps = 1e-3f32;
        for k in [0usize, 5, 11] {
            let mut x2 = x.clone();
            x2.data_mut()[k] += eps;
            let y2 = ln.forward_inference(&x2);
            let num = (y2.data().iter().sum::<f32>() - y.data().iter().sum::<f32>()) / eps;
            assert!(
                (num - gin.data()[k]).abs() < 2e-2,
                "element {k}: numeric {num} vs analytic {}",
                gin.data()[k]
            );
        }
    }

    #[test]
    fn parameter_gradient_check() {
        let mut ln = LayerNorm::new(3);
        let x = Matrix::randn(2, 3, 9);
        let y = ln.forward(&x);
        let ones = Matrix::from_vec(2, 3, vec![1.0; 6]);
        ln.backward(&ones);
        let analytic = ln.grads();
        let eps = 1e-3f32;
        for k in 0..6 {
            let mut perturbed = ln.clone();
            let mut params = perturbed.params();
            params[k] += eps;
            perturbed.set_params(&params);
            let y2 = perturbed.forward_inference(&x);
            let num = (y2.data().iter().sum::<f32>() - y.data().iter().sum::<f32>()) / eps;
            assert!(
                (num - analytic[k]).abs() < 1e-2,
                "param {k}: numeric {num} vs analytic {}",
                analytic[k]
            );
        }
    }

    #[test]
    fn gradient_accumulates() {
        let mut ln = LayerNorm::new(3);
        let x = Matrix::randn(2, 3, 1);
        let g = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let _ = ln.forward(&x);
        ln.backward(&g);
        let once = ln.grads();
        let _ = ln.forward(&x);
        ln.backward(&g);
        let twice = ln.grads();
        for (a, b) in once.iter().zip(&twice) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn works_inside_mlp() {
        use crate::layers::Linear;
        use crate::net::{mse_grad, Mlp};
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Linear::new(4, 4, 1)),
            Box::new(LayerNorm::new(4)),
            Box::new(Linear::new(4, 4, 2)),
        ];
        let mut net = Mlp::from_layers(layers);
        let x = Matrix::randn(8, 4, 5);
        let y = x.scale(0.1);
        let mut losses = Vec::new();
        for _ in 0..60 {
            net.zero_grads();
            let pred = net.forward(&x);
            losses.push(crate::net::mse_loss(&pred, &y));
            let g = mse_grad(&pred, &y);
            net.backward(&g);
            net.apply_sgd(0.5);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "{losses:?}");
    }
}
