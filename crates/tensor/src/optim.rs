//! Optimisers operating on flattened parameter/gradient vectors.

use crate::net::Mlp;

/// Optimiser choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam (Kingma & Ba) with bias correction — the optimiser used by the
    /// diffusion-model training recipes the paper targets.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (default 0.9).
        beta1: f32,
        /// Second-moment decay (default 0.999).
        beta2: f32,
        /// Numerical stabiliser (default 1e-8).
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the conventional defaults.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-network optimiser state (Adam moments; empty for SGD).
#[derive(Debug, Clone)]
pub struct OptimizerState {
    optimizer: Optimizer,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl OptimizerState {
    /// Creates state for a parameter vector of length `n`.
    pub fn new(optimizer: Optimizer, n: usize) -> Self {
        let (m, v) = match optimizer {
            Optimizer::Sgd { .. } => (Vec::new(), Vec::new()),
            Optimizer::Adam { .. } => (vec![0.0; n], vec![0.0; n]),
        };
        OptimizerState {
            optimizer,
            m,
            v,
            t: 0,
        }
    }

    /// Applies one update step to `net` from its accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter count differs from the state's.
    pub fn step(&mut self, net: &mut Mlp) {
        match self.optimizer {
            Optimizer::Sgd { lr } => net.apply_sgd(lr),
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let mut params = net.params();
                let grads = net.grads();
                assert_eq!(params.len(), self.m.len(), "optimizer state size mismatch");
                self.t += 1;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for i in 0..params.len() {
                    let g = grads[i];
                    self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
                    self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
                    let m_hat = self.m[i] / bc1;
                    let v_hat = self.v[i] / bc2;
                    params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
                net.set_params(&params);
            }
        }
    }

    /// The configured optimiser.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::net::{mse_grad, mse_loss};

    fn train(optimizer: Optimizer, iterations: usize) -> Vec<f32> {
        let mut net = Mlp::uniform(1, 8, 3);
        let mut state = OptimizerState::new(optimizer, net.params().len());
        let x = Matrix::randn(16, 8, 1);
        let y = x.scale(0.1);
        let mut losses = Vec::new();
        for _ in 0..iterations {
            net.zero_grads();
            let pred = net.forward(&x);
            losses.push(mse_loss(&pred, &y));
            let g = mse_grad(&pred, &y);
            net.backward(&g);
            state.step(&mut net);
        }
        losses
    }

    #[test]
    fn adam_converges_faster_than_sgd_here() {
        let sgd = train(Optimizer::Sgd { lr: 0.5 }, 100);
        let adam = train(Optimizer::adam(0.01), 100);
        assert!(adam.last().unwrap() < &adam[0]);
        assert!(sgd.last().unwrap() < &sgd[0]);
        // Adam's normalised steps reach a lower loss on this conditioning.
        assert!(adam.last().unwrap() < sgd.last().unwrap());
    }

    #[test]
    fn sgd_state_matches_apply_sgd() {
        let mut a = Mlp::uniform(1, 4, 9);
        let mut b = Mlp::uniform(1, 4, 9);
        let x = Matrix::randn(4, 4, 2);
        let g = Matrix::randn(4, 4, 3);
        let _ = a.forward(&x);
        a.backward(&g);
        let _ = b.forward(&x);
        b.backward(&g);
        let mut state = OptimizerState::new(Optimizer::Sgd { lr: 0.1 }, a.params().len());
        state.step(&mut a);
        b.apply_sgd(0.1);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn adam_steps_are_deterministic() {
        let a = train(Optimizer::adam(0.01), 10);
        let b = train(Optimizer::adam(0.01), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, update = lr * sign-ish(g).
        let mut net = Mlp::uniform(1, 2, 5);
        let before = net.params();
        let x = Matrix::randn(2, 2, 1);
        let _ = net.forward(&x);
        net.backward(&Matrix::from_vec(2, 2, vec![1.0; 4]));
        let mut state = OptimizerState::new(Optimizer::adam(0.01), before.len());
        state.step(&mut net);
        let after = net.params();
        for ((b, a), g) in before.iter().zip(&after).zip(net.grads()) {
            if g.abs() > 1e-6 {
                // First Adam step is ~lr in the gradient direction.
                let step = b - a;
                assert!((step.abs() - 0.01).abs() < 1e-3, "step {step} for grad {g}");
                assert_eq!(step.signum(), g.signum());
            }
        }
    }
}
