//! Property tests for the tensor substrate.

use dpipe_tensor::{mse_grad_scaled, Layer, Linear, Matrix, Mlp};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

proptest! {
    // Pinned case count for a fast, deterministic CI run.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let m = Matrix::randn(r, c, seed);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// vstack inverts split_rows for any chunk count.
    #[test]
    fn split_vstack_roundtrip(r in 1usize..12, c in small_dim(), n in 1usize..6, seed in 0u64..1000) {
        let n = n.min(r);
        let m = Matrix::randn(r, c, seed);
        let parts = m.split_rows(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(Matrix::vstack(&parts), m);
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(n in 1usize..5, seed in 0u64..1000) {
        let a = Matrix::randn(n, n, seed);
        let b = Matrix::randn(n, n, seed ^ 0xffff);
        let x = Matrix::randn(n, n, seed.wrapping_add(7));
        let lhs = (&a + &b).matmul(&x);
        let rhs = &a.matmul(&x) + &b.matmul(&x);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Micro-batched gradient accumulation equals the full-batch gradient
    /// regardless of the split.
    #[test]
    fn gradient_accumulation_linear(
        rows in 2usize..10,
        splits in 1usize..5,
        seed in 0u64..500,
    ) {
        let splits = splits.min(rows);
        let dim = 3;
        let x = Matrix::randn(rows, dim, seed);
        let t = Matrix::zeros(rows, dim);
        let elems = rows * dim;

        let mut full = Linear::new(dim, dim, 42);
        let y = full.forward(&x);
        full.backward(&mse_grad_scaled(&y, &t, elems));
        let g_full = full.grads();

        let mut acc = Linear::new(dim, dim, 42);
        for (xm, tm) in x.split_rows(splits).iter().zip(t.split_rows(splits)) {
            let y = acc.forward(xm);
            acc.backward(&mse_grad_scaled(&y, &tm, elems));
        }
        let g_acc = acc.grads();
        let diff = g_full
            .iter()
            .zip(&g_acc)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(diff < 1e-4, "diff {diff}");
    }

    /// Splitting an MLP into arbitrary contiguous stages preserves the
    /// forward function.
    #[test]
    fn mlp_split_preserves_function(blocks in 1usize..5, cut in 0usize..10, seed in 0u64..200) {
        let dim = 4;
        let net = Mlp::uniform(blocks, dim, seed);
        let x = Matrix::randn(3, dim, seed ^ 99);
        let full = net.forward_inference(&x);
        let raw = blocks * 2;
        let cut = (cut % raw.max(1)).max(1).min(raw - 1).max(1);
        if cut >= raw { return Ok(()); }
        let stages = net.split(&[cut, raw - cut]);
        let mut h = x;
        for s in &stages {
            h = s.forward_inference(&h);
        }
        prop_assert!(h.max_abs_diff(&full) < 1e-5);
    }
}
