//! Chaos tests: hostile and unlucky clients against a real listener.
//!
//! Each test starts its own [`HttpServer`] on an ephemeral port and attacks
//! it over actual TCP — trickled request heads, half-closed sockets,
//! mid-body disconnects, and an armed panic failpoint inside
//! `POST /simulate`. The invariant under test is always the same: one bad
//! connection (or one panicking request) costs at most one worker for one
//! bounded timeout, and the server keeps answering everyone else.

use dpipe_http::{HttpClient, HttpServer, Limits, ServerConfig};
use dpipe_serve::json::{parse, JsonValue};
use dpipe_serve::ServiceConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn sd_spec_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/sd_8gpu_b256.json"
    ))
    .expect("committed sd spec")
}

fn straggler_faults_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/faults_straggler.json"
    ))
    .expect("committed straggler fault spec")
}

fn simulate_body() -> String {
    format!(
        "{{\"spec\":{},\"faults\":{}}}",
        sd_spec_text(),
        straggler_faults_text()
    )
}

/// A server with a short read timeout and a deliberately small worker
/// pool, so a wedged worker would be observable fast.
fn small_server(
    conn_workers: usize,
    read_timeout: Duration,
    failpoint: Option<&str>,
) -> HttpServer {
    HttpServer::start(ServerConfig {
        conn_workers,
        limits: Limits {
            read_timeout,
            ..Limits::default()
        },
        failpoint: failpoint.map(str::to_owned),
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

/// Reads whatever the server sends until it closes the connection.
fn read_to_close(stream: &mut TcpStream) -> String {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn slow_loris_trickle_gets_408_and_frees_the_worker() {
    let server = small_server(1, Duration::from_millis(300), None);
    let addr = server.local_addr();
    // Trickle a request head one byte at a time, slower than the server's
    // patience. The worker must cut the connection with a well-formed 408
    // after the read timeout, not hang on the half-request forever.
    let mut loris = TcpStream::connect(addr).unwrap();
    for byte in b"GET /healthz HT" {
        loris.write_all(&[*byte]).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    let response = read_to_close(&mut loris);
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "slow-loris must get 408, got: {response:?}"
    );
    // The single worker is free again: a well-behaved client is served.
    let mut client = HttpClient::connect(addr).unwrap();
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
}

#[test]
fn half_closed_and_mid_body_disconnects_never_wedge_workers() {
    let server = small_server(2, Duration::from_millis(500), None);
    let addr = server.local_addr();
    // One connection per worker, each abandoned in a different nasty way:
    // a half-close (FIN with the request unfinished) and a full disconnect
    // mid-body with content-length promising more.
    let half_closed = TcpStream::connect(addr).unwrap();
    (&half_closed)
        .write_all(b"POST /plan HTTP/1.1\r\ncontent-length: 999\r\n\r\n{\"par")
        .unwrap();
    half_closed.shutdown(std::net::Shutdown::Write).unwrap();

    let mid_body = TcpStream::connect(addr).unwrap();
    (&mid_body)
        .write_all(b"POST /simulate HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{\"spec\":")
        .unwrap();
    drop(mid_body);

    // Both workers must come back. A keep-alive connection pins a worker
    // for its whole lifetime, so two clients answered while both are held
    // open proves *both* workers were freed, not just one.
    std::thread::sleep(Duration::from_millis(700));
    let mut first = HttpClient::connect(addr).unwrap();
    let health = first.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let mut second = HttpClient::connect(addr).unwrap();
    let health = second.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    drop(first);
    // The half-closed socket got either a 408 or a silent close — never a
    // wedged worker. (Which one depends on whether the FIN or the timeout
    // is observed first; both are clean outcomes.)
    drop(half_closed);
}

#[test]
fn simulate_failpoint_panic_is_a_contained_500_and_spares_the_cache() {
    let server = small_server(2, Duration::from_secs(5), Some("simulate-panic"));
    let addr = server.local_addr();
    let body = simulate_body();
    let mut client = HttpClient::connect(addr).unwrap();
    // Two panicking requests in a row: each is its own clean 500, the
    // connection survives (keep-alive), and no worker dies.
    for _ in 0..2 {
        let response = client
            .request("POST", "/simulate", body.as_bytes())
            .unwrap();
        assert_eq!(response.status, 500, "{}", response.text());
        assert!(
            response.text().contains("panicked"),
            "500 body should say the simulation panicked: {}",
            response.text()
        );
    }
    // The panic happened before any planning, so the cache saw nothing:
    // a follow-up /plan on the same spec is a clean cold-then-warm pair.
    let spec = sd_spec_text();
    let cold = client.request("POST", "/plan", spec.as_bytes()).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    let warm = client.request("POST", "/plan", spec.as_bytes()).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.text());
    let doc = parse(&warm.text()).expect("plan response is JSON");
    assert_eq!(
        doc.get("timing")
            .and_then(|t| t.get("cache"))
            .and_then(JsonValue::as_str),
        Some("hit"),
        "second plan must be a cache hit: {}",
        warm.text()
    );
    // And the panics were counted as server errors, not shed or 4xx.
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    let mdoc = parse(&metrics.text()).expect("metrics is JSON");
    assert_eq!(
        mdoc.get("responses_500").and_then(JsonValue::as_u64),
        Some(2),
        "{}",
        metrics.text()
    );
}

/// Lock-order witness under fire: concurrent plan/simulate/metrics
/// load plus a server torn down mid-flight, with every production lock
/// acquisition registered with [`dpipe_sync::witness`] (debug builds).
/// Two invariants:
///
/// - zero lock-order inversions observed across the whole suite (the
///   witness panics at the proving acquisition, so a violation also
///   fails whichever request tripped it);
/// - the observed graph is a subgraph of the one `dpipe_analyze`
///   derives statically — every runtime lock and ordering was already
///   known to the `lock-order` pass. An observed node or edge missing
///   from the static graph means the static analysis has a blind spot.
#[test]
fn concurrent_load_and_shutdown_observe_no_lock_inversions() {
    // Phase 1: strict concurrent load, every response checked.
    let server = small_server(4, Duration::from_secs(5), None);
    let addr = server.local_addr();
    let plan_body = sd_spec_text();
    let sim_body = simulate_body();
    let mut clients = Vec::new();
    for t in 0..4usize {
        let plan = plan_body.clone();
        let sim = sim_body.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            for i in 0..6usize {
                let (method, path, body) = match (t + i) % 4 {
                    0 => ("POST", "/plan", plan.as_bytes()),
                    1 => ("POST", "/simulate", sim.as_bytes()),
                    2 => ("GET", "/metrics", &b""[..]),
                    _ => ("GET", "/healthz", &b""[..]),
                };
                let response = client.request(method, path, body).unwrap();
                assert_eq!(response.status, 200, "{method} {path}: {}", response.text());
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    drop(server);

    // Phase 2: shutdown races live traffic. Requests may fail (the
    // server is going away) but every lock taken on the way down is
    // still witnessed.
    let server = small_server(2, Duration::from_secs(5), None);
    let addr = server.local_addr();
    let mut stragglers = Vec::new();
    for _ in 0..2 {
        let plan = plan_body.clone();
        stragglers.push(std::thread::spawn(move || {
            while let Ok(mut client) = HttpClient::connect(addr) {
                if client.request("POST", "/plan", plan.as_bytes()).is_err() {
                    break;
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(100));
    drop(server);
    for s in stragglers {
        s.join().unwrap();
    }

    assert_eq!(
        dpipe_sync::witness::inversions(),
        0,
        "lock-order inversions observed:\n{}",
        dpipe_sync::witness::dump_dot()
    );
    let ws_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let static_graph = dpipe_analyze::lock_graph(&ws_root).expect("static lock graph");
    for node in dpipe_sync::witness::observed_nodes() {
        assert!(
            static_graph.nodes.iter().any(|n| n == node),
            "observed lock `{node}` is unknown to the static lock-order pass"
        );
    }
    for (from, to) in dpipe_sync::witness::observed_edges() {
        assert!(
            static_graph
                .edges
                .iter()
                .any(|e| e.from == from && e.to == to),
            "observed order `{from}` -> `{to}` is missing from the static graph:\n{}",
            static_graph.to_text()
        );
    }
    // In debug builds the witness is armed and must have actually seen
    // the serving stack's locks — the subgraph check above is vacuous
    // otherwise.
    if cfg!(debug_assertions) {
        let nodes = dpipe_sync::witness::observed_nodes();
        for expected in ["http::Bounded::state", "serve::Shard::map"] {
            assert!(
                nodes.contains(&expected),
                "witness never saw `{expected}`; observed: {nodes:?}"
            );
        }
    }
}

#[test]
fn bad_fault_spec_is_422_not_500() {
    let server = small_server(2, Duration::from_secs(5), None);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    // Device 999 does not exist on an 8-GPU cluster: a deterministic
    // verdict about the request, so 422 — a 500 would misfile client error
    // as server fault (and poison alerting).
    let body = format!(
        "{{\"spec\":{},\"faults\":{{\"schema_version\":1,\"seed\":1,\
         \"stragglers\":[{{\"device\":999,\"scale\":2.0}}],\"links\":[],\"node_drops\":[]}}}}",
        sd_spec_text()
    );
    let response = client
        .request("POST", "/simulate", body.as_bytes())
        .unwrap();
    assert_eq!(response.status, 422, "{}", response.text());
    assert!(response.text().contains("999"), "{}", response.text());
    // Malformed fault-spec *shape* is 400 (the request never parsed).
    let malformed = format!("{{\"spec\":{},\"faults\":{{\"nope\":1}}}}", sd_spec_text());
    let response = client
        .request("POST", "/simulate", malformed.as_bytes())
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.text());
}
