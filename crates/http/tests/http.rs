//! Integration tests against a real listener on an ephemeral port: every
//! test starts its own [`HttpServer`] on `127.0.0.1:0` and talks to it over
//! actual TCP with the minimal [`HttpClient`].

use diffusionpipe_core::Planner;
use dpipe_http::{HttpClient, HttpServer, Limits, ServerConfig};
use dpipe_serve::json::{parse, plan_response_doc, JsonValue};
use dpipe_serve::{PlanRequest, ServiceConfig};
use dpipe_spec::PlanSpec;
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServerConfig) -> HttpServer {
    HttpServer::start(config).expect("bind 127.0.0.1:0")
}

fn default_server() -> HttpServer {
    start(ServerConfig::default())
}

/// The smallest committed spec, used wherever the test needs *a* valid
/// spec rather than all of them.
fn sd_spec_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/sd_8gpu_b256.json"
    ))
    .expect("committed sd spec")
}

/// The committed example PlanSpec documents (sweep_mixed.json is a
/// SweepSpec and exercised via `POST /sweep`; faults_*.json are FaultSpec
/// documents for `POST /simulate`).
fn committed_plan_specs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let mut specs: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("examples/specs exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .filter(|p| {
            !p.file_name().is_some_and(|n| {
                let name = n.to_string_lossy();
                name.starts_with("sweep") || name.starts_with("faults")
            })
        })
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).expect("readable spec"),
            )
        })
        .collect();
    specs.sort();
    assert!(
        specs.len() >= 4,
        "expected the committed example specs, found {specs:?}"
    );
    specs
}

#[test]
fn healthz_answers() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let response = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.text(), "{\"status\":\"ok\"}\n");
}

/// Removes the server-only trailing `timing` field from a `POST /plan`
/// response body, leaving the exact CLI document.
fn strip_timing(body: &str) -> String {
    match body.rfind(",\"timing\":") {
        Some(idx) => format!("{}}}\n", &body[..idx]),
        None => body.to_owned(),
    }
}

#[test]
fn plan_responses_are_byte_identical_to_the_cli_document() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    for (name, text) in committed_plan_specs() {
        let spec = PlanSpec::from_json(&text).expect("committed spec parses");
        let request = PlanRequest::from_spec(spec.clone()).expect("spec resolves");
        let plan = Planner::plan_spec(&spec).expect("committed spec plans");
        // `dpipe plan --json --spec` prints this document plus a newline;
        // the HTTP response appends one server-only `timing` field.
        let expected = format!("{}\n", plan_response_doc(&spec, &request, &plan));
        let response = client.request("POST", "/plan", text.as_bytes()).unwrap();
        assert_eq!(response.status, 200, "{name}: {}", response.text());
        let body = response.text();
        assert_eq!(
            strip_timing(&body),
            expected,
            "{name} body differs from CLI"
        );

        // The timing breakdown is present and self-consistent.
        let doc = parse(&body).expect("response is JSON");
        let timing = doc.get("timing").expect("timing field");
        assert_eq!(
            timing.get("cache").and_then(JsonValue::as_str),
            Some("miss"),
            "{name}: first plan of a spec must be a cache miss"
        );
        assert!(timing
            .get("plan_ms")
            .and_then(JsonValue::as_f64)
            .is_some_and(|ms| ms >= 0.0));
        assert!(timing
            .get("queue_ms")
            .and_then(JsonValue::as_f64)
            .is_some_and(|ms| ms >= 0.0));
    }
}

#[test]
fn sweep_endpoint_runs_the_committed_sweep_spec() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/sweep_mixed.json"
    ))
    .expect("committed sweep spec");
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let response = client.request("POST", "/sweep", text.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = parse(&response.text()).expect("sweep response is JSON");
    let ranking = doc.get("ranking").and_then(JsonValue::as_array);
    assert!(
        ranking.is_some_and(|r| !r.is_empty()),
        "no ranked points in {}",
        response.text()
    );
}

#[test]
fn malformed_json_gets_400_with_position() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let response = client
        .request("POST", "/plan", b"{\"version\": 1,\n  nope}")
        .unwrap();
    assert_eq!(response.status, 400);
    let text = response.text();
    assert!(
        text.contains("line 2"),
        "error should carry the position: {text}"
    );
    // The connection survives a client error (keep-alive).
    let again = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(again.status, 200);
}

#[test]
fn unknown_model_is_a_client_error() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let body = sd_spec_text().replace("\"sd\"", "\"no-such-model\"");
    let response = client.request("POST", "/plan", body.as_bytes()).unwrap();
    // Spec-resolution errors are the client's fault: 400, not a 5xx.
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(
        response.text().contains("no-such-model"),
        "{}",
        response.text()
    );
}

#[test]
fn oversized_body_gets_413_before_planning() {
    let server = start(ServerConfig {
        limits: Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let big = vec![b'x'; 4096];
    let response = client.request("POST", "/plan", &big).unwrap();
    assert_eq!(response.status, 413);
    assert!(response.text().contains("1024"), "{}", response.text());
}

#[test]
fn full_plan_backlog_sheds_503_then_recovers() {
    let server = start(ServerConfig {
        max_in_flight_plans: 1,
        service: ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    // Pre-load the single planning worker with a deep backlog of distinct
    // cold requests, so the queue depth stays above the in-flight cap for
    // far longer than one local HTTP round trip.
    let (tx, rx) = crossbeam::channel::unbounded();
    let backlog = 48;
    for i in 0..backlog {
        let request = PlanRequest::new(
            dpipe_model::zoo::stable_diffusion_v2_1(),
            dpipe_cluster::ClusterSpec::single_node(8),
            64 + 8 * i as u32,
        );
        server
            .service()
            .submit(i, request, 1, tx.clone())
            .expect("worker pool alive");
    }
    let spec_text = sd_spec_text();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let shed = client
        .request("POST", "/plan", spec_text.as_bytes())
        .unwrap();
    assert_eq!(shed.status, 503, "{}", shed.text());
    assert!(shed.text().contains("retry"), "{}", shed.text());
    // Drain the backlog; the same request must now succeed.
    for _ in 0..backlog {
        rx.recv().expect("backlog drains");
    }
    let ok = client
        .request("POST", "/plan", spec_text.as_bytes())
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
}

#[test]
fn full_connection_queue_sheds_503_without_dropping() {
    let server = start(ServerConfig {
        conn_workers: 1,
        queue_capacity: 1,
        limits: Limits {
            read_timeout: Duration::from_secs(5),
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    // Occupy the single worker: a connection with a half-sent request head
    // parks it in `read_request` until the read timeout.
    let parked = std::net::TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut (&parked), b"GET /healthz HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Fill the one queue slot with a second (idle) connection.
    let _queued = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // The third connection must get a well-formed 503, not a hang or a
    // silent close.
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(response.status, 503);
    assert!(
        response.text().contains("queue full"),
        "{}",
        response.text()
    );
}

#[test]
fn concurrent_identical_specs_plan_once() {
    let server = Arc::new(default_server());
    let spec_text = Arc::new(sd_spec_text());
    let clients: u64 = 8;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let spec_text = Arc::clone(&spec_text);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(server.local_addr()).unwrap();
                client
                    .request("POST", "/plan", spec_text.as_bytes())
                    .unwrap()
            })
        })
        .collect();
    // The `timing` field legitimately differs per request (latency, cache
    // status); everything else must be byte-identical across all clients.
    let mut bodies: Vec<String> = handles
        .into_iter()
        .map(|h| {
            let response = h.join().expect("client thread");
            assert_eq!(response.status, 200, "{}", response.text());
            strip_timing(&response.text())
        })
        .collect();
    bodies.dedup();
    assert_eq!(
        bodies.len(),
        1,
        "hits must be byte-identical to the cold plan"
    );

    // The cache planned the spec exactly once: /metrics shows one miss and
    // clients-1 single-flight/warm hits.
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = parse(&metrics.text()).expect("metrics is JSON");
    let cache = doc.get("cache").expect("cache section");
    assert_eq!(cache.get("misses").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        cache.get("hits").and_then(JsonValue::as_u64),
        Some(clients - 1)
    );
    assert_eq!(
        doc.get("plans_total").and_then(JsonValue::as_u64),
        Some(clients)
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut server = default_server();
    let addr = server.local_addr();
    let spec_text = sd_spec_text();
    let in_flight = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client
            .request("POST", "/plan", spec_text.as_bytes())
            .unwrap()
    });
    // Let the request reach a worker, then drain while it is in flight.
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let response = in_flight.join().expect("client thread");
    assert_eq!(
        response.status,
        200,
        "in-flight request must be answered, not dropped: {}",
        response.text()
    );
    // After the drain the listener is gone.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
            || HttpClient::connect(addr)
                .and_then(|mut c| c.request("GET", "/healthz", b""))
                .is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn shutdown_endpoint_drains_the_foreground_loop() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let response = client.request("POST", "/shutdown", b"").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.text(), "{\"status\":\"draining\"}\n");
    assert!(server.shutdown_requested());
    // `run_until_shutdown` consumes the server and joins everything; it
    // must return promptly once the flag is set.
    let start = std::time::Instant::now();
    server.run_until_shutdown();
    assert!(start.elapsed() < Duration::from_secs(5));
}

#[test]
fn metrics_prometheus_format_renders_text_exposition() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    // One plan so the latency histogram has an observation.
    let planned = client
        .request("POST", "/plan", sd_spec_text().as_bytes())
        .unwrap();
    assert_eq!(planned.status, 200, "{}", planned.text());
    let response = client
        .request("GET", "/metrics?format=prometheus", b"")
        .unwrap();
    assert_eq!(response.status, 200);
    let text = response.text();
    assert!(text.ends_with('\n'));
    for needle in [
        "# TYPE dpipe_requests_total counter",
        "# TYPE dpipe_plan_latency_seconds histogram",
        "dpipe_plans_total 1",
        "dpipe_plan_latency_seconds_bucket{le=\"+Inf\"} 1",
        "dpipe_plan_latency_seconds_count 1",
    ] {
        assert!(
            needle.lines().all(|l| text.contains(l)),
            "missing {needle} in:\n{text}"
        );
    }
    // The JSON document is still the default.
    let json = client.request("GET", "/metrics", b"").unwrap();
    assert!(parse(&json.text()).is_ok(), "{}", json.text());
}

#[test]
fn trace_dir_writes_chrome_trace_files_per_request() {
    let dir = std::env::temp_dir().join(format!("dpipe-http-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = start(ServerConfig {
        trace_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let planned = client
        .request("POST", "/plan", sd_spec_text().as_bytes())
        .unwrap();
    assert_eq!(planned.status, 200, "{}", planned.text());
    // The trace file is written by the connection worker after the /plan
    // response but before it reads the next keep-alive request, so a second
    // round trip on the same connection is a deterministic barrier.
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);

    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        !files.is_empty(),
        "no trace file written to {}",
        dir.display()
    );
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let doc = parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    // The whole request lifecycle is on the timeline: HTTP accept through
    // the planner's partition DP.
    for expected in [
        "request",
        "queue_wait",
        "read_request",
        "handle",
        "parse_spec",
        "plan_service",
        "plan_execute",
        "plan",
        "partition",
        "write_response",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected} missing from {names:?}"
        );
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_sampling_skips_unselected_requests() {
    let dir = std::env::temp_dir().join(format!("dpipe-http-sample-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = start(ServerConfig {
        trace_dir: Some(dir.clone()),
        trace_sample: 1000,
        ..ServerConfig::default()
    });
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        let response = client.request("GET", "/healthz", b"").unwrap();
        assert_eq!(response.status, 200);
    }
    // Barrier as above: one more round trip so prior records completed.
    let _ = client.request("GET", "/healthz", b"").unwrap();
    // Request 0 is sampled (0 % 1000 == 0); the rest are skipped.
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(files, 1, "sample=1000 must keep only the first request");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_route_and_method_are_clean_errors() {
    let server = default_server();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let missing = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);
    let bad_method = client.request("DELETE", "/plan", b"").unwrap();
    assert_eq!(bad_method.status, 405);
}
