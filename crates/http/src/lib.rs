//! The networked planning frontend: `dpipe serve --listen`.
//!
//! DiffusionPipe's planner answers one question — how should this diffusion
//! model train on this cluster — and a training platform asks it constantly:
//! from CI, from sweep dashboards, from admission controllers deciding where
//! the next job fits. This crate puts the planning service on the wire as a
//! small, dependency-free HTTP/1.1 server over `std::net`, in the same
//! offline-shim discipline as the rest of the workspace (the build
//! environment has no crates.io access, so the wire layer is hand-rolled).
//!
//! Endpoints:
//!
//! * `POST /plan` — body is a [`PlanSpec`] JSON document; the 200 response
//!   is **byte-identical** to `dpipe plan --json --spec` for the same spec
//!   (both are rendered by `dpipe_serve::json::plan_response_doc`).
//! * `POST /sweep` — body is a `SweepSpec`; response matches
//!   `dpipe sweep --json --spec`.
//! * `GET /metrics` — request/response counters, shed and rate-limit
//!   totals, plans/s, cache hit rate, queue depth, latency histograms.
//! * `GET /healthz` — liveness.
//! * `POST /shutdown` — graceful drain (the CLI foreground loop exits once
//!   every in-flight request has been answered).
//!
//! The server is built to degrade loudly, not collapse: a bounded accept
//! queue and a plan-backlog cap shed overload as well-formed 503s, body and
//! header sizes are capped (413/431), socket reads time out (slowloris),
//! and per-client token buckets answer 429 past the configured rate. See
//! [`server`] for the full inventory.
//!
//! [`PlanSpec`]: dpipe_spec::PlanSpec
//!
//! # Example
//!
//! ```
//! use dpipe_http::{HttpClient, HttpServer, ServerConfig};
//!
//! let server = HttpServer::start(ServerConfig::default()).unwrap();
//! let mut client = HttpClient::connect(server.local_addr()).unwrap();
//! let health = client.request("GET", "/healthz", b"").unwrap();
//! assert_eq!(health.status, 200);
//! assert_eq!(health.text(), "{\"status\":\"ok\"}\n");
//! ```

pub mod client;
pub mod http1;
pub mod metrics;
pub mod queue;
pub mod ratelimit;
pub mod server;

pub use client::{HttpClient, HttpResponse};
pub use http1::{HttpError, Limits, Request};
pub use metrics::{LatencyHistogram, Metrics};
pub use queue::{Bounded, PushError};
pub use ratelimit::RateLimiter;
pub use server::{HttpServer, ServerConfig};
