//! Per-client token-bucket rate limiting keyed by peer IP address.
//!
//! Each client IP gets a bucket of `burst` tokens refilled at `rate_per_s`;
//! a request costs one token, and an empty bucket means 429. The table
//! itself is bounded: when it grows past its cap, buckets idle long enough
//! to have fully refilled are dropped (they are indistinguishable from
//! fresh ones), so an address-spoofing client cannot leak memory here.

use dpipe_sync::LockRecoverTagged;

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A token-bucket rate limiter over client IPs. `rate_per_s <= 0` disables
/// limiting entirely (every request is allowed).
pub struct RateLimiter {
    rate_per_s: f64,
    burst: f64,
    /// Buckets table cap; see module docs.
    max_clients: usize,
    state: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Lock-order witness tag for [`RateLimiter::state`] (static key form).
const LIMITER_STATE_TAG: &str = "http::RateLimiter::state";

impl RateLimiter {
    /// A limiter allowing `rate_per_s` sustained requests per second per
    /// client with bursts of `burst` (clamped to at least 1 when enabled).
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        RateLimiter {
            rate_per_s,
            burst: burst.max(1.0),
            max_clients: 4096,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// True when rate limiting is disabled.
    pub fn disabled(&self) -> bool {
        self.rate_per_s <= 0.0
    }

    /// Takes one token for `ip`; `false` means the client is over its rate.
    pub fn allow(&self, ip: IpAddr) -> bool {
        if self.disabled() {
            return true;
        }
        let now = Instant::now();
        let mut state = self.state.lock_recover_tagged(LIMITER_STATE_TAG);
        if state.len() >= self.max_clients && !state.contains_key(&ip) {
            // Drop buckets that have refilled completely: forgetting them
            // is observationally identical to keeping them.
            let (rate, burst) = (self.rate_per_s, self.burst);
            state.retain(|_, b| b.tokens + now.duration_since(b.last).as_secs_f64() * rate < burst);
        }
        let bucket = state.entry(ip).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_s).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let rl = RateLimiter::new(0.0, 8.0);
        assert!(rl.disabled());
        for _ in 0..1000 {
            assert!(rl.allow(ip(1)));
        }
    }

    #[test]
    fn burst_then_reject_per_client() {
        // 1 req/s, burst 3: three immediate requests pass, the fourth is
        // rejected; a different client is unaffected.
        let rl = RateLimiter::new(1.0, 3.0);
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(!rl.allow(ip(1)));
        assert!(rl.allow(ip(2)));
    }

    #[test]
    fn tokens_refill_over_time() {
        let rl = RateLimiter::new(1000.0, 1.0);
        assert!(rl.allow(ip(1)));
        assert!(!rl.allow(ip(1)));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(rl.allow(ip(1)), "bucket should refill at 1000/s");
    }
}
