//! A bounded MPMC queue of accepted connections — the admission-control
//! buffer between the acceptor and the connection workers. `try_push`
//! never blocks: a full queue hands the item straight back so the acceptor
//! can answer 503 instead of letting connections pile up invisibly.

use dpipe_sync::{LockRecoverTagged, WaitRecoverTagged};

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Lock-order witness tag for [`Bounded::state`] (static key form).
const BOUNDED_STATE_TAG: &str = "http::Bounded::state";

/// A bounded blocking-pop / non-blocking-push queue.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Why [`Bounded::try_push`] handed an item back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (shed load).
    Full,
    /// The queue is closed (shutting down).
    Closed,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues without blocking, or returns the item with the reason.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock_recover_tagged(BOUNDED_STATE_TAG);
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (closing never discards queued items).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock_recover_tagged(BOUNDED_STATE_TAG);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait_recover_tagged(state);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock_recover_tagged(BOUNDED_STATE_TAG)
            .items
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, poppers drain then get `None`.
    pub fn close(&self) {
        self.state.lock_recover_tagged(BOUNDED_STATE_TAG).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_full() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err((8, PushError::Closed)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }
}
