//! A hand-rolled HTTP/1.1 wire layer over `std::net::TcpStream`.
//!
//! The build environment has no crates.io access, so this is the same
//! offline-shim discipline as the rest of the workspace: exactly the subset
//! the planning frontend needs, implemented on std. One [`HttpConn`] wraps
//! one TCP connection and supports keep-alive request/response cycles with
//! hard limits on header size, body size and read time — a
//! malicious or broken client can cost the server at most one bounded
//! buffer and one timeout, never an unbounded allocation or a stuck thread.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length` above this is
    /// rejected up front with 413, before any body byte is read).
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 2 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Why reading a request off the wire failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The socket read timed out (slowloris guard).
    Timeout,
    /// A connection-level I/O failure.
    Io(std::io::Error),
    /// The bytes are not a request this server understands (maps to 400).
    BadRequest(String),
    /// Request line + headers exceeded [`Limits::max_head_bytes`] (431).
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`] (413).
    PayloadTooLarge(usize),
    /// A `Transfer-Encoding` body the server cannot frame (411; chunked
    /// transfer encoding is deliberately unsupported — send a
    /// `Content-Length` instead).
    LengthRequired,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed"),
            HttpError::Timeout => f.write_str("read timed out"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::HeadTooLarge => f.write_str("request head too large"),
            HttpError::PayloadTooLarge(n) => write!(f, "request body of {n} bytes too large"),
            HttpError::LengthRequired => {
                f.write_str("transfer-encoding unsupported; send content-length")
            }
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// The request target, e.g. `/plan` (query strings are kept verbatim).
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

/// Well-known status reasons for the codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One server-side connection: a stream plus the carry-over buffer that
/// makes keep-alive pipelining safe (bytes of request N+1 read while
/// hunting for the end of request N are not lost).
pub struct HttpConn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        HttpConn {
            stream,
            carry: Vec::new(),
        }
    }

    /// The underlying stream (e.g. for peer-address lookup).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads and parses one request, enforcing `limits`.
    ///
    /// # Errors
    ///
    /// See [`HttpError`]; `Closed` on clean EOF between requests is the
    /// normal end of a keep-alive session.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, HttpError> {
        self.stream
            .set_read_timeout(Some(limits.read_timeout))
            .map_err(HttpError::Io)?;
        let head_end = self.fill_until_head_end(limits)?;
        let head_bytes = self.carry[..head_end].to_vec();
        let head = std::str::from_utf8(&head_bytes)
            .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".to_owned()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => {
                (m.to_ascii_uppercase(), p.to_owned(), v)
            }
            _ => {
                return Err(HttpError::BadRequest(format!(
                    "malformed request line `{request_line}`"
                )))
            }
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::BadRequest(format!(
                "unsupported version `{version}`"
            )));
        }
        let mut content_length: Option<usize> = None;
        let mut keep_alive = version == "HTTP/1.1";
        let mut expect_continue = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.parse().map_err(|_| {
                        HttpError::BadRequest(format!("bad content-length `{value}`"))
                    })?);
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::LengthRequired);
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            }
        }
        // Consume the head (and its trailing CRLFCRLF) from the carry.
        self.carry.drain(..head_end + 4);
        // RFC 7230 §3.3.3: no Content-Length and no Transfer-Encoding means
        // an empty body — `curl -X POST` with no data is a legal request.
        let body = match content_length {
            None | Some(0) => Vec::new(),
            Some(n) if n > limits.max_body_bytes => return Err(HttpError::PayloadTooLarge(n)),
            Some(n) => {
                // curl and friends wait for the interim 100 before sending
                // larger bodies; answering it costs one small write.
                if expect_continue {
                    self.stream
                        .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                        .map_err(HttpError::Io)?;
                }
                self.fill_body(n)?
            }
        };
        Ok(Request {
            method,
            path,
            body,
            keep_alive,
        })
    }

    /// Reads until the carry buffer contains a full head; returns the
    /// offset of the `\r\n\r\n` terminator.
    fn fill_until_head_end(&mut self, limits: &Limits) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = find_head_end(&self.carry) {
                return Ok(pos);
            }
            if self.carry.len() > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.carry.is_empty() {
                        Err(HttpError::Closed)
                    } else {
                        Err(HttpError::BadRequest("truncated request head".to_owned()))
                    };
                }
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// Reads exactly `n` body bytes (carry first, then the socket).
    fn fill_body(&mut self, n: usize) -> Result<Vec<u8>, HttpError> {
        let mut body = Vec::with_capacity(n.min(64 * 1024));
        let take = n.min(self.carry.len());
        body.extend_from_slice(&self.carry[..take]);
        self.carry.drain(..take);
        let mut chunk = [0u8; 16 * 1024];
        while body.len() < n {
            let want = (n - body.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(HttpError::BadRequest("truncated request body".to_owned()));
                }
                Ok(got) => body.extend_from_slice(&chunk[..got]),
                Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        Ok(body)
    }

    /// Writes one response. `keep_alive` controls the `Connection` header;
    /// the status reason comes from [`reason`].
    pub fn write_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            status,
            reason(status),
            content_type,
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        // One write for head + body: two separate segments would trip the
        // Nagle/delayed-ACK interaction and cost ~40 ms per response.
        let mut response = Vec::with_capacity(head.len() + body.len());
        response.extend_from_slice(head.as_bytes());
        response.extend_from_slice(body);
        self.stream.write_all(&response)?;
        self.stream.flush()
    }
}

/// Position of the first `\r\n\r\n` in `buf`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes a one-shot response on a raw stream (used by the acceptor to shed
/// load without occupying a worker). Best-effort: errors are ignored, the
/// connection is closing anyway.
pub fn write_oneshot(stream: &mut TcpStream, status: u16, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len(),
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 408, 411, 413, 422, 429, 431, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }
}
