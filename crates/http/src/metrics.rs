//! Server-side observability: request/response counters, admission
//! (shed/rate-limit) counters and log-bucketed latency histograms, all
//! lock-free atomics so the hot path never serialises on a metrics mutex.
//! `GET /metrics` renders the whole registry as one JSON document.

use dpipe_serve::CacheStats;
use dpipe_spec::json::JsonValue;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Upper bounds (microseconds) of the latency histogram buckets; the last
/// bucket is open-ended. Log-ish spacing covers 50 µs cache hits through
/// 30 s pathological plans in 19 buckets.
const BOUNDS_US: [u64; 19] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 30_000_000,
];

/// A fixed-bucket latency histogram with atomic counters.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..=BOUNDS_US.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (microseconds) of the bucket containing the `q`
    /// quantile (0.0–1.0), or 0 with no observations. The answer for the
    /// open-ended last bucket is the observed maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US
                    .get(idx)
                    .copied()
                    .unwrap_or_else(|| self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// The histogram as a JSON object (`count`, `mean_ms`, `p50_ms`,
    /// `p90_ms`, `p99_ms`, `max_ms`).
    pub fn to_json(&self) -> JsonValue {
        let count = self.count();
        let mean_ms = if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0
        };
        let ms = |us: u64| us as f64 / 1_000.0;
        JsonValue::Object(vec![
            ("count".to_owned(), JsonValue::UInt(count)),
            ("mean_ms".to_owned(), JsonValue::Num(mean_ms)),
            (
                "p50_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.50))),
            ),
            (
                "p90_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.90))),
            ),
            (
                "p99_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.99))),
            ),
            (
                "max_ms".to_owned(),
                JsonValue::Num(ms(self.max_us.load(Ordering::Relaxed))),
            ),
        ])
    }
}

/// The server's counter registry.
pub struct Metrics {
    started: Instant,
    /// Requests fully parsed off the wire.
    pub requests_total: AtomicU64,
    /// Responses by status code class we actually emit.
    pub ok_200: AtomicU64,
    /// 4xx total (400/404/405/408/411/413/422/429/431).
    pub client_errors: AtomicU64,
    /// 500s (internal/service failures).
    pub server_errors: AtomicU64,
    /// 503s from admission control — load shed, never a dropped connection.
    pub shed_total: AtomicU64,
    /// 429s from the per-client token bucket.
    pub rate_limited_total: AtomicU64,
    /// Successful `POST /plan` responses.
    pub plans_total: AtomicU64,
    /// Successful `POST /sweep` responses.
    pub sweeps_total: AtomicU64,
    /// Requests currently being handled (gauge).
    pub in_flight: AtomicUsize,
    /// Connections currently open (gauge).
    pub open_connections: AtomicUsize,
    /// End-to-end `POST /plan` service time.
    pub plan_latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A zeroed registry started now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            ok_200: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            rate_limited_total: AtomicU64::new(0),
            plans_total: AtomicU64::new(0),
            sweeps_total: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            plan_latency: LatencyHistogram::new(),
        }
    }

    /// Seconds since the registry was created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Tallies a response's status code into the right counter.
    pub fn count_status(&self, status: u16) {
        match status {
            200 => {
                self.ok_200.fetch_add(1, Ordering::Relaxed);
            }
            503 => {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
            }
            429 => {
                self.rate_limited_total.fetch_add(1, Ordering::Relaxed);
                self.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            500 => {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.client_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The whole registry as the `GET /metrics` JSON document. Cache and
    /// queue figures come from the [`PlanService`] the server fronts.
    ///
    /// [`PlanService`]: dpipe_serve::PlanService
    pub fn to_json(&self, cache: &CacheStats, queue_depth: usize) -> JsonValue {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let uptime = self.uptime_s();
        let plans = load(&self.plans_total);
        JsonValue::Object(vec![
            ("uptime_s".to_owned(), JsonValue::Num(uptime)),
            (
                "requests_total".to_owned(),
                JsonValue::UInt(load(&self.requests_total)),
            ),
            (
                "responses_200".to_owned(),
                JsonValue::UInt(load(&self.ok_200)),
            ),
            (
                "responses_4xx".to_owned(),
                JsonValue::UInt(load(&self.client_errors)),
            ),
            (
                "responses_500".to_owned(),
                JsonValue::UInt(load(&self.server_errors)),
            ),
            (
                "shed_503_total".to_owned(),
                JsonValue::UInt(load(&self.shed_total)),
            ),
            (
                "rate_limited_429_total".to_owned(),
                JsonValue::UInt(load(&self.rate_limited_total)),
            ),
            ("plans_total".to_owned(), JsonValue::UInt(plans)),
            (
                "sweeps_total".to_owned(),
                JsonValue::UInt(load(&self.sweeps_total)),
            ),
            (
                "plans_per_s".to_owned(),
                JsonValue::Num(plans as f64 / uptime.max(1e-9)),
            ),
            (
                "in_flight".to_owned(),
                JsonValue::UInt(self.in_flight.load(Ordering::Relaxed) as u64),
            ),
            (
                "open_connections".to_owned(),
                JsonValue::UInt(self.open_connections.load(Ordering::Relaxed) as u64),
            ),
            (
                "queue_depth".to_owned(),
                JsonValue::UInt(queue_depth as u64),
            ),
            (
                "cache".to_owned(),
                JsonValue::Object(vec![
                    ("hits".to_owned(), JsonValue::UInt(cache.hits)),
                    ("misses".to_owned(), JsonValue::UInt(cache.misses)),
                    ("hit_rate".to_owned(), JsonValue::Num(cache.hit_rate())),
                    ("entries".to_owned(), JsonValue::UInt(cache.entries as u64)),
                    ("evictions".to_owned(), JsonValue::UInt(cache.evictions)),
                    ("uncached".to_owned(), JsonValue::UInt(cache.uncached)),
                ]),
            ),
            ("plan_latency".to_owned(), self.plan_latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        // 90 fast (≤100 µs bucket), 10 slow (≤50 ms bucket).
        for _ in 0..90 {
            h.record_us(80);
        }
        for _ in 0..10 {
            h.record_us(42_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.99), 50_000);
        let json = h.to_json().to_string();
        assert!(json.contains("\"p99_ms\":50"), "{json}");
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = LatencyHistogram::new();
        h.record_us(99_000_000);
        assert_eq!(h.quantile_us(0.5), 99_000_000);
    }

    #[test]
    fn metrics_json_carries_cache_and_queue() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(503);
        m.count_status(429);
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            entries: 2,
            evictions: 1,
            uncached: 0,
        };
        let doc = m.to_json(&cache, 7).to_string();
        for needle in [
            "\"requests_total\":3",
            "\"responses_200\":1",
            "\"shed_503_total\":1",
            "\"rate_limited_429_total\":1",
            "\"queue_depth\":7",
            "\"hits\":5",
            "\"evictions\":1",
            "\"plan_latency\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }
}
