//! Server-side observability: request/response counters, admission
//! (shed/rate-limit) counters and log-bucketed latency histograms, all
//! lock-free atomics so the hot path never serialises on a metrics mutex.
//! `GET /metrics` renders the whole registry as one JSON document.

use dpipe_serve::CacheStats;
use dpipe_spec::json::JsonValue;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Upper bounds (microseconds) of the latency histogram buckets; the last
/// bucket is open-ended. Log-ish spacing covers 50 µs cache hits through
/// 30 s pathological plans in 19 buckets.
const BOUNDS_US: [u64; 19] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 30_000_000,
];

/// A fixed-bucket latency histogram with atomic counters.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..=BOUNDS_US.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (microseconds) of the bucket containing the `q`
    /// quantile (0.0–1.0), or 0 with no observations. The answer for the
    /// open-ended last bucket is the observed maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US
                    .get(idx)
                    .copied()
                    .unwrap_or_else(|| self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts as `(upper_bound_seconds, count_at_or_below)`
    /// pairs, ending with the open-ended `(f64::INFINITY, total)` bucket —
    /// exactly the shape the Prometheus text format wants.
    pub fn cumulative_buckets_s(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let bound = BOUNDS_US
                .get(idx)
                .map_or(f64::INFINITY, |&us| us as f64 / 1e6);
            out.push((bound, cumulative));
        }
        out
    }

    /// Sum of all observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The histogram as a JSON object (`count`, `mean_ms`, `p50_ms`,
    /// `p90_ms`, `p99_ms`, `max_ms`).
    pub fn to_json(&self) -> JsonValue {
        let count = self.count();
        let mean_ms = if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0
        };
        let ms = |us: u64| us as f64 / 1_000.0;
        JsonValue::Object(vec![
            ("count".to_owned(), JsonValue::UInt(count)),
            ("mean_ms".to_owned(), JsonValue::Num(mean_ms)),
            (
                "p50_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.50))),
            ),
            (
                "p90_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.90))),
            ),
            (
                "p99_ms".to_owned(),
                JsonValue::Num(ms(self.quantile_us(0.99))),
            ),
            (
                "max_ms".to_owned(),
                JsonValue::Num(ms(self.max_us.load(Ordering::Relaxed))),
            ),
        ])
    }
}

/// The server's counter registry.
pub struct Metrics {
    started: Instant,
    /// Requests fully parsed off the wire.
    pub requests_total: AtomicU64,
    /// Responses by status code class we actually emit.
    pub ok_200: AtomicU64,
    /// 4xx total (400/404/405/408/411/413/422/429/431).
    pub client_errors: AtomicU64,
    /// 500s (internal/service failures).
    pub server_errors: AtomicU64,
    /// 503s from admission control — load shed, never a dropped connection.
    pub shed_total: AtomicU64,
    /// 429s from the per-client token bucket.
    pub rate_limited_total: AtomicU64,
    /// Successful `POST /plan` responses.
    pub plans_total: AtomicU64,
    /// Successful `POST /sweep` responses.
    pub sweeps_total: AtomicU64,
    /// Successful `POST /simulate` responses.
    pub simulations_total: AtomicU64,
    /// Requests currently being handled (gauge).
    pub in_flight: AtomicUsize,
    /// Connections currently open (gauge).
    pub open_connections: AtomicUsize,
    /// End-to-end `POST /plan` service time.
    pub plan_latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A zeroed registry started now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            ok_200: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            rate_limited_total: AtomicU64::new(0),
            plans_total: AtomicU64::new(0),
            sweeps_total: AtomicU64::new(0),
            simulations_total: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            plan_latency: LatencyHistogram::new(),
        }
    }

    /// Seconds since the registry was created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Tallies a response's status code into the right counter.
    pub fn count_status(&self, status: u16) {
        match status {
            200 => {
                self.ok_200.fetch_add(1, Ordering::Relaxed);
            }
            503 => {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
            }
            429 => {
                self.rate_limited_total.fetch_add(1, Ordering::Relaxed);
                self.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            500 => {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.client_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The whole registry as the `GET /metrics` JSON document. Cache and
    /// queue figures come from the [`PlanService`] the server fronts.
    ///
    /// [`PlanService`]: dpipe_serve::PlanService
    pub fn to_json(&self, cache: &CacheStats, queue_depth: usize) -> JsonValue {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let uptime = self.uptime_s();
        let plans = load(&self.plans_total);
        JsonValue::Object(vec![
            ("uptime_s".to_owned(), JsonValue::Num(uptime)),
            (
                "requests_total".to_owned(),
                JsonValue::UInt(load(&self.requests_total)),
            ),
            (
                "responses_200".to_owned(),
                JsonValue::UInt(load(&self.ok_200)),
            ),
            (
                "responses_4xx".to_owned(),
                JsonValue::UInt(load(&self.client_errors)),
            ),
            (
                "responses_500".to_owned(),
                JsonValue::UInt(load(&self.server_errors)),
            ),
            (
                "shed_503_total".to_owned(),
                JsonValue::UInt(load(&self.shed_total)),
            ),
            (
                "rate_limited_429_total".to_owned(),
                JsonValue::UInt(load(&self.rate_limited_total)),
            ),
            ("plans_total".to_owned(), JsonValue::UInt(plans)),
            (
                "sweeps_total".to_owned(),
                JsonValue::UInt(load(&self.sweeps_total)),
            ),
            (
                "simulations_total".to_owned(),
                JsonValue::UInt(load(&self.simulations_total)),
            ),
            (
                "plans_per_s".to_owned(),
                JsonValue::Num(plans as f64 / uptime.max(1e-9)),
            ),
            (
                "in_flight".to_owned(),
                JsonValue::UInt(self.in_flight.load(Ordering::Relaxed) as u64),
            ),
            (
                "open_connections".to_owned(),
                JsonValue::UInt(self.open_connections.load(Ordering::Relaxed) as u64),
            ),
            (
                "queue_depth".to_owned(),
                JsonValue::UInt(queue_depth as u64),
            ),
            (
                "cache".to_owned(),
                JsonValue::Object(vec![
                    ("hits".to_owned(), JsonValue::UInt(cache.hits)),
                    ("misses".to_owned(), JsonValue::UInt(cache.misses)),
                    ("hit_rate".to_owned(), JsonValue::Num(cache.hit_rate())),
                    ("entries".to_owned(), JsonValue::UInt(cache.entries as u64)),
                    ("evictions".to_owned(), JsonValue::UInt(cache.evictions)),
                    ("uncached".to_owned(), JsonValue::UInt(cache.uncached)),
                ]),
            ),
            ("plan_latency".to_owned(), self.plan_latency.to_json()),
        ])
    }

    /// The whole registry in the Prometheus text exposition format
    /// (version 0.0.4), served by `GET /metrics?format=prometheus`.
    /// Counters get a `_total` suffix, gauges none, and the plan latency
    /// histogram is rendered with cumulative `le` buckets in seconds.
    pub fn to_prometheus(&self, cache: &CacheStats, queue_depth: usize) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(2048);
        let mut scalar = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        let counters: [(&str, &str, u64); 10] = [
            (
                "dpipe_requests_total",
                "Requests fully parsed off the wire.",
                load(&self.requests_total),
            ),
            (
                "dpipe_responses_200_total",
                "Responses with status 200.",
                load(&self.ok_200),
            ),
            (
                "dpipe_responses_4xx_total",
                "Responses with a 4xx status.",
                load(&self.client_errors),
            ),
            (
                "dpipe_responses_500_total",
                "Responses with status 500.",
                load(&self.server_errors),
            ),
            (
                "dpipe_shed_503_total",
                "Requests shed by admission control with 503.",
                load(&self.shed_total),
            ),
            (
                "dpipe_rate_limited_429_total",
                "Requests rejected by the per-client rate limiter.",
                load(&self.rate_limited_total),
            ),
            (
                "dpipe_plans_total",
                "Successful POST /plan responses.",
                load(&self.plans_total),
            ),
            (
                "dpipe_sweeps_total",
                "Successful POST /sweep responses.",
                load(&self.sweeps_total),
            ),
            (
                "dpipe_simulations_total",
                "Successful POST /simulate responses.",
                load(&self.simulations_total),
            ),
            (
                "dpipe_cache_evictions_total",
                "Plan cache LRU evictions.",
                cache.evictions,
            ),
        ];
        for (name, help, value) in counters {
            scalar(name, "counter", help, value.to_string());
        }
        let gauges: [(&str, &str, f64); 7] = [
            (
                "dpipe_uptime_seconds",
                "Seconds since the server started.",
                self.uptime_s(),
            ),
            (
                "dpipe_in_flight_requests",
                "Requests currently being handled.",
                self.in_flight.load(Ordering::Relaxed) as f64,
            ),
            (
                "dpipe_open_connections",
                "Connections currently open.",
                self.open_connections.load(Ordering::Relaxed) as f64,
            ),
            (
                "dpipe_plan_queue_depth",
                "Plan jobs queued or planning.",
                queue_depth as f64,
            ),
            (
                "dpipe_cache_entries",
                "Plans resident in the cache.",
                cache.entries as f64,
            ),
            ("dpipe_cache_hits", "Plan cache hits.", cache.hits as f64),
            (
                "dpipe_cache_misses",
                "Plan cache misses.",
                cache.misses as f64,
            ),
        ];
        for (name, help, value) in gauges {
            scalar(name, "gauge", help, format_prom_f64(value));
        }
        let name = "dpipe_plan_latency_seconds";
        out.push_str(&format!(
            "# HELP {name} End-to-end POST /plan service time.\n# TYPE {name} histogram\n"
        ));
        for (bound, cumulative) in self.plan_latency.cumulative_buckets_s() {
            let le = if bound.is_infinite() {
                "+Inf".to_owned()
            } else {
                format_prom_f64(bound)
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_sum {}\n",
            format_prom_f64(self.plan_latency.sum_us() as f64 / 1e6)
        ));
        out.push_str(&format!("{name}_count {}\n", self.plan_latency.count()));
        out
    }
}

/// Prometheus floats: plain decimal, no exponent for the magnitudes we
/// emit, and integral values without a trailing `.0` (both are accepted,
/// but the integer form matches common exposition output).
fn format_prom_f64(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        let s = format!("{value:.9}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        // 90 fast (≤100 µs bucket), 10 slow (≤50 ms bucket).
        for _ in 0..90 {
            h.record_us(80);
        }
        for _ in 0..10 {
            h.record_us(42_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.99), 50_000);
        let json = h.to_json().to_string();
        assert!(json.contains("\"p99_ms\":50"), "{json}");
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = LatencyHistogram::new();
        h.record_us(99_000_000);
        assert_eq!(h.quantile_us(0.5), 99_000_000);
    }

    #[test]
    fn metrics_json_carries_cache_and_queue() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(503);
        m.count_status(429);
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            entries: 2,
            evictions: 1,
            uncached: 0,
        };
        let doc = m.to_json(&cache, 7).to_string();
        for needle in [
            "\"requests_total\":3",
            "\"responses_200\":1",
            "\"shed_503_total\":1",
            "\"rate_limited_429_total\":1",
            "\"queue_depth\":7",
            "\"hits\":5",
            "\"evictions\":1",
            "\"plan_latency\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_us(), 0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q}");
        }
        let json = h.to_json().to_string();
        for needle in [
            "\"count\":0",
            "\"mean_ms\":0",
            "\"p50_ms\":0",
            "\"p90_ms\":0",
            "\"p99_ms\":0",
            "\"max_ms\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let buckets = h.cumulative_buckets_s();
        assert_eq!(buckets.len(), BOUNDS_US.len() + 1);
        assert!(buckets.iter().all(|&(_, n)| n == 0));
        assert!(buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn single_sample_histogram_puts_every_quantile_in_its_bucket() {
        let h = LatencyHistogram::new();
        h.record_us(300); // lands in the (200, 500] bucket
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_us(), 300);
        // With one observation every quantile resolves to the same bucket
        // upper bound, including the degenerate q=0.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 500, "q={q}");
        }
        let cumulative: Vec<u64> = h.cumulative_buckets_s().iter().map(|&(_, n)| n).collect();
        // Zero below the bucket, one from the bucket onward.
        assert_eq!(cumulative[2], 0);
        assert!(cumulative[3..].iter().all(|&n| n == 1));
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        m.requests_total.fetch_add(1, Ordering::Relaxed);
                        m.count_status(if (t + i) % 2 == 0 { 200 } else { 503 });
                        m.plan_latency.record_us(100 * (1 + (i % 10) as u64));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(m.requests_total.load(Ordering::Relaxed), total);
        assert_eq!(
            m.ok_200.load(Ordering::Relaxed) + m.shed_total.load(Ordering::Relaxed),
            total
        );
        assert_eq!(m.plan_latency.count(), total);
        let (_, inf_count) = *m.plan_latency.cumulative_buckets_s().last().unwrap();
        assert_eq!(inf_count, total);
    }

    /// A hand-rolled lint for the Prometheus text exposition format: every
    /// sample line must parse as `name{labels} value`, every series must be
    /// preceded by HELP/TYPE for its family, histogram buckets must be
    /// cumulative and end at `+Inf == _count`.
    #[test]
    fn prometheus_exposition_passes_text_format_lint() {
        let m = Metrics::new();
        m.requests_total.fetch_add(4, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(429);
        m.plan_latency.record_us(80);
        m.plan_latency.record_us(42_000);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            evictions: 0,
            uncached: 0,
        };
        let text = m.to_prometheus(&cache, 2);
        assert!(text.ends_with('\n'), "exposition must end with a newline");

        // (metric name, label k/v pairs, value)
        type Sample = (String, Vec<(String, String)>, f64);
        let mut typed: std::collections::HashMap<String, String> = Default::default();
        let mut samples: Vec<Sample> = Vec::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE line shape");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad metric type {kind}"
                );
                typed.insert(name.to_owned(), kind.to_owned());
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample line shape");
            let (name, labels) = match series.split_once('{') {
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("unterminated label set");
                    let labels = body
                        .split(',')
                        .map(|kv| {
                            let (k, v) = kv.split_once('=').expect("label shape");
                            let v = v
                                .strip_prefix('"')
                                .and_then(|v| v.strip_suffix('"'))
                                .expect("label value must be quoted");
                            (k.to_owned(), v.to_owned())
                        })
                        .collect();
                    (name.to_owned(), labels)
                }
                None => (series.to_owned(), Vec::new()),
            };
            let value: f64 = if value == "+Inf" {
                f64::INFINITY
            } else {
                value
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value {value}"))
            };
            let family = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                typed.contains_key(&name) || typed.contains_key(family),
                "sample {name} has no TYPE"
            );
            samples.push((name, labels, value));
        }

        // Histogram invariants: buckets cumulative, +Inf equals _count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|(n, _, _)| n == "dpipe_plan_latency_seconds_bucket")
            .collect();
        assert!(!buckets.is_empty());
        let mut last = 0.0;
        for (_, labels, value) in &buckets {
            assert_eq!(labels.len(), 1);
            assert_eq!(labels[0].0, "le");
            assert!(*value >= last, "buckets must be cumulative");
            last = *value;
        }
        assert_eq!(buckets.last().unwrap().1[0].1, "+Inf");
        let count = samples
            .iter()
            .find(|(n, _, _)| n == "dpipe_plan_latency_seconds_count")
            .expect("_count sample")
            .2;
        assert_eq!(buckets.last().unwrap().2, count);
        assert_eq!(count, 2.0);

        for needle in ["dpipe_requests_total 4", "dpipe_plan_queue_depth 2"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
