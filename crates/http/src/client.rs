//! A minimal blocking HTTP/1.1 client with keep-alive, used by the
//! integration tests and the closed-loop load generator (`http_bench`).
//! Deliberately tiny: one connection, one request in flight, enough header
//! parsing to read a `Content-Length` response from our own server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy; our server only emits UTF-8 JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One persistent client connection.
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl HttpClient {
    /// Connects with a generous read timeout (plans can take a while cold).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures from the socket layer.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            carry: Vec::new(),
        })
    }

    /// Sends one request and reads the full response. The connection stays
    /// open for the next call unless the server answered `Connection:
    /// close` (in which case the next call will fail — reconnect then).
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` when the response is unparsable.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: dpipe\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let invalid = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk)? {
                0 => return Err(invalid("connection closed mid-response")),
                n => self.carry.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.carry[..head_end]).into_owned();
        self.carry.drain(..head_end + 4);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("malformed status line"))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad content-length"))?;
                }
            }
        }
        // An interim 100 Continue carries no body; the real response follows.
        if status == 100 {
            return self.read_response();
        }
        let mut body = Vec::with_capacity(content_length);
        let take = content_length.min(self.carry.len());
        body.extend_from_slice(&self.carry[..take]);
        self.carry.drain(..take);
        let mut chunk = [0u8; 16 * 1024];
        while body.len() < content_length {
            let want = (content_length - body.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..want])? {
                0 => return Err(invalid("connection closed mid-body")),
                n => body.extend_from_slice(&chunk[..n]),
            }
        }
        Ok(HttpResponse { status, body })
    }
}
