//! The networked planning frontend: a `TcpListener` acceptor, a bounded
//! connection queue, a pool of connection workers, and the route handlers
//! that bridge HTTP to the in-process [`PlanService`].
//!
//! Robustness properties, all enforced here rather than hoped for:
//!
//! * **Admission control.** Accepted connections go through a bounded
//!   queue; when it is full the acceptor answers `503` itself and closes —
//!   load is *shed*, never silently dropped. A second bound
//!   ([`ServerConfig::max_in_flight_plans`]) sheds `POST /plan` requests
//!   once the planning backlog is deep enough that waiting would be worse
//!   than retrying.
//! * **Bounded reads.** Header size, body size and socket read time are all
//!   capped ([`Limits`]); the worst a slow or hostile client can pin is one
//!   worker for one timeout.
//! * **Per-client rate limiting.** A token bucket per peer IP answers `429`
//!   past the configured rate.
//! * **Graceful shutdown.** [`HttpServer::shutdown`] (or `POST /shutdown`)
//!   stops accepting, drains every queued connection and in-flight plan,
//!   then joins all threads — no request that got a TCP accept is ever
//!   abandoned mid-flight.

use crate::http1::{write_oneshot, HttpConn, HttpError, Limits, Request};
use crate::metrics::Metrics;
use crate::queue::{Bounded, PushError};
use crate::ratelimit::RateLimiter;
use diffusionpipe_core::{FaultSpec, PlanError};
use dpipe_serve::json::{parse, plan_response_doc, simulate_response_doc, JsonValue};
use dpipe_serve::{PlanRequest, PlanService, ServiceConfig, SweepGrid, TraceCtx};
use dpipe_spec::{PlanSpec, SweepSpec};
use dpipe_trace::{SpanId, Tracer};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `dpipe serve --listen` can tune.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Connection-handler threads (each owns one connection at a time).
    pub conn_workers: usize,
    /// Accepted connections waiting for a handler before the acceptor
    /// starts shedding with 503.
    pub queue_capacity: usize,
    /// Plan jobs (queued + planning) before `POST /plan` sheds with 503.
    pub max_in_flight_plans: usize,
    /// Wire-read limits (head/body size, read timeout).
    pub limits: Limits,
    /// Sustained per-client requests/second (0 disables rate limiting).
    pub rate_per_s: f64,
    /// Per-client burst allowance on top of the sustained rate.
    pub rate_burst: f64,
    /// Directory for per-request Chrome trace-event files (`None`, the
    /// default, disables request tracing entirely).
    pub trace_dir: Option<PathBuf>,
    /// With `trace_dir` set, write every Nth request's trace (1 = all).
    pub trace_sample: u64,
    /// Chaos-testing hook: a named fault armed inside a route handler
    /// (`"simulate-panic"` panics in `POST /simulate`). `None` (the
    /// default, and the only production setting) disables every failpoint;
    /// the chaos tests use this to prove panics are contained as 500s
    /// without poisoning workers or the plan cache.
    pub failpoint: Option<String>,
    /// The planning worker pool + cache this server fronts.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            conn_workers: (2 * cores).clamp(8, 64),
            queue_capacity: 128,
            max_in_flight_plans: 256,
            limits: Limits::default(),
            rate_per_s: 0.0,
            rate_burst: 0.0,
            trace_dir: None,
            trace_sample: 1,
            failpoint: None,
            service: ServiceConfig::default(),
        }
    }
}

/// What a route handler produced: a status, a body (already
/// newline-terminated where the CLI equivalent prints one), its content
/// type, and — for the plan route — how the cache resolved it (surfaced
/// as a span attribute on the request trace).
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    cache: Option<&'static str>,
}

impl Reply {
    fn json_error(status: u16, message: &str) -> Reply {
        let body = JsonValue::Object(vec![(
            "error".to_owned(),
            JsonValue::Str(message.to_owned()),
        )]);
        Reply {
            status,
            body: format!("{body}\n"),
            content_type: "application/json",
            cache: None,
        }
    }

    fn ok(body: String) -> Reply {
        Reply {
            status: 200,
            body,
            content_type: "application/json",
            cache: None,
        }
    }

    fn text(body: String, content_type: &'static str) -> Reply {
        Reply {
            status: 200,
            body,
            content_type,
            cache: None,
        }
    }
}

/// Per-request trace context threaded from the connection loop into the
/// route handlers: the request's tracer (disabled unless the server has a
/// trace sink), the handler span to parent under, and how long the
/// connection waited in the accept queue (first request only).
struct RequestTrace<'a> {
    tracer: &'a Tracer,
    parent: Option<SpanId>,
    queue_wait: Option<Duration>,
}

impl RequestTrace<'_> {
    fn ctx(&self) -> Option<TraceCtx> {
        self.tracer.is_enabled().then(|| TraceCtx {
            tracer: self.tracer.clone(),
            parent: self.parent,
        })
    }
}

/// Where sampled request traces are written (`--trace-dir`).
struct TraceSink {
    dir: PathBuf,
    /// Write every Nth request's trace (1 = all).
    sample: u64,
    seq: AtomicU64,
}

impl TraceSink {
    /// Persists one finished request trace if the sampling counter selects
    /// it; the tracer is drained either way so keep-alive connections do
    /// not accumulate spans across requests.
    fn record(&self, tracer: &Tracer, status: u16) {
        let trace = tracer.take();
        if trace.is_empty() {
            return;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample.max(1)) {
            return;
        }
        let path = self.dir.join(format!("request-{n:06}-{status}.json"));
        // Tracing is best-effort observability: a full disk or a removed
        // directory must not fail the request that was being traced.
        let _ = std::fs::write(path, trace.to_chrome_json());
    }
}

/// Shared state every connection worker routes against.
struct Router {
    service: PlanService,
    metrics: Metrics,
    limiter: RateLimiter,
    max_in_flight_plans: usize,
    shutdown: AtomicBool,
    trace_sink: Option<TraceSink>,
    failpoint: Option<String>,
}

impl Router {
    fn handle(&self, request: &Request, peer: Option<IpAddr>, trace: &RequestTrace<'_>) -> Reply {
        // The path may carry a query string (`/metrics?format=prometheus`);
        // routing matches on the path alone.
        let (path, query) = request
            .path
            .split_once('?')
            .unwrap_or((request.path.as_str(), ""));
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => Reply::ok("{\"status\":\"ok\"}\n".to_owned()),
            ("GET", "/metrics") => {
                let cache = self.service.cache_stats();
                let depth = self.service.queue_depth();
                if query.split('&').any(|kv| kv == "format=prometheus") {
                    Reply::text(
                        self.metrics.to_prometheus(&cache, depth),
                        "text/plain; version=0.0.4",
                    )
                } else {
                    let doc = self.metrics.to_json(&cache, depth);
                    Reply::ok(format!("{doc}\n"))
                }
            }
            ("POST", "/plan") => self.handle_plan(&request.body, peer, trace),
            ("POST", "/simulate") => self.handle_simulate(&request.body, peer, trace),
            ("POST", "/sweep") => self.handle_sweep(&request.body, peer),
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                Reply::ok("{\"status\":\"draining\"}\n".to_owned())
            }
            ("GET" | "POST", _) => {
                Reply::json_error(404, &format!("no such endpoint: {}", request.path))
            }
            (method, _) => Reply::json_error(405, &format!("method {method} not supported")),
        }
    }

    /// Shared entry checks for the planning endpoints: per-client rate
    /// limit, then backlog admission. `None` means "go ahead".
    fn admit(&self, peer: Option<IpAddr>) -> Option<Reply> {
        if let Some(ip) = peer {
            if !self.limiter.allow(ip) {
                return Some(Reply::json_error(429, "client request rate exceeded"));
            }
        }
        let depth = self.service.queue_depth();
        if depth >= self.max_in_flight_plans {
            return Some(Reply::json_error(
                503,
                &format!("planning backlog full ({depth} in flight); retry later"),
            ));
        }
        None
    }

    fn handle_plan(&self, body: &[u8], peer: Option<IpAddr>, trace: &RequestTrace<'_>) -> Reply {
        if let Some(reply) = self.admit(peer) {
            return reply;
        }
        let mut parse_span = trace.tracer.child_span("parse_spec", trace.parent);
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Reply::json_error(400, "request body is not UTF-8"),
        };
        let spec = match PlanSpec::from_json(text) {
            Ok(s) => s,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        let request = match PlanRequest::from_spec(spec.clone()) {
            Ok(r) => r,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        parse_span.set("bytes", body.len() as u64);
        parse_span.finish();
        let started = Instant::now();
        let response = self
            .service
            .plan_one_traced(request.clone(), 1, trace.ctx());
        let plan_ms = started.elapsed().as_secs_f64() * 1e3;
        let cache = if response.cache_hit { "hit" } else { "miss" };
        let mut reply = match response.outcome {
            Ok(plan) => {
                // The exact `dpipe plan --json --spec` stdout, built by the
                // same function (`plan_response_doc`), plus a server-only
                // trailing `timing` field, newline included.
                let mut doc = plan_response_doc(&spec, &request, &plan);
                if let JsonValue::Object(fields) = &mut doc {
                    let queue_ms = trace.queue_wait.map_or(0.0, |w| w.as_secs_f64() * 1e3);
                    fields.push((
                        "timing".to_owned(),
                        JsonValue::Object(vec![
                            ("queue_ms".to_owned(), JsonValue::Num(queue_ms)),
                            ("plan_ms".to_owned(), JsonValue::Num(plan_ms)),
                            ("cache".to_owned(), JsonValue::Str(cache.to_owned())),
                        ]),
                    ));
                }
                self.metrics
                    .plans_total
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Reply::ok(format!("{doc}\n"))
            }
            Err(e @ PlanError::Internal(_)) => Reply::json_error(500, &e.to_string()),
            Err(e) => Reply::json_error(422, &e.to_string()),
        };
        reply.cache = Some(cache);
        self.metrics
            .plan_latency
            .record_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        reply
    }

    /// `POST /simulate`: a `{"spec": PlanSpec, "faults": FaultSpec}` body
    /// plans the spec through the cache, replays it under the fault spec,
    /// and answers with the exact `dpipe simulate --json` document. A
    /// degraded re-plan (node drops) routes back through the plan cache.
    /// Error discipline matches `/plan`: malformed input is 400, a
    /// deterministic verdict about the request is 422, and only genuine
    /// internal failures (including a contained panic) are 500.
    fn handle_simulate(
        &self,
        body: &[u8],
        peer: Option<IpAddr>,
        trace: &RequestTrace<'_>,
    ) -> Reply {
        if let Some(reply) = self.admit(peer) {
            return reply;
        }
        let mut parse_span = trace.tracer.child_span("parse_simulate", trace.parent);
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Reply::json_error(400, "request body is not UTF-8"),
        };
        let doc = match parse(text) {
            Ok(d) => d,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        let Some(spec_value) = doc.get("spec") else {
            return Reply::json_error(
                400,
                "missing `spec` field (expected {\"spec\": <PlanSpec>, \"faults\": <FaultSpec>})",
            );
        };
        let spec = match PlanSpec::from_json_value(spec_value) {
            Ok(s) => s,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        let faults = match doc.get("faults") {
            None | Some(JsonValue::Null) => FaultSpec::none(),
            Some(v) => match FaultSpec::from_json_value(v) {
                Ok(f) => f,
                Err(e) => return Reply::json_error(400, &e.to_string()),
            },
        };
        let request = match PlanRequest::from_spec(spec.clone()) {
            Ok(r) => r,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        parse_span.set("bytes", body.len() as u64);
        parse_span.finish();
        let started = Instant::now();
        // The replay is contained like the planning workers contain the
        // planner: a panic inside (or the armed chaos failpoint) becomes a
        // clean 500 on this request alone — the worker survives, and
        // nothing about the panicking request enters the plan cache.
        let armed = self.failpoint.as_deref() == Some("simulate-panic");
        let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if armed {
                // dpipe-analyze: allow(no-panic) -- the chaos failpoint exists to panic; catch_unwind right here contains it
                panic!("failpoint simulate-panic armed");
            }
            self.service
                .simulate_traced(&request, &faults, 1, trace.ctx())
        })) {
            Ok(r) => r,
            Err(payload) => {
                return Reply::json_error(
                    500,
                    &format!("simulation panicked: {}", panic_message(payload.as_ref())),
                )
            }
        };
        let sim_ms = started.elapsed().as_secs_f64() * 1e3;
        let cache = if response.cache_hit { "hit" } else { "miss" };
        let mut reply = match response.outcome {
            Ok(outcome) => {
                // The exact `dpipe simulate --json` stdout, built by the
                // same function (`simulate_response_doc`), plus a
                // server-only trailing `timing` field.
                let mut doc = simulate_response_doc(&spec, &request, &faults, &outcome);
                if let JsonValue::Object(fields) = &mut doc {
                    let queue_ms = trace.queue_wait.map_or(0.0, |w| w.as_secs_f64() * 1e3);
                    fields.push((
                        "timing".to_owned(),
                        JsonValue::Object(vec![
                            ("queue_ms".to_owned(), JsonValue::Num(queue_ms)),
                            ("simulate_ms".to_owned(), JsonValue::Num(sim_ms)),
                            ("cache".to_owned(), JsonValue::Str(cache.to_owned())),
                        ]),
                    ));
                }
                self.metrics
                    .simulations_total
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Reply::ok(format!("{doc}\n"))
            }
            Err(e @ PlanError::Internal(_)) => Reply::json_error(500, &e.to_string()),
            Err(e) => Reply::json_error(422, &e.to_string()),
        };
        reply.cache = Some(cache);
        reply
    }

    fn handle_sweep(&self, body: &[u8], peer: Option<IpAddr>) -> Reply {
        if let Some(reply) = self.admit(peer) {
            return reply;
        }
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Reply::json_error(400, "request body is not UTF-8"),
        };
        let sweep = match SweepSpec::from_json(text) {
            Ok(s) => s,
            Err(e) => return Reply::json_error(400, &e.to_string()),
        };
        let grid = SweepGrid::from_spec(sweep);
        if grid.is_empty() {
            return Reply::json_error(422, "empty sweep grid");
        }
        match grid.run(&self.service) {
            Ok(report) => {
                self.metrics
                    .sweeps_total
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // The exact `dpipe sweep --json --spec` stdout.
                Reply::ok(format!("{}\n", report.to_json()))
            }
            Err(e) => Reply::json_error(400, &e.to_string()),
        }
    }
}

/// Best-effort extraction of a contained panic's message (panics carry
/// `&str` or `String` payloads in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// An accepted connection waiting for a handler, stamped at accept time
/// so the request trace can account for queue wait.
struct Accepted {
    stream: TcpStream,
    accepted_at: Instant,
}

/// A running HTTP frontend. Dropping it performs a graceful shutdown.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    router: Arc<Router>,
    queue: Arc<Bounded<Accepted>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `config.addr` and starts the acceptor + worker threads.
    ///
    /// # Errors
    ///
    /// Whatever [`TcpListener::bind`] reports (address in use, permission).
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let router = Arc::new(Router {
            service: PlanService::new(config.service),
            metrics: Metrics::new(),
            limiter: RateLimiter::new(config.rate_per_s, config.rate_burst),
            max_in_flight_plans: config.max_in_flight_plans.max(1),
            shutdown: AtomicBool::new(false),
            trace_sink: config.trace_dir.map(|dir| TraceSink {
                dir,
                sample: config.trace_sample.max(1),
                seq: AtomicU64::new(0),
            }),
            failpoint: config.failpoint,
        });
        let queue: Arc<Bounded<Accepted>> = Arc::new(Bounded::new(config.queue_capacity));

        let acceptor = {
            let router = Arc::clone(&router);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("dpipe-http-accept".to_owned())
                .spawn(move || {
                    loop {
                        if router.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let _ = stream.set_nonblocking(false);
                                let _ = stream.set_nodelay(true);
                                let accepted = Accepted {
                                    stream,
                                    accepted_at: Instant::now(),
                                };
                                match queue.try_push(accepted) {
                                    Ok(()) => {}
                                    Err((Accepted { mut stream, .. }, why)) => {
                                        // Shed, never drop: the client gets a
                                        // well-formed 503 before the close.
                                        let body = match why {
                                            PushError::Full => {
                                                b"{\"error\":\"connection queue full; retry later\"}\n".to_vec()
                                            }
                                            PushError::Closed => {
                                                b"{\"error\":\"server is draining\"}\n".to_vec()
                                            }
                                        };
                                        write_oneshot(&mut stream, 503, &body);
                                        router.metrics.count_status(503);
                                    }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                    // Stop feeding workers; queued connections still drain.
                    queue.close();
                })
?
        };

        let limits = config.limits;
        let workers = (0..config.conn_workers.max(1))
            .map(|i| {
                let router = Arc::clone(&router);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("dpipe-http-{i}"))
                    .spawn(move || {
                        while let Some(accepted) = queue.pop() {
                            handle_connection(&router, accepted, &limits);
                        }
                    })
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(HttpServer {
            addr,
            router,
            queue,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The planning service behind the routes (e.g. for cache stats).
    pub fn service(&self) -> &PlanService {
        &self.router.service
    }

    /// True once shutdown was requested (locally or via `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.router.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without waiting (acceptor stops within ~2 ms).
    pub fn request_shutdown(&self) {
        self.router.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested, then drains and joins
    /// everything. This is the CLI's foreground loop.
    pub fn run_until_shutdown(mut self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join_all();
    }

    /// Graceful shutdown: stop accepting, drain queued connections and
    /// in-flight requests, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.request_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor closed the queue on exit; closing again is harmless
        // and covers the (impossible today) case of an acceptor panic.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection until close, error, timeout or server shutdown.
/// In-flight requests always get their response before the connection
/// closes — shutdown only suppresses *further* keep-alive rounds.
fn handle_connection(router: &Router, accepted: Accepted, limits: &Limits) {
    let Accepted {
        stream,
        accepted_at,
    } = accepted;
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let mut conn = HttpConn::new(stream);
    router
        .metrics
        .open_connections
        .fetch_add(1, Ordering::Relaxed);
    // Only the connection's first request waited in the accept queue;
    // later keep-alive rounds start when their bytes arrive.
    let mut queue_wait: Option<Duration> = Some(accepted_at.elapsed());
    loop {
        // Each request on the connection gets its own tracer (and thus its
        // own trace file). With no sink configured this is `Tracer::off()`
        // and every span call below is a no-op.
        let tracer = match (&router.trace_sink, queue_wait) {
            (Some(_), Some(_)) => Tracer::starting_at(accepted_at),
            (Some(_), None) => Tracer::new(),
            (None, _) => Tracer::off(),
        };
        let mut root = match queue_wait {
            Some(wait) => {
                let root = tracer.span_at("request", accepted_at);
                tracer.record_between("queue_wait", root.id(), accepted_at, accepted_at + wait);
                root
            }
            None => tracer.span("request"),
        };
        let mut read_span = tracer.child_span("read_request", root.id());
        match conn.read_request(limits) {
            Ok(request) => {
                read_span.set("bytes", request.body.len() as u64);
                read_span.finish();
                router
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                router.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                let mut handle_span = tracer.child_span("handle", root.id());
                let trace = RequestTrace {
                    tracer: &tracer,
                    parent: handle_span.id(),
                    queue_wait,
                };
                let reply = router.handle(&request, peer, &trace);
                handle_span.set("method", request.method.as_str());
                handle_span.set("path", request.path.as_str());
                handle_span.set("status", u64::from(reply.status));
                handle_span.finish();
                router.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                router.metrics.count_status(reply.status);
                let keep_alive = request.keep_alive && !router.shutdown.load(Ordering::SeqCst);
                let write_span = tracer.child_span("write_response", root.id());
                let write_ok = conn
                    .write_response(
                        reply.status,
                        reply.content_type,
                        reply.body.as_bytes(),
                        keep_alive,
                    )
                    .is_ok();
                write_span.finish();
                root.set("status", u64::from(reply.status));
                root.set(
                    "outcome",
                    match reply.status {
                        503 => "shed",
                        429 => "rate_limited",
                        s if s >= 500 => "error",
                        s if s >= 400 => "client_error",
                        _ => "ok",
                    },
                );
                if let Some(cache) = reply.cache {
                    root.set("cache", cache);
                }
                root.finish();
                if let Some(sink) = &router.trace_sink {
                    sink.record(&tracer, reply.status);
                }
                queue_wait = None;
                if !write_ok || !keep_alive {
                    break;
                }
            }
            // Clean end of a keep-alive session, idle timeout, or transport
            // failure: nothing to answer, just release the worker.
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(HttpError::Timeout) => {
                let _ = conn.write_response(
                    408,
                    "application/json",
                    b"{\"error\":\"read timed out\"}\n",
                    false,
                );
                router.metrics.count_status(408);
                break;
            }
            Err(e) => {
                let (status, message) = match &e {
                    HttpError::PayloadTooLarge(n) => (
                        413,
                        format!(
                            "body of {n} bytes exceeds limit of {} bytes",
                            limits.max_body_bytes
                        ),
                    ),
                    HttpError::HeadTooLarge => (431, "request head too large".to_owned()),
                    HttpError::LengthRequired => (
                        411,
                        "transfer-encoding unsupported; send content-length".to_owned(),
                    ),
                    _ => (400, e.to_string()),
                };
                router
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let body = JsonValue::Object(vec![("error".to_owned(), JsonValue::Str(message))]);
                let _ = conn.write_response(
                    status,
                    "application/json",
                    format!("{body}\n").as_bytes(),
                    false,
                );
                router.metrics.count_status(status);
                break;
            }
        }
    }
    router
        .metrics
        .open_connections
        .fetch_sub(1, Ordering::Relaxed);
}
