//! Constructing pipeline op graphs from partition plans.

use crate::op::{Op, OpId, OpKind, PipelineDirection};
use crate::schedule::{PipelineSchedule, SyncOp};
use crate::simulate::{simulate, Policy};
use crate::stage_times::StageTimes;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_partition::{BidirectionalPlan, PartitionPlan};
use dpipe_profile::ProfileDb;
use std::error::Error;
use std::fmt;

/// Pipeline schedule family for single-backbone training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// FIFO with one-forward-one-backward interleaving (paper Fig. 2).
    Fifo1F1B,
    /// GPipe: all forwards, then all backwards.
    GPipe,
}

/// Scheduling errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The list scheduler deadlocked (`remaining` ops unscheduled).
    Deadlock(usize),
    /// A plan with no stages was supplied.
    EmptyPlan,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Deadlock(n) => write!(f, "schedule deadlocked with {n} ops remaining"),
            ScheduleError::EmptyPlan => f.write_str("partition plan has no stages"),
        }
    }
}

impl Error for ScheduleError {}

/// Builds simulated pipeline schedules from partition plans.
#[derive(Debug)]
pub struct ScheduleBuilder<'a> {
    db: &'a ProfileDb,
    cluster: &'a ClusterSpec,
    layout: &'a DataParallelLayout,
    /// One profile database per device class (heterogeneous clusters);
    /// `None` times every stage on the reference database.
    class_dbs: Option<&'a [ProfileDb]>,
}

/// One pipeline's op-construction request.
struct PipelineSpec<'t> {
    times: &'t StageTimes,
    direction: PipelineDirection,
    /// Chain slot of each stage (stage index → slot).
    slots: Vec<usize>,
    self_cond: bool,
    kind: ScheduleKind,
}

impl<'a> ScheduleBuilder<'a> {
    /// Creates a builder.
    pub fn new(
        db: &'a ProfileDb,
        cluster: &'a ClusterSpec,
        layout: &'a DataParallelLayout,
    ) -> Self {
        ScheduleBuilder {
            db,
            cluster,
            layout,
            class_dbs: None,
        }
    }

    /// Supplies one [`ProfileDb`] per distinct device class (class order of
    /// [`ClusterSpec::class_map`]); stage times are then derived via
    /// [`StageTimes::from_plan_classed`].
    pub fn with_class_dbs(mut self, class_dbs: &'a [ProfileDb]) -> Self {
        self.class_dbs = Some(class_dbs);
        self
    }

    /// The class databases, defaulting to the reference database alone.
    fn dbs(&self) -> &[ProfileDb] {
        self.class_dbs
            .unwrap_or_else(|| std::slice::from_ref(self.db))
    }

    /// Whether the profiled model trains with self-conditioning.
    fn self_cond(&self) -> bool {
        self.db.model().self_conditioning.is_some()
    }

    /// Builds and simulates a schedule for a single-backbone plan.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::EmptyPlan`] for plans without stages and
    /// [`ScheduleError::Deadlock`] if simulation cannot make progress.
    pub fn build_single(
        &self,
        plan: &PartitionPlan,
        kind: ScheduleKind,
    ) -> Result<PipelineSchedule, ScheduleError> {
        if plan.stages.is_empty() {
            return Err(ScheduleError::EmptyPlan);
        }
        let times = StageTimes::from_plan_classed(self.dbs(), self.cluster, self.layout, plan);
        self.build_from_times(&times, kind, self.self_cond())
    }

    /// Builds a schedule directly from stage times (used by baselines and
    /// tests that craft synthetic stage profiles).
    pub fn build_from_times(
        &self,
        times: &StageTimes,
        kind: ScheduleKind,
        self_cond: bool,
    ) -> Result<PipelineSchedule, ScheduleError> {
        let s_count = times.num_stages();
        let mut times = times.clone();
        if self_cond && times.sc_scale == 0.0 {
            times.sc_scale = 1.0;
        }
        let times = &times;
        let spec = PipelineSpec {
            times,
            direction: PipelineDirection::Down,
            slots: (0..s_count).collect(),
            self_cond,
            kind,
        };
        let (ops, seqs) = build_ops(&[spec], s_count);
        finish(
            ops,
            seqs,
            s_count,
            times.micro_batch,
            Policy::StrictOrder,
            std::slice::from_ref(times),
        )
    }

    /// Builds and simulates a bidirectional schedule for two backbones
    /// (paper Fig. 3). Each pipeline uses FIFO-1F1B ordering; the device
    /// executes whichever pipeline's op is ready (work-conserving merge).
    pub fn build_bidirectional(
        &self,
        plan: &BidirectionalPlan,
    ) -> Result<PipelineSchedule, ScheduleError> {
        if plan.down.stages.is_empty() || plan.up.stages.is_empty() {
            return Err(ScheduleError::EmptyPlan);
        }
        let down_times =
            StageTimes::from_plan_classed(self.dbs(), self.cluster, self.layout, &plan.down);
        let up_times =
            StageTimes::from_plan_classed(self.dbs(), self.cluster, self.layout, &plan.up);
        let s_count = plan.down.stages.len();
        let slot_of = |sp: &dpipe_partition::StagePlan| sp.device_offsets[0] / sp.replication;
        let down_slots: Vec<usize> = plan.down.stages.iter().map(slot_of).collect();
        let up_slots: Vec<usize> = plan.up.stages.iter().map(slot_of).collect();
        let sc = self.self_cond();
        let specs = [
            PipelineSpec {
                times: &down_times,
                direction: PipelineDirection::Down,
                slots: down_slots,
                self_cond: sc,
                kind: ScheduleKind::Fifo1F1B,
            },
            PipelineSpec {
                times: &up_times,
                direction: PipelineDirection::Up,
                slots: up_slots,
                self_cond: sc,
                kind: ScheduleKind::Fifo1F1B,
            },
        ];
        let (ops, seqs) = build_ops(&specs, s_count);
        finish(
            ops,
            seqs,
            s_count,
            down_times.micro_batch,
            Policy::WorkConserving,
            &[down_times.clone(), up_times.clone()],
        )
    }
}

/// Builds all ops for the given pipelines and the per-slot execution
/// sequences (lists of op indices in intended order).
fn build_ops(specs: &[PipelineSpec<'_>], num_slots: usize) -> (Vec<Op>, Vec<Vec<usize>>) {
    let mut ops: Vec<Op> = Vec::new();
    // Per-pipeline id tables.
    let mut per_slot_seqs: Vec<Vec<Vec<usize>>> = Vec::new(); // [pipeline][slot] -> op indices

    for spec in specs {
        let s_count = spec.times.num_stages();
        let m_count = spec.times.num_micro_batches;
        let base = ops.len();
        // Id layout within this pipeline: for (m, s): [sc?] f ... then all b.
        let per_mb = if spec.self_cond { 2 } else { 1 };
        let sc_id = |s: usize, m: usize| OpId(base + (m * s_count + s) * per_mb);
        let f_id = |s: usize, m: usize| OpId(base + (m * s_count + s) * per_mb + per_mb - 1);
        let b_base = base + m_count * s_count * per_mb;
        let b_id = |s: usize, m: usize| OpId(b_base + m * s_count + s);

        for m in 0..m_count {
            for s in 0..s_count {
                let slot = spec.slots[s];
                if spec.self_cond {
                    let mut deps = Vec::new();
                    if s > 0 {
                        deps.push((sc_id(s - 1, m), spec.times.comm_in[s]));
                    }
                    // Charged at the expected (probability-weighted) cost.
                    ops.push(Op {
                        slot,
                        stage: s,
                        direction: spec.direction,
                        micro_batch: m,
                        kind: OpKind::SelfCondForward,
                        duration: spec.times.fwd[s] * spec.times.sc_scale,
                        deps,
                        priority: 0,
                    });
                }
                let mut deps = Vec::new();
                if s > 0 {
                    deps.push((f_id(s - 1, m), spec.times.comm_in[s]));
                }
                if spec.self_cond {
                    // The main pass follows the SC pass on the same stage.
                    // The feedback transfer `T_F` (Eqn. 18) is charged once
                    // per iteration by the partitioner's bound, not as a
                    // per-micro-batch round-trip dependency: the paper's
                    // Fig. 10 schedule runs both passes back-to-back per
                    // stage rather than waiting for the feedback to travel
                    // the whole pipeline for every micro-batch.
                    deps.push((sc_id(s, m), 0.0));
                }
                ops.push(Op {
                    slot,
                    stage: s,
                    direction: spec.direction,
                    micro_batch: m,
                    kind: OpKind::Forward,
                    duration: spec.times.fwd[s],
                    deps,
                    priority: 0,
                });
            }
        }
        for m in 0..m_count {
            for s in 0..s_count {
                let slot = spec.slots[s];
                let deps = if s == s_count - 1 {
                    vec![(f_id(s, m), 0.0)]
                } else {
                    vec![(b_id(s + 1, m), spec.times.comm_in[s + 1])]
                };
                ops.push(Op {
                    slot,
                    stage: s,
                    direction: spec.direction,
                    micro_batch: m,
                    kind: OpKind::Backward,
                    duration: spec.times.bwd[s],
                    deps,
                    priority: 0,
                });
            }
        }

        // Per-slot intended order for this pipeline.
        let mut seqs: Vec<Vec<usize>> = vec![Vec::new(); num_slots];
        for s in 0..s_count {
            let slot = spec.slots[s];
            let warmup = match spec.kind {
                ScheduleKind::Fifo1F1B => m_count.min(s_count - 1 - s),
                ScheduleKind::GPipe => m_count,
            };
            let push_fwd = |seq: &mut Vec<usize>, m: usize| {
                if spec.self_cond {
                    seq.push(sc_id(s, m).0);
                }
                seq.push(f_id(s, m).0);
            };
            let seq = &mut seqs[slot];
            for m in 0..warmup {
                push_fwd(seq, m);
            }
            for k in 0..(m_count - warmup) {
                push_fwd(seq, warmup + k);
                seq.push(b_id(s, k).0);
            }
            for m in (m_count - warmup)..m_count {
                seq.push(b_id(s, m).0);
            }
        }
        per_slot_seqs.push(seqs);
    }

    // Merge pipelines per slot: alternate, starting with the pipeline whose
    // parity matches the slot (spreads the two directions evenly).
    let mut merged: Vec<Vec<usize>> = vec![Vec::new(); num_slots];
    for slot in 0..num_slots {
        let mut lists: Vec<&[usize]> = per_slot_seqs.iter().map(|p| p[slot].as_slice()).collect();
        if specs.len() == 2 && slot % 2 == 1 {
            lists.swap(0, 1);
        }
        let mut idx = vec![0usize; lists.len()];
        loop {
            let mut progressed = false;
            for (li, list) in lists.iter().enumerate() {
                if idx[li] < list.len() {
                    merged[slot].push(list[idx[li]]);
                    idx[li] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    // Assign priorities from merged order.
    for seq in &merged {
        for (prio, &op_idx) in seq.iter().enumerate() {
            ops[op_idx].priority = prio;
        }
    }
    (ops, merged)
}

/// Simulates and packages the schedule.
fn finish(
    ops: Vec<Op>,
    _seqs: Vec<Vec<usize>>,
    num_slots: usize,
    micro_batch: f64,
    policy: Policy,
    all_times: &[StageTimes],
) -> Result<PipelineSchedule, ScheduleError> {
    let scheduled =
        simulate(&ops, num_slots, policy).map_err(|d| ScheduleError::Deadlock(d.remaining))?;

    // Slot replication: from the first pipeline covering each slot.
    let directions = [PipelineDirection::Down, PipelineDirection::Up];
    let mut slot_replication = vec![0usize; num_slots];
    for (ti, times) in all_times.iter().enumerate() {
        let dir = directions[ti.min(1)];
        for (s, &r) in times.replication.iter().enumerate() {
            // Stage s of this pipeline occupies some slot; find it from ops.
            let slot = scheduled
                .iter()
                .find(|o| o.op.stage == s && o.op.direction == dir)
                .map(|o| o.op.slot)
                .unwrap_or(s);
            if slot_replication[slot] == 0 {
                slot_replication[slot] = r;
            }
        }
    }
    for r in &mut slot_replication {
        if *r == 0 {
            *r = 1;
        }
    }

    // Gradient syncs: one per (pipeline, stage), starting at that stage's
    // last backward end.
    let mut syncs = Vec::new();
    let directions = [PipelineDirection::Down, PipelineDirection::Up];
    for (ti, times) in all_times.iter().enumerate() {
        let dir = directions[ti.min(1)];
        for s in 0..times.num_stages() {
            let last_bwd = scheduled
                .iter()
                .filter(|o| {
                    o.op.kind == OpKind::Backward && o.op.stage == s && o.op.direction == dir
                })
                .map(|o| o.end)
                .fold(0.0, f64::max);
            let slot = scheduled
                .iter()
                .find(|o| o.op.stage == s && o.op.direction == dir)
                .map(|o| o.op.slot)
                .unwrap_or(s);
            syncs.push(SyncOp {
                slot,
                direction: dir,
                start: last_bwd,
                duration: times.sync[s],
            });
        }
    }

    let group_batch: f64 = all_times
        .iter()
        .map(|t| t.micro_batch * t.num_micro_batches as f64)
        .sum();
    Ok(PipelineSchedule {
        ops: scheduled,
        syncs,
        num_slots,
        slot_replication,
        micro_batch,
        group_batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduledOp;
    use dpipe_model::zoo;
    use dpipe_partition::{PartitionConfig, Partitioner};
    use dpipe_profile::{DeviceModel, Profiler};

    struct Fixture {
        db: ProfileDb,
        cluster: ClusterSpec,
    }

    fn fixture(model: dpipe_model::ModelSpec, devices: usize, batch: u32) -> Fixture {
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        Fixture {
            db,
            cluster: ClusterSpec::single_node(devices),
        }
    }

    fn single_schedule(
        model: dpipe_model::ModelSpec,
        stages: usize,
        micro: usize,
        kind: ScheduleKind,
    ) -> PipelineSchedule {
        let f = fixture(model, stages, 64);
        let layout = DataParallelLayout::new(&f.cluster, stages).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let bb = f.db.model().backbones().next().unwrap().0;
        let plan = p
            .partition_single(bb, &PartitionConfig::new(stages, micro, 64.0))
            .unwrap();
        ScheduleBuilder::new(&f.db, &f.cluster, &layout)
            .build_single(&plan, kind)
            .unwrap()
    }

    #[test]
    fn fifo_1f1b_is_consistent() {
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let s = single_schedule(m, 4, 4, ScheduleKind::Fifo1F1B);
        s.check_consistency().unwrap();
        assert_eq!(s.ops.len(), 4 * 4 * 2); // F + B per (stage, mb)
    }

    #[test]
    fn gpipe_matches_analytic_makespan_for_uniform_stages() {
        // Uniform stages, no comm: GPipe forward phase = (M + S - 1) * f,
        // backward phase = (M + S - 1) * b.
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let s = single_schedule(m, 4, 4, ScheduleKind::GPipe);
        s.check_consistency().unwrap();
        let f = s.ops_of_kind(OpKind::Forward).next().unwrap();
        let fdur = f.end - f.start;
        let expected_fwd_phase = (4.0 + 3.0) * fdur;
        let last_fwd_end = s
            .ops_of_kind(OpKind::Forward)
            .map(|o| o.end)
            .fold(0.0, f64::max);
        assert!(
            (last_fwd_end - expected_fwd_phase).abs() < expected_fwd_phase * 0.05,
            "last_fwd_end={last_fwd_end} expected={expected_fwd_phase}"
        );
    }

    #[test]
    fn one_f1b_matches_gpipe_makespan() {
        // Non-interleaved 1F1B and GPipe have the same ideal bubble time
        // (S-1)(f+b); 1F1B's advantage is activation memory, not makespan.
        // Communication asymmetries may tip either way by a small margin.
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let s1 = single_schedule(m.clone(), 4, 4, ScheduleKind::Fifo1F1B);
        let s2 = single_schedule(m, 4, 4, ScheduleKind::GPipe);
        let rel = (s1.compute_end() - s2.compute_end()).abs() / s2.compute_end();
        assert!(
            rel < 0.05,
            "1F1B {} vs GPipe {}",
            s1.compute_end(),
            s2.compute_end()
        );
    }

    #[test]
    fn bubble_ratio_decreases_with_micro_batches() {
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let r1 = single_schedule(m.clone(), 4, 1, ScheduleKind::Fifo1F1B).bubble_ratio();
        let r4 = single_schedule(m.clone(), 4, 4, ScheduleKind::Fifo1F1B).bubble_ratio();
        let r8 = single_schedule(m, 4, 8, ScheduleKind::Fifo1F1B).bubble_ratio();
        assert!(r1 > r4 && r4 > r8, "r1={r1} r4={r4} r8={r8}");
    }

    #[test]
    fn self_conditioning_adds_double_forwards() {
        let m = zoo::synthetic_model(8, 10.0, &[1.0], true);
        let s = single_schedule(m, 2, 2, ScheduleKind::Fifo1F1B);
        s.check_consistency().unwrap();
        let n_sc = s.ops_of_kind(OpKind::SelfCondForward).count();
        let n_f = s.ops_of_kind(OpKind::Forward).count();
        assert_eq!(n_sc, n_f);
        // On every stage the SC pass of a micro-batch completes before the
        // main pass of that micro-batch starts (Fig. 10's back-to-back
        // double forward).
        for o in s.ops.iter().filter(|o| o.op.kind == OpKind::Forward) {
            let sc_end = s
                .ops
                .iter()
                .find(|x| {
                    x.op.kind == OpKind::SelfCondForward
                        && x.op.stage == o.op.stage
                        && x.op.micro_batch == o.op.micro_batch
                })
                .unwrap()
                .end;
            assert!(o.start + 1e-9 >= sc_end);
        }
    }

    #[test]
    fn bidirectional_schedules_two_pipelines() {
        let model = zoo::cdm_lsun();
        let f = fixture(model, 4, 64);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let mut bbs = f.db.model().backbones().map(|(id, _)| id);
        let b0 = bbs.next().unwrap();
        let b1 = bbs.next().unwrap();
        let plan = p
            .partition_bidirectional(b0, b1, &PartitionConfig::new(4, 4, 64.0))
            .unwrap();
        let s = ScheduleBuilder::new(&f.db, &f.cluster, &layout)
            .build_bidirectional(&plan)
            .unwrap();
        s.check_consistency().unwrap();
        let down_ops = s
            .ops
            .iter()
            .filter(|o| o.op.direction == PipelineDirection::Down)
            .count();
        let up_ops = s
            .ops
            .iter()
            .filter(|o| o.op.direction == PipelineDirection::Up)
            .count();
        assert_eq!(down_ops, 4 * 4 * 2);
        assert_eq!(up_ops, 4 * 4 * 2);
        // Bidirectional fills the counterpart's bubbles: ratio far below a
        // single unidirectional pipeline at M = S.
        assert!(s.bubble_ratio() < 0.45, "ratio = {}", s.bubble_ratio());
    }

    #[test]
    fn bidirectional_group_batch_counts_both_backbones() {
        let model = zoo::cdm_lsun();
        let f = fixture(model, 4, 64);
        let layout = DataParallelLayout::new(&f.cluster, 4).unwrap();
        let p = Partitioner::new(&f.db, &f.cluster, &layout);
        let mut bbs = f.db.model().backbones().map(|(id, _)| id);
        let plan = p
            .partition_bidirectional(
                bbs.next().unwrap(),
                bbs.next().unwrap(),
                &PartitionConfig::new(2, 2, 64.0),
            )
            .unwrap();
        let s = ScheduleBuilder::new(&f.db, &f.cluster, &layout)
            .build_bidirectional(&plan)
            .unwrap();
        assert_eq!(s.group_batch, 128.0);
    }

    #[test]
    fn warmup_structure_matches_fig2() {
        // Stage 0 of a 4-stage pipeline does 3 warmup forwards before its
        // first backward.
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let s = single_schedule(m, 4, 4, ScheduleKind::Fifo1F1B);
        let mut slot0: Vec<&ScheduledOp> = s.ops.iter().filter(|o| o.op.slot == 0).collect();
        slot0.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        let kinds: Vec<OpKind> = slot0.iter().map(|o| o.op.kind).collect();
        assert_eq!(
            &kinds[..5],
            &[
                OpKind::Forward,
                OpKind::Forward,
                OpKind::Forward,
                OpKind::Forward,
                OpKind::Backward
            ]
        );
    }

    #[test]
    fn sync_starts_after_last_backward() {
        let m = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let s = single_schedule(m, 2, 4, ScheduleKind::Fifo1F1B);
        for sync in &s.syncs {
            let last_bwd = s
                .ops
                .iter()
                .filter(|o| o.op.kind == OpKind::Backward && o.op.slot == sync.slot)
                .map(|o| o.end)
                .fold(0.0, f64::max);
            assert!((sync.start - last_bwd).abs() < 1e-12);
        }
        assert!(s.iteration_time() >= s.compute_end());
    }
}
