//! Per-stage execution times derived from a partition plan and the profile
//! database.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_partition::PartitionPlan;
use dpipe_profile::ProfileDb;
use serde::{Deserialize, Serialize};

/// Concrete per-micro-batch stage times for one pipelined backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Forward time per stage (one micro-batch at local batch `B̄/r`).
    pub fwd: Vec<f64>,
    /// Backward time per stage.
    pub bwd: Vec<f64>,
    /// Communication delay feeding stage `s` from stage `s-1` (index 0 is 0).
    pub comm_in: Vec<f64>,
    /// Self-conditioning feedback delay (last stage → stage 0).
    pub feedback: f64,
    /// Gradient synchronisation time `T_S(s)` per stage.
    pub sync: Vec<f64>,
    /// Replication degree per stage.
    pub replication: Vec<usize>,
    /// Micro-batch size.
    pub micro_batch: f64,
    /// Number of micro-batches.
    pub num_micro_batches: usize,
    /// Self-conditioning probability: the extra forward pass and its
    /// feedback transfer are charged at this expected fraction of their
    /// full cost (0 when self-conditioning is off).
    pub sc_scale: f64,
}

impl StageTimes {
    /// Computes stage times for a partition plan.
    ///
    /// Stage replicas run in lockstep, so one timeline per stage suffices;
    /// `comm_in[s]` uses the p2p link between the last device of stage `s-1`
    /// and the first device of stage `s` in group 0.
    pub fn from_plan(
        db: &ProfileDb,
        cluster: &ClusterSpec,
        layout: &DataParallelLayout,
        plan: &PartitionPlan,
    ) -> Self {
        Self::from_plan_classed(std::slice::from_ref(db), cluster, layout, plan)
    }

    /// [`StageTimes::from_plan`] with one [`ProfileDb`] per device class
    /// (class order of [`dpipe_cluster::ClusterSpec::class_map`]): each
    /// stage's compute is timed on the effective class of the devices it
    /// lands on — the slowest class among its replicas across every
    /// pipeline group, matching the partitioner's cost model. A single-
    /// element slice reproduces [`StageTimes::from_plan`] exactly.
    pub fn from_plan_classed(
        dbs: &[ProfileDb],
        cluster: &ClusterSpec,
        layout: &DataParallelLayout,
        plan: &PartitionPlan,
    ) -> Self {
        let db = &dbs[0];
        let comm = cluster.comm_model();
        let class_map = cluster.class_map();
        let db_for_stage = |stage: &dpipe_partition::StagePlan| -> &ProfileDb {
            let class = class_map
                .effective_class(layout.groups.iter().flat_map(|g| stage.devices_in_group(g)));
            dbs.get(class).unwrap_or(db)
        };
        let group0 = &layout.groups[0];
        let s_count = plan.stages.len();
        let mut fwd = Vec::with_capacity(s_count);
        let mut bwd = Vec::with_capacity(s_count);
        let mut comm_in = Vec::with_capacity(s_count);
        let mut sync = Vec::with_capacity(s_count);
        let mut replication = Vec::with_capacity(s_count);
        for (i, stage) in plan.stages.iter().enumerate() {
            let stage_db = db_for_stage(stage);
            let local = stage.local_batch(plan.micro_batch);
            fwd.push(stage_db.fwd_time_range(stage.component, stage.layers.clone(), local));
            bwd.push(stage_db.bwd_time_range(stage.component, stage.layers.clone(), local));
            replication.push(stage.replication);
            if i == 0 {
                comm_in.push(0.0);
            } else {
                let prev = &plan.stages[i - 1];
                let src = *prev
                    .devices_in_group(group0)
                    .last()
                    // dpipe-analyze: allow(no-panic) -- every planned stage owns at least one device in each group by construction
                    .expect("stage has devices");
                let dst = stage.devices_in_group(group0)[0];
                let bytes = db.boundary_bytes(
                    stage.component,
                    dpipe_model::LayerId(stage.layers.start.saturating_sub(1)),
                    local,
                );
                comm_in.push(comm.p2p_time(bytes, src, dst));
            }
            // Gradient sync across this stage's replicas in every group.
            let mut devs = Vec::new();
            for g in &layout.groups {
                devs.extend(stage.devices_in_group(g));
            }
            let grad = db.grad_bytes_range(stage.component, stage.layers.clone());
            sync.push(comm.allreduce_time(grad, &devs));
        }
        // Feedback: last stage output back to stage 0 (self-conditioning).
        let feedback = if s_count > 1 {
            // dpipe-analyze: allow(no-panic) -- guarded by s_count > 1 just above
            let last_stage = plan.stages.last().expect("non-empty plan");
            let src = *last_stage
                .devices_in_group(group0)
                .last()
                // dpipe-analyze: allow(no-panic) -- every planned stage owns at least one device in each group by construction
                .expect("stage has devices");
            let dst = plan.stages[0].devices_in_group(group0)[0];
            let bytes = db.output_bytes(
                last_stage.component,
                last_stage.local_batch(plan.micro_batch),
            );
            comm.p2p_time(bytes, src, dst)
        } else {
            0.0
        };
        StageTimes {
            fwd,
            bwd,
            comm_in,
            feedback,
            sync,
            replication,
            micro_batch: plan.micro_batch,
            num_micro_batches: plan.num_micro_batches,
            sc_scale: db
                .model()
                .self_conditioning
                .map_or(0.0, |sc| sc.probability),
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.fwd.len()
    }

    /// Total compute time of one micro-batch through the whole pipeline.
    pub fn micro_batch_compute(&self) -> f64 {
        self.fwd.iter().sum::<f64>() + self.bwd.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_partition::{PartitionConfig, Partitioner};
    use dpipe_profile::{DeviceModel, Profiler};

    fn times(stages: usize, micro: usize) -> StageTimes {
        let model = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let p = Partitioner::new(&db, &cluster, &layout);
        let bb = model.backbones().next().unwrap().0;
        let plan = p
            .partition_single(bb, &PartitionConfig::new(stages, micro, 64.0))
            .unwrap();
        StageTimes::from_plan(&db, &cluster, &layout, &plan)
    }

    #[test]
    fn shapes_match_plan() {
        let t = times(4, 4);
        assert_eq!(t.num_stages(), 4);
        assert_eq!(t.comm_in[0], 0.0);
        assert!(t.comm_in[1] > 0.0);
        assert!(t.fwd.iter().all(|&f| f > 0.0));
        assert!(t.bwd.iter().all(|&b| b > 0.0));
        assert!(t.sync.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn bwd_roughly_double_fwd() {
        let t = times(2, 4);
        for (f, b) in t.fwd.iter().zip(&t.bwd) {
            assert!((b / f - 2.0).abs() < 0.05, "b/f = {}", b / f);
        }
    }

    #[test]
    fn single_stage_has_no_feedback_or_comm() {
        let t = times(1, 4);
        assert_eq!(t.feedback, 0.0);
        assert_eq!(t.comm_in, vec![0.0]);
    }

    #[test]
    fn micro_batch_compute_sums() {
        let t = times(2, 2);
        let total: f64 = t.fwd.iter().chain(&t.bwd).sum();
        assert!((t.micro_batch_compute() - total).abs() < 1e-15);
    }
}
