//! Pipeline schedules and bubble extraction.
//!
//! Builds the per-device operation orders for FIFO-1F1B (paper Fig. 2),
//! GPipe, and bidirectional (Chimera-style, Fig. 3) pipelines — including
//! the self-conditioning double-forward of Fig. 10 — and simulates them with
//! a deterministic list scheduler to obtain exact start/end times, iteration
//! time, and the pipeline bubbles as `(start, end, idle devices)` tuples
//! (paper §5).
//!
//! # Example
//!
//! ```
//! use dpipe_cluster::{ClusterSpec, DataParallelLayout};
//! use dpipe_model::zoo;
//! use dpipe_partition::{PartitionConfig, Partitioner};
//! use dpipe_profile::{DeviceModel, Profiler};
//! use dpipe_schedule::{ScheduleBuilder, ScheduleKind};
//!
//! let model = zoo::stable_diffusion_v2_1();
//! let cluster = ClusterSpec::single_node(8);
//! let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
//! let layout = DataParallelLayout::new(&cluster, 8).unwrap();
//! let part = Partitioner::new(&db, &cluster, &layout);
//! let bb = model.backbones().next().unwrap().0;
//! let plan = part
//!     .partition_single(bb, &PartitionConfig::new(4, 4, 64.0))
//!     .unwrap();
//! let sched = ScheduleBuilder::new(&db, &cluster, &layout)
//!     .build_single(&plan, ScheduleKind::Fifo1F1B)
//!     .unwrap();
//! assert!(sched.iteration_time() > 0.0);
//! assert!(!sched.bubbles(0.0).is_empty());
//! ```

mod bubble;
mod builder;
mod op;
mod render;
mod schedule;
mod simulate;
mod stage_times;

pub use bubble::{extract_bubbles, Bubble};
pub use builder::{ScheduleBuilder, ScheduleError, ScheduleKind};
pub use op::{Op, OpId, OpKind, PipelineDirection};
pub use render::render_timeline;
pub use schedule::{PipelineSchedule, ScheduledOp};
pub use stage_times::StageTimes;
