//! Pipeline bubble extraction.

use serde::{Deserialize, Serialize};

/// A pipeline bubble: a maximal time span during which a fixed set of chain
/// slots is idle (paper §5's `(start time, end time, idle devices)` tuple).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bubble {
    /// Start time (seconds from iteration start).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Idle chain slots.
    pub slots: Vec<usize>,
    /// Total idle devices (sum of slot replications).
    pub devices: usize,
}

impl Bubble {
    /// Bubble duration `T_B`.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Device-seconds of idleness this bubble represents.
    pub fn device_seconds(&self) -> f64 {
        self.duration() * self.devices as f64
    }
}

/// Extracts bubbles from per-slot busy intervals within `[0, window_end]`.
///
/// `busy[slot]` must be sorted, non-overlapping `(start, end)` intervals.
/// `replication[slot]` converts slots to device counts. Bubbles shorter than
/// `min_duration` are discarded (the paper ignores bubbles under 10 ms,
/// which do not amortise the setup cost of bubble filling).
pub fn extract_bubbles(
    busy: &[Vec<(f64, f64)>],
    replication: &[usize],
    window_end: f64,
    min_duration: f64,
) -> Vec<Bubble> {
    let num_slots = busy.len();
    assert_eq!(num_slots, replication.len());
    // Elementary boundaries: all interval edges plus window edges.
    let mut bounds: Vec<f64> = vec![0.0, window_end];
    for slot in busy {
        for &(s, e) in slot {
            bounds.push(s.clamp(0.0, window_end));
            bounds.push(e.clamp(0.0, window_end));
        }
    }
    bounds.sort_by(f64::total_cmp);
    bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // For each elementary interval, the set of idle slots.
    let mut raw: Vec<(f64, f64, Vec<usize>)> = Vec::new();
    for w in bounds.windows(2) {
        let (s, e) = (w[0], w[1]);
        if e - s <= 1e-12 {
            continue;
        }
        let mid = 0.5 * (s + e);
        let idle: Vec<usize> = (0..num_slots)
            .filter(|&slot| !busy[slot].iter().any(|&(bs, be)| bs <= mid && mid < be))
            .collect();
        if idle.is_empty() {
            continue;
        }
        // Merge with previous if same idle set and contiguous.
        if let Some(last) = raw.last_mut() {
            if (last.1 - s).abs() < 1e-12 && last.2 == idle {
                last.1 = e;
                continue;
            }
        }
        raw.push((s, e, idle));
    }

    raw.into_iter()
        .filter(|(s, e, _)| e - s >= min_duration)
        .map(|(start, end, slots)| {
            let devices = slots.iter().map(|&s| replication[s]).sum();
            Bubble {
                start,
                end,
                slots,
                devices,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_slot_staircase() {
        // Slot 0 busy [0,1], slot 1 busy [1,2]; window [0,2].
        let busy = vec![vec![(0.0, 1.0)], vec![(1.0, 2.0)]];
        let bubbles = extract_bubbles(&busy, &[1, 1], 2.0, 0.0);
        assert_eq!(bubbles.len(), 2);
        assert_eq!(bubbles[0].slots, vec![1]);
        assert_eq!(bubbles[0].start, 0.0);
        assert_eq!(bubbles[0].end, 1.0);
        assert_eq!(bubbles[1].slots, vec![0]);
        assert_eq!(bubbles[1].start, 1.0);
    }

    #[test]
    fn replication_multiplies_devices() {
        let busy = vec![vec![(0.0, 1.0)], vec![]];
        let bubbles = extract_bubbles(&busy, &[2, 4], 1.0, 0.0);
        assert_eq!(bubbles.len(), 1);
        assert_eq!(bubbles[0].devices, 4);
        assert_eq!(bubbles[0].device_seconds(), 4.0);
    }

    #[test]
    fn min_duration_filters() {
        let busy = vec![vec![(0.0, 0.99), (1.0, 2.0)]];
        let all = extract_bubbles(&busy, &[1], 2.0, 0.0);
        assert_eq!(all.len(), 1);
        let none = extract_bubbles(&busy, &[1], 2.0, 0.1);
        assert!(none.is_empty());
    }

    #[test]
    fn idle_set_changes_split_bubbles() {
        // Slot 0 busy [0,1]; slot 1 busy [0,2]; window [0,3].
        // [1,2): only slot 0 idle; [2,3): both idle — two distinct bubbles.
        let busy = vec![vec![(0.0, 1.0)], vec![(0.0, 2.0)]];
        let bubbles = extract_bubbles(&busy, &[1, 1], 3.0, 0.0);
        assert_eq!(bubbles.len(), 2);
        assert_eq!(bubbles[0].slots, vec![0]);
        assert_eq!(bubbles[1].slots, vec![0, 1]);
    }

    #[test]
    fn fully_busy_has_no_bubbles() {
        let busy = vec![vec![(0.0, 2.0)], vec![(0.0, 2.0)]];
        assert!(extract_bubbles(&busy, &[1, 1], 2.0, 0.0).is_empty());
    }

    #[test]
    fn fully_idle_is_one_bubble() {
        let busy: Vec<Vec<(f64, f64)>> = vec![vec![], vec![]];
        let bubbles = extract_bubbles(&busy, &[1, 1], 5.0, 0.0);
        assert_eq!(bubbles.len(), 1);
        assert_eq!(bubbles[0].duration(), 5.0);
        assert_eq!(bubbles[0].devices, 2);
    }
}
