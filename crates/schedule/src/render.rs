//! ASCII rendering of pipeline timelines (the Fig. 2/3/10-style charts).

use crate::op::{OpKind, PipelineDirection};
use crate::schedule::PipelineSchedule;

/// Renders the schedule as one text row per chain slot, with forward cells
/// as the micro-batch digit, self-conditioning forwards as `s`, backwards
/// as letters (`a` = micro-batch 0), and idle time as `.`.
///
/// `width` is the number of character columns the iteration is scaled to.
pub fn render_timeline(schedule: &PipelineSchedule, width: usize) -> String {
    let end = schedule.iteration_time();
    if end <= 0.0 || width == 0 {
        return String::new();
    }
    let col = |t: f64| ((t / end) * width as f64).floor() as usize;
    let mut rows: Vec<Vec<char>> = vec![vec!['.'; width + 1]; schedule.num_slots];
    for op in &schedule.ops {
        let (c0, c1) = (col(op.start), col(op.end).max(col(op.start) + 1));
        let ch = match (op.op.kind, op.op.direction) {
            (OpKind::Forward, PipelineDirection::Down) => {
                char::from_digit((op.op.micro_batch % 10) as u32, 10).unwrap_or('?')
            }
            (OpKind::Forward, PipelineDirection::Up) => {
                // Up-pipeline forwards render as digits too but offset by
                // the micro-batch count is unknown here; use the same digit
                // with a marker row prefix instead.
                char::from_digit((op.op.micro_batch % 10) as u32, 10).unwrap_or('?')
            }
            (OpKind::SelfCondForward, _) => 's',
            (OpKind::Backward, _) => (b'a' + (op.op.micro_batch % 26) as u8) as char,
        };
        for cell in rows[op.op.slot].iter_mut().take(c1.min(width + 1)).skip(c0) {
            *cell = ch;
        }
    }
    // Mark sync spans with '=' where idle.
    for sync in &schedule.syncs {
        let (c0, c1) = (col(sync.start), col(sync.start + sync.duration));
        for cell in rows[sync.slot].iter_mut().take(c1.min(width + 1)).skip(c0) {
            if *cell == '.' {
                *cell = '=';
            }
        }
    }
    let mut out = String::new();
    for (slot, row) in rows.iter().enumerate() {
        out.push_str(&format!("slot {slot:>2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "         ({width} cols = {:.1} ms; digits=fwd, letters=bwd, s=self-cond, ==sync, .=idle)\n",
        end * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ScheduleBuilder, ScheduleKind};
    use dpipe_cluster::{ClusterSpec, DataParallelLayout};
    use dpipe_model::zoo;
    use dpipe_partition::{PartitionConfig, Partitioner};
    use dpipe_profile::{DeviceModel, Profiler};

    fn render(stages: usize, micro: usize) -> String {
        let model = zoo::synthetic_model(8, 10.0, &[1.0], false);
        let cluster = ClusterSpec::single_node(stages);
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 32);
        let layout = DataParallelLayout::new(&cluster, stages).unwrap();
        let bb = db.model().backbones().next().unwrap().0;
        let plan = Partitioner::new(&db, &cluster, &layout)
            .partition_single(bb, &PartitionConfig::new(stages, micro, 32.0))
            .unwrap();
        let sched = ScheduleBuilder::new(&db, &cluster, &layout)
            .build_single(&plan, ScheduleKind::Fifo1F1B)
            .unwrap();
        render_timeline(&sched, 60)
    }

    #[test]
    fn renders_one_row_per_slot() {
        let s = render(4, 4);
        assert_eq!(s.lines().filter(|l| l.starts_with("slot")).count(), 4);
    }

    #[test]
    fn contains_forward_and_backward_glyphs() {
        let s = render(2, 2);
        assert!(s.contains('0') && s.contains('1'));
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn staircase_shape_visible() {
        // Later slots start idle (warm-up bubbles): row for the last slot
        // begins with dots.
        let s = render(4, 4);
        let last = s.lines().nth(3).unwrap();
        let after_bar = last.split('|').nth(1).unwrap();
        assert!(after_bar.starts_with('.'), "{last}");
    }

    #[test]
    fn empty_schedule_renders_empty() {
        let sched = PipelineSchedule {
            ops: vec![],
            syncs: vec![],
            num_slots: 0,
            slot_replication: vec![],
            micro_batch: 0.0,
            group_batch: 0.0,
        };
        assert!(render_timeline(&sched, 40).is_empty());
    }
}
