//! Simulated pipeline schedules.

use crate::bubble::{extract_bubbles, Bubble};
use crate::op::{Op, OpKind, PipelineDirection};
use serde::{Deserialize, Serialize};

/// An operation with simulated start/end times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The operation.
    pub op: Op,
    /// Start time in seconds from iteration start.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// A gradient synchronisation (pipeline flush) for one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncOp {
    /// Chain slot whose stage synchronises.
    pub slot: usize,
    /// Pipeline direction of the synchronising stage.
    pub direction: PipelineDirection,
    /// Start time (after the stage's last backward).
    pub start: f64,
    /// Duration `T_S(s)`.
    pub duration: f64,
}

/// A fully simulated pipeline iteration: timed compute ops, per-stage
/// gradient syncs, and bubble accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// All compute ops with times.
    pub ops: Vec<ScheduledOp>,
    /// Gradient syncs (do not occupy the compute timeline; overlappable).
    pub syncs: Vec<SyncOp>,
    /// Number of chain slots (device positions per pipeline group).
    pub num_slots: usize,
    /// Devices per slot (stage replication).
    pub slot_replication: Vec<usize>,
    /// Micro-batch size.
    pub micro_batch: f64,
    /// Batch processed by the group per iteration (all pipelines combined).
    pub group_batch: f64,
}

impl PipelineSchedule {
    /// End of the last compute op.
    pub fn compute_end(&self) -> f64 {
        self.ops.iter().map(|o| o.end).fold(0.0, f64::max)
    }

    /// End of the last gradient sync.
    pub fn sync_end(&self) -> f64 {
        self.syncs
            .iter()
            .map(|s| s.start + s.duration)
            .fold(0.0, f64::max)
    }

    /// Iteration time: compute and synchronisation must both finish.
    pub fn iteration_time(&self) -> f64 {
        self.compute_end().max(self.sync_end())
    }

    /// Total devices in the pipeline group.
    pub fn total_devices(&self) -> usize {
        self.slot_replication.iter().sum()
    }

    /// Per-slot busy intervals, sorted by start.
    pub fn busy_intervals(&self) -> Vec<Vec<(f64, f64)>> {
        let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.num_slots];
        for o in &self.ops {
            busy[o.op.slot].push((o.start, o.end));
        }
        for list in &mut busy {
            list.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
        busy
    }

    /// Pipeline bubbles within `[0, iteration_time]`, ignoring bubbles
    /// shorter than `min_duration` seconds (the paper uses 10 ms).
    pub fn bubbles(&self, min_duration: f64) -> Vec<Bubble> {
        extract_bubbles(
            &self.busy_intervals(),
            &self.slot_replication,
            self.iteration_time(),
            min_duration,
        )
    }

    /// Bubble ratio per the paper's §6 metric:
    /// `Σ_b T_b · d_b / (iteration_time · total_devices)`.
    pub fn bubble_ratio(&self) -> f64 {
        let iter = self.iteration_time();
        if iter <= 0.0 {
            return 0.0;
        }
        let idle: f64 = self.bubbles(0.0).iter().map(Bubble::device_seconds).sum();
        idle / (iter * self.total_devices() as f64)
    }

    /// Ops of a given kind, convenient for tests.
    pub fn ops_of_kind(&self, kind: OpKind) -> impl Iterator<Item = &ScheduledOp> {
        self.ops.iter().filter(move |o| o.op.kind == kind)
    }

    /// Validates the schedule: ops on one slot never overlap, and every
    /// dependency finishes (plus its delay) before the dependent starts.
    pub fn check_consistency(&self) -> Result<(), String> {
        let busy = self.busy_intervals();
        for (slot, list) in busy.iter().enumerate() {
            for w in list.windows(2) {
                if w[1].0 < w[0].1 - 1e-9 {
                    return Err(format!("slot {slot}: overlapping ops {w:?}"));
                }
            }
        }
        // Dependency check requires op ids = input order.
        for o in &self.ops {
            for &(dep, delay) in &o.op.deps {
                let d = &self.ops[dep.0];
                if o.start + 1e-9 < d.end + delay {
                    return Err(format!(
                        "op on slot {} starts {} before dep end {} + delay {delay}",
                        o.op.slot, o.start, d.end
                    ));
                }
            }
        }
        Ok(())
    }
}
