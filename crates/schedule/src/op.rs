//! Pipeline operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation within one schedule.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OpId(pub usize);

/// Which pipeline a stage belongs to (bidirectional schedules run two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineDirection {
    /// Chain offset 0 → end (the only direction for single backbones).
    Down,
    /// Chain end → offset 0.
    Up,
}

/// What an operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass of a micro-batch through one stage.
    Forward,
    /// Self-conditioning (extra) forward pass.
    SelfCondForward,
    /// Backward pass of a micro-batch through one stage.
    Backward,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Forward => f.write_str("F"),
            OpKind::SelfCondForward => f.write_str("SF"),
            OpKind::Backward => f.write_str("B"),
        }
    }
}

/// One pipeline operation before simulation: where it runs, how long it
/// takes, and which ops (plus communication delays) must precede it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Chain slot (device position within the pipeline group) the op runs on.
    pub slot: usize,
    /// Stage index within its own pipeline.
    pub stage: usize,
    /// Pipeline direction.
    pub direction: PipelineDirection,
    /// Micro-batch index.
    pub micro_batch: usize,
    /// Kind of work.
    pub kind: OpKind,
    /// Execution time in seconds.
    pub duration: f64,
    /// Dependencies: `(op, delay)` — the op may start `delay` seconds after
    /// the dependency finishes (the delay models inter-stage communication).
    pub deps: Vec<(OpId, f64)>,
    /// Position in its device's static execution order (lower runs first).
    pub priority: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_display() {
        assert_eq!(OpKind::Forward.to_string(), "F");
        assert_eq!(OpKind::SelfCondForward.to_string(), "SF");
        assert_eq!(OpKind::Backward.to_string(), "B");
    }

    #[test]
    fn op_id_ordering() {
        assert!(OpId(1) < OpId(2));
    }
}
