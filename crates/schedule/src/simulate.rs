//! Deterministic list scheduler for pipeline operations.

use crate::op::Op;
use crate::schedule::ScheduledOp;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Policy {
    /// Each device executes its ops strictly in priority order, waiting if
    /// the head op's dependencies are not met (how a static instruction
    /// stream behaves — used for FIFO-1F1B and GPipe).
    StrictOrder,
    /// Each device runs the lowest-priority *ready* op (work-conserving —
    /// used for bidirectional pipelines where two static orders interleave).
    WorkConserving,
}

/// Simulates `ops` over `num_slots` devices.
///
/// Returns scheduled ops in the input order. Fails if the dependency graph
/// deadlocks under the chosen policy.
pub(crate) fn simulate(
    ops: &[Op],
    num_slots: usize,
    policy: Policy,
) -> Result<Vec<ScheduledOp>, Deadlock> {
    let n = ops.len();
    let mut end: Vec<Option<f64>> = vec![None; n];
    let mut start: Vec<f64> = vec![0.0; n];
    // Per-slot op indices sorted by priority.
    let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); num_slots];
    for (i, op) in ops.iter().enumerate() {
        assert!(op.slot < num_slots, "op slot out of range");
        per_slot[op.slot].push(i);
    }
    for list in &mut per_slot {
        list.sort_by_key(|&i| ops[i].priority);
    }
    let mut cursor = vec![0usize; num_slots]; // strict-order head pointer
    let mut done = vec![false; n];
    let mut device_free = vec![0.0f64; num_slots];
    let mut remaining = n;

    let ready_time = |i: usize, end: &[Option<f64>]| -> Option<f64> {
        let mut t: f64 = 0.0;
        for &(dep, delay) in &ops[i].deps {
            match end[dep.0] {
                Some(e) => t = t.max(e + delay),
                None => return None,
            }
        }
        Some(t)
    };

    while remaining > 0 {
        // Gather one candidate per slot.
        let mut best: Option<(f64, usize, usize)> = None; // (start, priority, op)
        for slot in 0..num_slots {
            let candidate = match policy {
                Policy::StrictOrder => {
                    let c = cursor[slot];
                    if c >= per_slot[slot].len() {
                        continue;
                    }
                    let i = per_slot[slot][c];
                    ready_time(i, &end).map(|rt| (i, rt))
                }
                Policy::WorkConserving => per_slot[slot]
                    .iter()
                    .filter(|&&i| !done[i])
                    .filter_map(|&i| ready_time(i, &end).map(|rt| (i, rt)))
                    .min_by(|a, b| {
                        let ka = (a.1.max(device_free[ops[a.0].slot]), ops[a.0].priority);
                        let kb = (b.1.max(device_free[ops[b.0].slot]), ops[b.0].priority);
                        ka.0.total_cmp(&kb.0).then(ka.1.cmp(&kb.1))
                    }),
            };
            if let Some((i, rt)) = candidate {
                let s = rt.max(device_free[slot]);
                let key = (s, ops[i].priority, i);
                if best.is_none_or(|(bs, bp, bi)| key < (bs, bp, bi)) {
                    best = Some(key);
                }
            }
        }
        let Some((s, _, i)) = best else {
            return Err(Deadlock { remaining });
        };
        let slot = ops[i].slot;
        start[i] = s;
        end[i] = Some(s + ops[i].duration);
        device_free[slot] = s + ops[i].duration;
        done[i] = true;
        if policy == Policy::StrictOrder {
            cursor[slot] += 1;
        }
        remaining -= 1;
    }

    Ok(ops
        .iter()
        .enumerate()
        .map(|(i, op)| ScheduledOp {
            op: op.clone(),
            start: start[i],
            // dpipe-analyze: allow(no-panic) -- the loop above only returns Ok once every op has an end time; stalls exit via NoProgress
            end: end[i].expect("all ops scheduled"),
        })
        .collect())
}

/// The scheduler made no progress: some ops' dependencies can never be met
/// under the chosen policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Deadlock {
    /// Number of unscheduled ops at the point of deadlock.
    pub remaining: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpId, OpKind, PipelineDirection};

    fn op(slot: usize, priority: usize, duration: f64, deps: Vec<(OpId, f64)>) -> Op {
        Op {
            slot,
            stage: slot,
            direction: PipelineDirection::Down,
            micro_batch: 0,
            kind: OpKind::Forward,
            duration,
            deps,
            priority,
        }
    }

    #[test]
    fn chain_executes_sequentially() {
        let ops = vec![op(0, 0, 1.0, vec![]), op(1, 0, 1.0, vec![(OpId(0), 0.5)])];
        let s = simulate(&ops, 2, Policy::StrictOrder).unwrap();
        assert_eq!(s[0].start, 0.0);
        assert_eq!(s[1].start, 1.5);
        assert_eq!(s[1].end, 2.5);
    }

    #[test]
    fn device_serialises_ops() {
        let ops = vec![op(0, 0, 1.0, vec![]), op(0, 1, 2.0, vec![])];
        let s = simulate(&ops, 1, Policy::StrictOrder).unwrap();
        assert_eq!(s[1].start, 1.0);
    }

    #[test]
    fn strict_order_head_blocks() {
        // Head op waits on a dep; a later ready op must NOT run first.
        let ops = vec![
            op(0, 0, 5.0, vec![]),               // other device
            op(1, 0, 1.0, vec![(OpId(0), 0.0)]), // head, blocked until t=5
            op(1, 1, 1.0, vec![]),               // ready immediately but behind head
        ];
        let s = simulate(&ops, 2, Policy::StrictOrder).unwrap();
        assert_eq!(s[1].start, 5.0);
        assert_eq!(s[2].start, 6.0);
    }

    #[test]
    fn work_conserving_reorders() {
        let ops = vec![
            op(0, 0, 5.0, vec![]),
            op(1, 0, 1.0, vec![(OpId(0), 0.0)]),
            op(1, 1, 1.0, vec![]),
        ];
        let s = simulate(&ops, 2, Policy::WorkConserving).unwrap();
        assert_eq!(s[2].start, 0.0, "ready op runs first");
        assert_eq!(s[1].start, 5.0);
    }

    #[test]
    fn cyclic_deps_deadlock() {
        let ops = vec![
            op(0, 0, 1.0, vec![(OpId(1), 0.0)]),
            op(1, 0, 1.0, vec![(OpId(0), 0.0)]),
        ];
        let err = simulate(&ops, 2, Policy::StrictOrder).unwrap_err();
        assert_eq!(err.remaining, 2);
    }

    #[test]
    fn deterministic_tiebreak() {
        let ops = vec![op(0, 0, 1.0, vec![]), op(1, 0, 1.0, vec![])];
        let a = simulate(&ops, 2, Policy::StrictOrder).unwrap();
        let b = simulate(&ops, 2, Policy::StrictOrder).unwrap();
        assert_eq!(
            a.iter().map(|o| o.start).collect::<Vec<_>>(),
            b.iter().map(|o| o.start).collect::<Vec<_>>()
        );
    }
}
