//! Property tests: schedules built from arbitrary synthetic models are
//! always consistent, and bubble extraction conserves time.

use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::zoo;
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_profile::{DeviceModel, Profiler};
use dpipe_schedule::{extract_bubbles, Bubble, ScheduleBuilder, ScheduleKind};
use proptest::prelude::*;

fn schedule_for(
    layers: usize,
    layer_ms: f64,
    stages: usize,
    micro: usize,
    self_cond: bool,
    kind: ScheduleKind,
) -> dpipe_schedule::PipelineSchedule {
    let model = zoo::synthetic_model(layers, layer_ms, &[1.0, 2.0], self_cond);
    let cluster = ClusterSpec::single_node(stages);
    let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 32);
    let layout = DataParallelLayout::new(&cluster, stages).unwrap();
    let bb = db.model().backbones().next().unwrap().0;
    let plan = Partitioner::new(&db, &cluster, &layout)
        .partition_single(bb, &PartitionConfig::new(stages, micro, 32.0))
        .unwrap();
    ScheduleBuilder::new(&db, &cluster, &layout)
        .build_single(&plan, kind)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (stages, micro, self-cond, kind) combination yields a schedule
    /// whose ops never overlap on a device and respect dependencies.
    #[test]
    fn schedules_are_always_consistent(
        stages in 1usize..5,
        micro in 1usize..6,
        self_cond in any::<bool>(),
        gpipe in any::<bool>(),
        layer_ms in 1.0f64..40.0,
    ) {
        let layers = stages.max(2) * 2;
        let kind = if gpipe { ScheduleKind::GPipe } else { ScheduleKind::Fifo1F1B };
        let s = schedule_for(layers, layer_ms, stages, micro, self_cond, kind);
        prop_assert!(s.check_consistency().is_ok());
        // Op count: (1 + sc) forwards + 1 backward per (stage, micro).
        let per = if self_cond { 3 } else { 2 };
        prop_assert_eq!(s.ops.len(), per * stages * micro);
        prop_assert!(s.compute_end() > 0.0);
        prop_assert!(s.iteration_time() >= s.compute_end());
    }

    /// Busy time + bubble time = slots x window, for every schedule.
    #[test]
    fn bubble_extraction_conserves_time(
        stages in 2usize..5,
        micro in 1usize..5,
    ) {
        let s = schedule_for(stages * 2, 10.0, stages, micro, false, ScheduleKind::Fifo1F1B);
        let window = s.iteration_time();
        let busy: f64 = s
            .busy_intervals()
            .iter()
            .flat_map(|list| list.iter().map(|(a, b)| b - a))
            .sum();
        let idle: f64 = s.bubbles(0.0).iter().map(|b| b.duration() * b.slots.len() as f64).sum();
        let total = stages as f64 * window;
        prop_assert!(
            (busy + idle - total).abs() < 1e-6 * total.max(1.0),
            "busy {busy} + idle {idle} != {total}"
        );
    }

    /// Bubbles never overlap ops and are sorted chronologically.
    #[test]
    fn bubbles_are_chronological_and_disjoint_from_ops(
        stages in 2usize..5,
        micro in 1usize..5,
    ) {
        let s = schedule_for(stages * 2, 15.0, stages, micro, false, ScheduleKind::Fifo1F1B);
        let bubbles = s.bubbles(0.0);
        for w in bubbles.windows(2) {
            prop_assert!(w[0].start <= w[1].start + 1e-12);
        }
        let busy = s.busy_intervals();
        for b in &bubbles {
            let mid = 0.5 * (b.start + b.end);
            for &slot in &b.slots {
                let overlapping = busy[slot]
                    .iter()
                    .any(|&(s0, e0)| s0 <= mid && mid < e0);
                prop_assert!(!overlapping, "bubble overlaps op on slot {slot}");
            }
        }
    }

    /// extract_bubbles on random interval sets conserves idle device-time.
    #[test]
    fn extract_bubbles_random_intervals(
        intervals in proptest::collection::vec((0.0f64..10.0, 0.01f64..3.0, 0usize..3), 0..12),
        window in 10.0f64..14.0,
    ) {
        let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
        for (start, len, slot) in intervals {
            busy[slot].push((start, (start + len).min(window)));
        }
        // Normalise to sorted, non-overlapping by merging.
        for list in &mut busy {
            list.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for &(s, e) in list.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *list = merged;
        }
        let bubbles: Vec<Bubble> = extract_bubbles(&busy, &[1, 1, 1], window, 0.0);
        let busy_total: f64 = busy.iter().flat_map(|l| l.iter().map(|(a, b)| b - a)).sum();
        let idle_total: f64 = bubbles.iter().map(|b| b.duration() * b.devices as f64).sum();
        prop_assert!(
            (busy_total + idle_total - 3.0 * window).abs() < 1e-6,
            "busy {busy_total} idle {idle_total} window {window}"
        );
    }
}
