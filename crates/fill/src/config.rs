//! Bubble-filling configuration.

use serde::{Deserialize, Serialize};

/// Knobs for the bubble-filling algorithm, with the paper's defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillConfig {
    /// Bubbles shorter than this are ignored (§5 footnote: 10 ms, under
    /// which input/output setup cost is not amortised).
    pub min_bubble_seconds: f64,
    /// Allow partial-batch layers (disabling this is the Fig. 15 ablation).
    pub partial_batch: bool,
    /// Local-batch candidates for partial-batch layers (`b/d` values).
    pub local_batch_candidates: Vec<u32>,
    /// Fixed setup cost charged per bubble-filling item (input/output
    /// handling, Fig. 12); seconds.
    pub item_setup_seconds: f64,
}

impl Default for FillConfig {
    fn default() -> Self {
        FillConfig {
            min_bubble_seconds: 0.010,
            partial_batch: true,
            local_batch_candidates: vec![4, 8, 12, 16, 24, 32, 48, 64, 96],
            item_setup_seconds: 0.0002,
        }
    }
}

impl FillConfig {
    /// The Fig. 15 "partial-batch layer disabled" ablation.
    pub fn without_partial_batch(mut self) -> Self {
        self.partial_batch = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FillConfig::default();
        assert_eq!(c.min_bubble_seconds, 0.010);
        assert!(c.partial_batch);
        assert_eq!(
            c.local_batch_candidates,
            vec![4, 8, 12, 16, 24, 32, 48, 64, 96]
        );
    }

    #[test]
    fn ablation_toggle() {
        assert!(!FillConfig::default().without_partial_batch().partial_batch);
    }
}
