//! Bubble-filling results.

use dpipe_model::ComponentId;
use serde::{Deserialize, Serialize};

/// One scheduled piece of frozen work inside a bubble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillItem {
    /// Frozen component.
    pub component: ComponentId,
    /// Layer index within the component.
    pub layer: usize,
    /// Samples processed (the full batch for full-batch layers, fewer for
    /// partial-batch layers).
    pub samples: f64,
    /// Wall time this item occupies in the bubble.
    pub duration: f64,
    /// True if this is a partial-batch execution.
    pub partial: bool,
}

/// What one bubble got filled with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BubbleFill {
    /// Index into the input bubble list.
    pub bubble_index: usize,
    /// Bubble duration `T_B`.
    pub bubble_duration: f64,
    /// Idle devices `d`.
    pub devices: usize,
    /// Items scheduled in this bubble, in execution order.
    pub items: Vec<FillItem>,
}

impl BubbleFill {
    /// Total time occupied by the items.
    pub fn used_time(&self) -> f64 {
        self.items.iter().map(|i| i.duration).sum()
    }

    /// Unused bubble time.
    pub fn waste(&self) -> f64 {
        (self.bubble_duration - self.used_time()).max(0.0)
    }
}

/// Complete bubble-filling plan for one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillPlan {
    /// Per-bubble assignments (bubbles the algorithm considered).
    pub bubbles: Vec<BubbleFill>,
    /// Frozen work that did not fit, executed after the pipeline on all
    /// group devices; wall seconds.
    pub leftover_time: f64,
    /// Reference: total frozen forward time when run data-parallel on all
    /// group devices with no filling at all (the no-fill baseline tail).
    pub baseline_frozen_time: f64,
}

impl FillPlan {
    /// Total wall time of work placed inside bubbles.
    pub fn filled_time(&self) -> f64 {
        self.bubbles.iter().map(BubbleFill::used_time).sum()
    }

    /// Device-seconds of bubble idle time recovered.
    pub fn filled_device_seconds(&self) -> f64 {
        self.bubbles
            .iter()
            .map(|b| b.used_time() * b.devices as f64)
            .sum()
    }

    /// Fraction of considered bubble device-seconds that got filled.
    pub fn fill_ratio(&self) -> f64 {
        let total: f64 = self
            .bubbles
            .iter()
            .map(|b| b.bubble_duration * b.devices as f64)
            .sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.filled_device_seconds() / total
    }

    /// All partial-batch items across bubbles.
    pub fn partial_items(&self) -> impl Iterator<Item = &FillItem> {
        self.bubbles
            .iter()
            .flat_map(|b| b.items.iter())
            .filter(|i| i.partial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(dur: f64, partial: bool) -> FillItem {
        FillItem {
            component: ComponentId(0),
            layer: 0,
            samples: 8.0,
            duration: dur,
            partial,
        }
    }

    #[test]
    fn used_time_and_waste() {
        let b = BubbleFill {
            bubble_index: 0,
            bubble_duration: 1.0,
            devices: 2,
            items: vec![item(0.3, false), item(0.2, true)],
        };
        assert!((b.used_time() - 0.5).abs() < 1e-12);
        assert!((b.waste() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fill_ratio_weights_by_devices() {
        let plan = FillPlan {
            bubbles: vec![
                BubbleFill {
                    bubble_index: 0,
                    bubble_duration: 1.0,
                    devices: 1,
                    items: vec![item(1.0, false)],
                },
                BubbleFill {
                    bubble_index: 1,
                    bubble_duration: 1.0,
                    devices: 3,
                    items: vec![],
                },
            ],
            leftover_time: 0.0,
            baseline_frozen_time: 1.0,
        };
        assert!((plan.fill_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_items_filter() {
        let plan = FillPlan {
            bubbles: vec![BubbleFill {
                bubble_index: 0,
                bubble_duration: 1.0,
                devices: 1,
                items: vec![item(0.1, false), item(0.1, true), item(0.1, true)],
            }],
            leftover_time: 0.0,
            baseline_frozen_time: 1.0,
        };
        assert_eq!(plan.partial_items().count(), 2);
    }

    #[test]
    fn empty_plan_ratios() {
        let plan = FillPlan {
            bubbles: vec![],
            leftover_time: 0.0,
            baseline_frozen_time: 0.0,
        };
        assert_eq!(plan.fill_ratio(), 0.0);
        assert_eq!(plan.filled_time(), 0.0);
    }
}
