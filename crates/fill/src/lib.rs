//! Pipeline bubble filling (paper §5).
//!
//! Fills each pipeline bubble — `(start, end, idle devices)` tuples extracted
//! from the backbone schedule — with forward computation of the model's
//! frozen (non-trainable) components:
//!
//! * **Algorithm 2 (FFC)** recursively enumerates *full-batch* candidate
//!   layer sets across the ready components, bounded by the bubble time.
//! * **Algorithm 1** augments each candidate with at most one
//!   *partial-batch* layer (processing `b` of the batch's samples, with
//!   `b/d` drawn from the paper's ladder {4, 8, 12, 16, 24, 32, 48, 64, 96})
//!   and picks the candidate with the longest execution not exceeding the
//!   bubble time.
//! * A layer split by a partial batch re-enters subsequent bubbles as a
//!   full-batch layer on its *remaining* samples (paper Fig. 12).
//!
//! Components are scheduled in topological order of their dependency DAG;
//! whatever cannot be placed in bubbles runs after the pipeline (the
//! leftover tail). Filling is always planned in the cross-iteration style of
//! §3.2 — the bubbles of iteration `t` host the non-trainable work of
//! iteration `t+1`.
//!
//! # Example
//!
//! ```
//! use dpipe_fill::{FillConfig, Filler};
//! use dpipe_model::zoo;
//! use dpipe_profile::{DeviceModel, Profiler};
//! use dpipe_schedule::Bubble;
//!
//! let model = zoo::stable_diffusion_v2_1();
//! let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
//! let bubbles = vec![Bubble { start: 0.0, end: 0.5, slots: vec![1], devices: 4 }];
//! let plan = Filler::new(&db, FillConfig::default())
//!     .fill(&bubbles, 64.0, 8)
//!     .unwrap();
//! assert!(plan.filled_time() > 0.0);
//! ```

mod config;
mod ffc;
mod filler;
mod plan;
mod state;

pub use config::FillConfig;
pub use ffc::{ffc_candidates, Candidate};
pub use filler::{FillError, Filler};
pub use plan::{BubbleFill, FillItem, FillPlan};
pub use state::{ComponentProgress, FrozenState};
