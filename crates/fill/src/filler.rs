//! Algorithm 1 — filling pipeline bubbles with frozen components.

use crate::config::FillConfig;
use crate::ffc::{candidate_time, ffc_candidates, Candidate};
use crate::plan::{BubbleFill, FillItem, FillPlan};
use crate::state::FrozenState;
use dpipe_profile::ProfileDb;
use dpipe_schedule::Bubble;
use std::error::Error;
use std::fmt;

/// Partial-batch enhancement of a fill candidate: the position in the
/// ready list, the sample count, and the execution duration.
type Enhancement = (usize, f64, f64);

/// Bubble-filling errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FillError {
    /// The model's frozen dependency graph is cyclic.
    CyclicFrozenGraph,
    /// Batch or device counts were non-positive.
    DegenerateInput,
}

impl fmt::Display for FillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FillError::CyclicFrozenGraph => f.write_str("frozen component graph has a cycle"),
            FillError::DegenerateInput => f.write_str("batch and device count must be positive"),
        }
    }
}

impl Error for FillError {}

/// The bubble-filling planner.
///
/// See the crate docs for the algorithmic outline and an example.
#[derive(Debug)]
pub struct Filler<'a> {
    db: &'a ProfileDb,
    cfg: FillConfig,
}

impl<'a> Filler<'a> {
    /// Creates a filler over a profile database.
    pub fn new(db: &'a ProfileDb, cfg: FillConfig) -> Self {
        Filler { db, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FillConfig {
        &self.cfg
    }

    /// Total frozen forward time when executed data-parallel over
    /// `devices` devices with no bubble filling (the baseline tail).
    pub fn baseline_frozen_time(&self, batch: f64, devices: usize) -> f64 {
        let state = FrozenState::new(self.db.model(), batch);
        state.leftover_time(self.db, devices)
    }

    /// Plans the filling of `bubbles` (chronological) with the frozen part
    /// of the model, pushing `group_batch` samples through every frozen
    /// layer. `group_devices` is the pipeline group size (used for the
    /// leftover tail, which runs on all devices).
    ///
    /// # Errors
    ///
    /// Returns [`FillError`] on cyclic frozen graphs or degenerate inputs.
    pub fn fill(
        &self,
        bubbles: &[Bubble],
        group_batch: f64,
        group_devices: usize,
    ) -> Result<FillPlan, FillError> {
        if group_batch <= 0.0 || group_devices == 0 {
            return Err(FillError::DegenerateInput);
        }
        let model = self.db.model();
        if model.frozen_topological_order().is_err() {
            return Err(FillError::CyclicFrozenGraph);
        }
        let mut state = FrozenState::new(model, group_batch);
        let baseline = state.leftover_time(self.db, group_devices);
        let mut fills = Vec::new();

        for (bi, bubble) in bubbles.iter().enumerate() {
            if bubble.duration() < self.cfg.min_bubble_seconds {
                continue;
            }
            if state.all_complete() {
                break;
            }
            let fill = self.fill_one_bubble(&mut state, bi, bubble);
            fills.push(fill);
        }

        let leftover_time = state.leftover_time(self.db, group_devices);
        Ok(FillPlan {
            bubbles: fills,
            leftover_time,
            baseline_frozen_time: baseline,
        })
    }

    /// Algorithm 1 for a single bubble: enumerate full-batch candidates,
    /// optionally extend each with one partial-batch layer, pick the one
    /// with the longest execution time, and commit it to the state.
    ///
    /// Whenever committed work completes a component *inside* the bubble,
    /// newly ready components join the set and the remaining bubble time is
    /// filled again ("whenever a component becomes ready, we add it to the
    /// set of ready components", paper §5).
    fn fill_one_bubble(
        &self,
        state: &mut FrozenState,
        bubble_index: usize,
        bubble: &Bubble,
    ) -> BubbleFill {
        let mut fill = BubbleFill {
            bubble_index,
            bubble_duration: bubble.duration(),
            devices: bubble.devices.max(1),
            items: Vec::new(),
        };
        loop {
            let remaining = fill.bubble_duration - fill.used_time();
            if remaining < self.cfg.min_bubble_seconds {
                break;
            }
            let added = self.fill_round(state, &mut fill, remaining);
            if !added {
                break;
            }
        }
        fill
    }

    /// One round of Algorithm 1 over the currently ready components within
    /// `time_left` of the bubble. Returns true if any item was placed.
    fn fill_round(&self, state: &mut FrozenState, fill: &mut BubbleFill, time_left: f64) -> bool {
        let model = self.db.model();
        let d = fill.devices;
        let tb = time_left;
        let ready = state.ready(model);
        let setup = self.cfg.item_setup_seconds;

        let candidates = ffc_candidates(self.db, state, &ready, tb, d, setup);
        // Evaluate each candidate, enhanced with the best partial-batch
        // layer it can still fit (lines 2–6 of Algorithm 1).
        let mut best: Option<(f64, &Candidate, Option<Enhancement>)> = None;
        for cand in &candidates {
            let base_time = candidate_time(self.db, state, &ready, cand, d, setup);
            let mut enhanced: Option<Enhancement> = None;
            if self.cfg.partial_batch {
                for (ci, &idx) in ready.iter().enumerate() {
                    let k = cand.counts[ci];
                    let next = state.progress[idx].next_layer + k;
                    if next >= state.progress[idx].num_layers {
                        continue;
                    }
                    let avail = state.layer_samples(idx, k);
                    // getValidNumSamples: the largest ladder value (local
                    // batch) whose samples fit the layer's remaining batch
                    // and whose time fits the remaining bubble time.
                    for &local in self.cfg.local_batch_candidates.iter().rev() {
                        let samples = (local as f64) * d as f64;
                        if samples > avail + 1e-9 {
                            continue;
                        }
                        let dur = self.db.fwd_time(
                            state.progress[idx].component,
                            dpipe_model::LayerId(next),
                            local as f64,
                        ) + setup;
                        if base_time + dur <= tb + 1e-12 {
                            let better = enhanced.is_none_or(|(_, _, pd)| dur > pd);
                            if better {
                                enhanced = Some((ci, samples, dur));
                            }
                            break; // ladder is descending: first fit is max
                        }
                    }
                }
            }
            let total = base_time + enhanced.map_or(0.0, |(_, _, dur)| dur);
            if total <= tb + 1e-12 {
                let better = best.is_none_or(|(bt, _, _)| total > bt);
                if better {
                    best = Some((total, cand, enhanced));
                }
            }
        }

        let mut added = false;
        if let Some((_, cand, enhanced)) = best {
            // Commit full-batch layers.
            for (ci, &idx) in ready.iter().enumerate() {
                let k = cand.counts[ci];
                for offset in 0..k {
                    fill.items.push(FillItem {
                        component: state.progress[idx].component,
                        layer: state.progress[idx].next_layer + offset,
                        samples: state.layer_samples(idx, offset),
                        duration: state.layer_time(self.db, idx, offset, d) + setup,
                        partial: false,
                    });
                    added = true;
                }
            }
            // Commit the partial-batch layer.
            if let Some((ci, samples, dur)) = enhanced {
                let idx = ready[ci];
                let layer = state.progress[idx].next_layer + cand.counts[ci];
                fill.items.push(FillItem {
                    component: state.progress[idx].component,
                    layer,
                    samples,
                    duration: dur,
                    partial: true,
                });
                added = true;
            }
            // State updates: full layers first (indices shift as the front
            // advances), then the partial consumption.
            for (ci, &idx) in ready.iter().enumerate() {
                state.advance_full(idx, cand.counts[ci]);
            }
            if let Some((ci, samples, _)) = enhanced {
                state.advance_partial(ready[ci], samples);
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn db(model: dpipe_model::ModelSpec, batch: u32) -> ProfileDb {
        Profiler::new(DeviceModel::a100_like())
            .profile(&model, batch)
            .0
    }

    fn bubble(start: f64, dur: f64, devices: usize) -> Bubble {
        Bubble {
            start,
            end: start + dur,
            slots: vec![0],
            devices,
        }
    }

    #[test]
    fn items_never_exceed_bubble_time() {
        let db = db(zoo::stable_diffusion_v2_1(), 64);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles: Vec<Bubble> = (0..10).map(|i| bubble(i as f64, 0.080, 4)).collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        for b in &plan.bubbles {
            assert!(b.used_time() <= b.bubble_duration + 1e-9);
        }
    }

    #[test]
    fn filling_reduces_leftover() {
        let db = db(zoo::stable_diffusion_v2_1(), 64);
        let filler = Filler::new(&db, FillConfig::default());
        let no_bubbles = filler.fill(&[], 64.0, 8).unwrap();
        let some = filler
            .fill(
                &(0..20)
                    .map(|i| bubble(i as f64, 0.100, 8))
                    .collect::<Vec<_>>(),
                64.0,
                8,
            )
            .unwrap();
        assert!(some.leftover_time < no_bubbles.leftover_time);
        assert!((no_bubbles.leftover_time - no_bubbles.baseline_frozen_time).abs() < 1e-9);
    }

    #[test]
    fn conservation_of_work() {
        // Time placed in bubbles (at bubble device counts) plus leftover (at
        // group devices) accounts for every layer-sample exactly once.
        let db = db(zoo::stable_diffusion_v2_1(), 64);
        let filler = Filler::new(
            &db,
            FillConfig {
                item_setup_seconds: 0.0,
                ..FillConfig::default()
            },
        );
        let bubbles: Vec<Bubble> = (0..8).map(|i| bubble(i as f64, 0.120, 8)).collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        // All bubbles have d == group devices == 8, so wall-times are
        // directly comparable.
        let total = plan.filled_time() + plan.leftover_time;
        assert!(
            (total - plan.baseline_frozen_time).abs() / plan.baseline_frozen_time < 1e-6,
            "filled {} + leftover {} != baseline {}",
            plan.filled_time(),
            plan.leftover_time,
            plan.baseline_frozen_time
        );
    }

    #[test]
    fn partial_batch_unblocks_extra_long_layer() {
        // Bubbles too short for the 400 ms VAE layer at full batch: without
        // partial batching it blocks everything; with it, progress happens.
        let model = zoo::stable_diffusion_v2_1();
        let db = db(model, 64);
        // Two idle devices: the 400 ms layer needs 200 ms at local batch
        // 32, which exceeds the 150 ms bubbles.
        let bubbles: Vec<Bubble> = (0..30).map(|i| bubble(i as f64, 0.150, 2)).collect();
        let with = Filler::new(&db, FillConfig::default())
            .fill(&bubbles, 64.0, 8)
            .unwrap();
        let without = Filler::new(&db, FillConfig::default().without_partial_batch())
            .fill(&bubbles, 64.0, 8)
            .unwrap();
        assert!(
            with.leftover_time < without.leftover_time,
            "with={} without={}",
            with.leftover_time,
            without.leftover_time
        );
        assert!(with.partial_items().count() > 0);
    }

    #[test]
    fn partial_layer_resumes_in_later_bubbles() {
        let db = db(zoo::stable_diffusion_v2_1(), 64);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles: Vec<Bubble> = (0..40).map(|i| bubble(i as f64, 0.140, 2)).collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        // The extra-long VAE layer (component vae, layer 0) should appear in
        // multiple bubbles with partial samples summing to <= 64.
        let vae = db
            .model()
            .frozen_components()
            .find(|(_, c)| c.name == "vae_encoder")
            .unwrap()
            .0;
        let vae0_samples: f64 = plan
            .bubbles
            .iter()
            .flat_map(|b| &b.items)
            .filter(|i| i.component == vae && i.layer == 0)
            .map(|i| i.samples)
            .sum();
        let appearances = plan
            .bubbles
            .iter()
            .filter(|b| b.items.iter().any(|i| i.component == vae && i.layer == 0))
            .count();
        assert!(appearances >= 2, "appearances = {appearances}");
        assert!(vae0_samples <= 64.0 + 1e-9);
    }

    #[test]
    fn small_bubbles_are_skipped() {
        let db = db(zoo::stable_diffusion_v2_1(), 64);
        let filler = Filler::new(&db, FillConfig::default());
        let plan = filler.fill(&[bubble(0.0, 0.005, 8)], 64.0, 8).unwrap();
        assert!(plan.bubbles.is_empty());
        assert!((plan.leftover_time - plan.baseline_frozen_time).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let db = db(zoo::tiny_model(), 16);
        let filler = Filler::new(&db, FillConfig::default());
        assert_eq!(
            filler.fill(&[], 0.0, 8).unwrap_err(),
            FillError::DegenerateInput
        );
        assert_eq!(
            filler.fill(&[], 16.0, 0).unwrap_err(),
            FillError::DegenerateInput
        );
    }

    #[test]
    fn respects_component_dependencies_across_bubbles() {
        // ControlNet's locked U-Net depends on text+vae+hint; it must never
        // appear in a bubble before those complete.
        let db = db(zoo::controlnet_v1_0(), 64);
        let filler = Filler::new(&db, FillConfig::default());
        let bubbles: Vec<Bubble> = (0..200).map(|i| bubble(i as f64, 0.100, 8)).collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        let locked = db
            .model()
            .frozen_components()
            .find(|(_, c)| c.name == "locked_unet_encoder")
            .unwrap()
            .0;
        let deps = db.model().component(locked).deps.clone();
        let mut dep_layers_done = std::collections::HashMap::new();
        for b in &plan.bubbles {
            for item in &b.items {
                if item.component == locked {
                    for &d in &deps {
                        let comp = db.model().component(d);
                        if !comp.is_trainable() {
                            let done = dep_layers_done.get(&d).copied().unwrap_or(0.0);
                            let need = comp.num_layers() as f64 * 64.0;
                            assert!(
                                done >= need - 1e-6,
                                "locked ran before dep {} finished ({done}/{need})",
                                comp.name
                            );
                        }
                    }
                }
                *dep_layers_done.entry(item.component).or_insert(0.0) += item.samples;
            }
        }
        // Eventually everything completes given enough bubbles.
        assert!(
            plan.leftover_time < 1e-6,
            "leftover = {}",
            plan.leftover_time
        );
    }
}
