//! Algorithm 2 — FFC: full-batch layer bubble-filling candidates.

use crate::state::FrozenState;
use dpipe_profile::ProfileDb;

/// One full-batch candidate: for each *ready* component (by position in the
/// ready list), how many layers starting at its front to execute in the
/// bubble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Layer counts per ready component.
    pub counts: Vec<usize>,
}

impl Candidate {
    /// Total layers placed.
    pub fn total_layers(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Recursively enumerates the full-batch filling candidates of Algorithm 2.
///
/// `ready` holds indices into `state.order` for the currently ready
/// components; `bubble_time` is `T_B`; `devices` is the bubble's idle device
/// count `d`. Per the algorithm, component `i` contributes between 0 and
/// `k0` layers where `k0` is the largest prefix of its pending layers whose
/// cumulative time fits the remaining bubble time; the recursion then offers
/// the remainder to component `i+1`.
pub fn ffc_candidates(
    db: &ProfileDb,
    state: &FrozenState,
    ready: &[usize],
    bubble_time: f64,
    devices: usize,
    setup_cost: f64,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut counts = vec![0usize; ready.len()];
    recurse(
        db,
        state,
        ready,
        bubble_time,
        devices,
        setup_cost,
        0,
        &mut counts,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    db: &ProfileDb,
    state: &FrozenState,
    ready: &[usize],
    time_left: f64,
    devices: usize,
    setup_cost: f64,
    comp: usize,
    counts: &mut Vec<usize>,
    out: &mut Vec<Candidate>,
) {
    if comp == ready.len() {
        out.push(Candidate {
            counts: counts.clone(),
        });
        return;
    }
    let idx = ready[comp];
    let pending = state.progress[idx].num_layers - state.progress[idx].next_layer;
    // Lines 2–5: the largest k0 whose cumulative time fits.
    let mut cum = Vec::with_capacity(pending + 1);
    cum.push(0.0);
    let mut t = 0.0;
    for offset in 0..pending {
        let lt = state.layer_time(db, idx, offset, devices) + setup_cost;
        if t + lt > time_left {
            break;
        }
        t += lt;
        cum.push(t);
    }
    let k0 = cum.len() - 1;
    if comp == ready.len() - 1 {
        // Last component: only the maximal k0 candidate is useful
        // (line 6–7 of Algorithm 2).
        counts[comp] = k0;
        out.push(Candidate {
            counts: counts.clone(),
        });
        counts[comp] = 0;
        return;
    }
    // Lines 9–13: try each k from k0 down to 0 and recurse.
    for k in (0..=k0).rev() {
        counts[comp] = k;
        recurse(
            db,
            state,
            ready,
            time_left - cum[k],
            devices,
            setup_cost,
            comp + 1,
            counts,
            out,
        );
    }
    counts[comp] = 0;
}

/// Wall time a candidate occupies in the bubble (sum over its layers at the
/// bubble's device count), including per-item setup cost.
pub(crate) fn candidate_time(
    db: &ProfileDb,
    state: &FrozenState,
    ready: &[usize],
    candidate: &Candidate,
    devices: usize,
    setup_cost: f64,
) -> f64 {
    let mut t = 0.0;
    for (ci, &k) in candidate.counts.iter().enumerate() {
        let idx = ready[ci];
        for offset in 0..k {
            t += state.layer_time(db, idx, offset, devices) + setup_cost;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn setup(batch: u32) -> (ProfileDb, FrozenState) {
        let model = zoo::stable_diffusion_v2_1();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        let state = FrozenState::new(db.model(), batch as f64);
        (db, state)
    }

    #[test]
    fn zero_time_yields_empty_candidate_only() {
        let (db, state) = setup(64);
        let ready = state.ready(db.model());
        let cands = ffc_candidates(&db, &state, &ready, 0.0, 4, 0.0);
        assert!(cands.iter().all(|c| c.total_layers() == 0));
    }

    #[test]
    fn large_bubble_takes_everything() {
        let (db, state) = setup(64);
        let ready = state.ready(db.model());
        let cands = ffc_candidates(&db, &state, &ready, 1e9, 4, 0.0);
        let max = cands.iter().map(Candidate::total_layers).max().unwrap();
        let pending: usize = ready.iter().map(|&i| state.progress[i].num_layers).sum();
        assert_eq!(max, pending);
    }

    #[test]
    fn candidates_fit_bubble_time() {
        let (db, state) = setup(64);
        let ready = state.ready(db.model());
        let tb = 0.050; // 50 ms
        for c in ffc_candidates(&db, &state, &ready, tb, 4, 0.0) {
            let t = candidate_time(&db, &state, &ready, &c, 4, 0.0);
            assert!(t <= tb + 1e-9, "candidate {:?} takes {t}", c.counts);
        }
    }

    #[test]
    fn prefix_structure_respected() {
        // Layers are taken from the front only; a candidate can never skip
        // the extra-long VAE layer and take cheaper later ones.
        let (db, mut state) = setup(64);
        // Complete the text encoder so the VAE (with its 400 ms layer 0) is
        // the front of the ready list.
        let text_pos = state
            .order
            .iter()
            .position(|&c| db.model().component(c).name == "text_encoder")
            .unwrap();
        let n = state.progress[text_pos].num_layers;
        state.advance_full(text_pos, n);
        let ready = state.ready(db.model());
        assert_eq!(ready.len(), 1); // just the VAE
                                    // A 100 ms bubble on 1 device cannot fit VAE layer 0 (~400 ms), so
                                    // no layers can be placed at all.
        let cands = ffc_candidates(&db, &state, &ready, 0.100, 1, 0.0);
        assert!(cands.iter().all(|c| c.total_layers() == 0));
    }

    #[test]
    fn more_devices_fit_more_layers() {
        let (db, state) = setup(64);
        let ready = state.ready(db.model());
        let max_layers = |d: usize| {
            ffc_candidates(&db, &state, &ready, 0.020, d, 0.0)
                .iter()
                .map(Candidate::total_layers)
                .max()
                .unwrap()
        };
        assert!(max_layers(8) >= max_layers(1));
    }

    #[test]
    fn setup_cost_reduces_capacity() {
        let (db, state) = setup(64);
        let ready = state.ready(db.model());
        let free = ffc_candidates(&db, &state, &ready, 0.010, 8, 0.0)
            .iter()
            .map(Candidate::total_layers)
            .max()
            .unwrap();
        let costed = ffc_candidates(&db, &state, &ready, 0.010, 8, 0.0005)
            .iter()
            .map(Candidate::total_layers)
            .max()
            .unwrap();
        assert!(costed <= free);
    }
}
