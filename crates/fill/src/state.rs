//! Progress tracking over the frozen components during filling.

use dpipe_model::{ComponentId, ModelSpec};
use dpipe_profile::ProfileDb;
use serde::{Deserialize, Serialize};

/// Progress of one frozen component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentProgress {
    /// Component id.
    pub component: ComponentId,
    /// Index of the first incomplete layer (the paper's `u_i`).
    pub next_layer: usize,
    /// Samples of the batch still unprocessed by `next_layer`.
    /// Equals the full batch unless a partial-batch layer split it.
    pub front_remaining: f64,
    /// Total layers in the component.
    pub num_layers: usize,
}

impl ComponentProgress {
    /// True once every layer has processed the full batch.
    pub fn is_complete(&self) -> bool {
        self.next_layer >= self.num_layers
    }
}

/// Mutable filling state across all frozen components.
#[derive(Debug, Clone)]
pub struct FrozenState {
    /// Frozen components in topological order.
    pub order: Vec<ComponentId>,
    /// Progress per entry of `order`.
    pub progress: Vec<ComponentProgress>,
    /// Full batch size being pushed through the frozen part.
    pub batch: f64,
}

impl FrozenState {
    /// Initialises progress for every frozen component of `model`, with the
    /// given group batch.
    ///
    /// # Panics
    ///
    /// Panics if the frozen dependency graph is cyclic (callers validate the
    /// model first).
    pub fn new(model: &ModelSpec, batch: f64) -> Self {
        let order = model
            .frozen_topological_order()
            // dpipe-analyze: allow(no-panic) -- documented "# Panics" contract: callers validate the model first
            .expect("validated model has acyclic frozen graph");
        let progress = order
            .iter()
            .map(|&c| ComponentProgress {
                component: c,
                next_layer: 0,
                front_remaining: batch,
                num_layers: model.component(c).num_layers(),
            })
            .collect();
        FrozenState {
            order,
            progress,
            batch,
        }
    }

    /// Indices (into `order`) of components whose dependencies are complete
    /// and which still have work, preserving topological order.
    pub fn ready(&self, model: &ModelSpec) -> Vec<usize> {
        let complete = |c: ComponentId| {
            self.progress
                .iter()
                .find(|p| p.component == c)
                .map(|p| p.is_complete())
                // Deps on trainable components do not gate frozen execution:
                // in cross-iteration filling the frozen part runs first.
                .unwrap_or(true)
        };
        self.order
            .iter()
            .enumerate()
            .filter(|&(i, &c)| {
                !self.progress[i].is_complete()
                    && model.component(c).deps.iter().all(|&d| complete(d))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Wall time of running layer `offset` positions past the front of
    /// component `order[idx]` on `d` devices data-parallel: the front layer
    /// (offset 0) covers only its remaining samples, deeper layers the full
    /// batch.
    pub fn layer_time(&self, db: &ProfileDb, idx: usize, offset: usize, devices: usize) -> f64 {
        let p = &self.progress[idx];
        let layer = p.next_layer + offset;
        debug_assert!(layer < p.num_layers);
        let samples = if offset == 0 {
            p.front_remaining
        } else {
            self.batch
        };
        db.fwd_time(
            p.component,
            dpipe_model::LayerId(layer),
            samples / devices as f64,
        )
    }

    /// Samples the layer at `offset` past the front still needs.
    pub fn layer_samples(&self, idx: usize, offset: usize) -> f64 {
        if offset == 0 {
            self.progress[idx].front_remaining
        } else {
            self.batch
        }
    }

    /// Marks `count` full layers of component `order[idx]` complete
    /// (starting at the front, which may cover only its remaining samples).
    /// A no-op for `count == 0` so partial progress on the front layer is
    /// preserved.
    pub fn advance_full(&mut self, idx: usize, count: usize) {
        if count == 0 {
            return;
        }
        let p = &mut self.progress[idx];
        p.next_layer += count;
        p.front_remaining = self.batch;
        debug_assert!(p.next_layer <= p.num_layers);
    }

    /// Consumes `samples` of the front layer of component `order[idx]`
    /// (a partial-batch execution). Advances the front if it completes.
    pub fn advance_partial(&mut self, idx: usize, samples: f64) {
        let p = &mut self.progress[idx];
        p.front_remaining -= samples;
        if p.front_remaining <= 1e-9 {
            p.next_layer += 1;
            p.front_remaining = self.batch;
        }
    }

    /// Remaining frozen work in device-seconds when run on `devices`
    /// data-parallel devices (the leftover tail after filling).
    pub fn leftover_time(&self, db: &ProfileDb, devices: usize) -> f64 {
        let mut total = 0.0;
        for (i, p) in self.progress.iter().enumerate() {
            if p.is_complete() {
                continue;
            }
            for offset in 0..(p.num_layers - p.next_layer) {
                total += self.layer_time(db, i, offset, devices);
            }
        }
        total
    }

    /// True once every frozen component is complete.
    pub fn all_complete(&self) -> bool {
        self.progress.iter().all(ComponentProgress::is_complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn setup() -> (ProfileDb, FrozenState) {
        let model = zoo::controlnet_v1_0();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, 64);
        let state = FrozenState::new(db.model(), 64.0);
        (db, state)
    }

    #[test]
    fn ready_respects_dependencies() {
        let (db, state) = setup();
        let ready = state.ready(db.model());
        // locked_unet_encoder depends on vae+hint+text: not ready initially.
        let names: Vec<&str> = ready
            .iter()
            .map(|&i| db.model().component(state.order[i]).name.as_str())
            .collect();
        assert!(names.contains(&"text_encoder"));
        assert!(!names.contains(&"locked_unet_encoder"));
    }

    #[test]
    fn completing_deps_unlocks_component() {
        let (db, mut state) = setup();
        // Complete everything except the locked unet.
        let locked_pos = state
            .order
            .iter()
            .position(|&c| db.model().component(c).name == "locked_unet_encoder")
            .unwrap();
        for i in 0..state.order.len() {
            if i != locked_pos {
                let n = state.progress[i].num_layers;
                state.advance_full(i, n);
            }
        }
        let ready = state.ready(db.model());
        assert_eq!(ready, vec![locked_pos]);
    }

    #[test]
    fn partial_advance_tracks_remaining() {
        let (db, mut state) = setup();
        let i = 0;
        state.advance_partial(i, 16.0);
        assert_eq!(state.progress[i].front_remaining, 48.0);
        assert_eq!(state.progress[i].next_layer, 0);
        // Front layer now costs less than a full-batch layer.
        let front = state.layer_time(&db, i, 0, 4);
        let deep = state.layer_time(&db, i, 1, 4);
        let full_front = db.fwd_time(state.progress[i].component, dpipe_model::LayerId(0), 16.0);
        assert!(front < full_front);
        let _ = deep;
        // Finishing the remaining 48 advances the front.
        state.advance_partial(i, 48.0);
        assert_eq!(state.progress[i].next_layer, 1);
        assert_eq!(state.progress[i].front_remaining, 64.0);
    }

    #[test]
    fn leftover_shrinks_with_progress() {
        let (db, mut state) = setup();
        let before = state.leftover_time(&db, 8);
        state.advance_full(0, state.progress[0].num_layers);
        let after = state.leftover_time(&db, 8);
        assert!(after < before);
    }

    #[test]
    fn all_complete_after_advancing_everything() {
        let (db, mut state) = setup();
        for i in 0..state.order.len() {
            let n = state.progress[i].num_layers;
            state.advance_full(i, n);
        }
        assert!(state.all_complete());
        assert_eq!(state.leftover_time(&db, 8), 0.0);
        assert!(state.ready(db.model()).is_empty());
    }
}
