//! Property tests for bubble filling: work conservation, capacity limits
//! and dependency order under arbitrary bubble streams.

use dpipe_fill::{FillConfig, Filler};
use dpipe_model::zoo;
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};
use dpipe_schedule::Bubble;
use proptest::prelude::*;

fn db(batch: u32) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like())
        .profile(&zoo::stable_diffusion_v2_1(), batch)
        .0
}

fn bubbles_strategy() -> impl Strategy<Value = Vec<Bubble>> {
    proptest::collection::vec((0.02f64..0.5, 1usize..8), 0..25).prop_map(|specs| {
        let mut t = 0.0;
        specs
            .into_iter()
            .map(|(dur, devices)| {
                let b = Bubble {
                    start: t,
                    end: t + dur,
                    slots: (0..devices).collect(),
                    devices,
                };
                t += dur + 0.01;
                b
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No bubble is ever over-filled, and every layer-sample is processed
    /// at most the full batch.
    #[test]
    fn fills_respect_capacity_and_batch(bubbles in bubbles_strategy()) {
        let database = db(64);
        let filler = Filler::new(&database, FillConfig::default());
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        for bf in &plan.bubbles {
            prop_assert!(bf.used_time() <= bf.bubble_duration + 1e-9);
        }
        // Per (component, layer), total samples <= batch.
        let mut samples: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        for item in plan.bubbles.iter().flat_map(|b| &b.items) {
            *samples.entry((item.component.index(), item.layer)).or_default() += item.samples;
        }
        for (&(c, l), &s) in &samples {
            prop_assert!(s <= 64.0 + 1e-6, "layer c{c} l{l} processed {s} samples");
        }
    }

    /// Leftover never exceeds the no-fill baseline and decreases (weakly)
    /// as more bubbles are provided.
    #[test]
    fn leftover_is_monotone_in_bubbles(bubbles in bubbles_strategy()) {
        let database = db(64);
        let filler = Filler::new(&database, FillConfig::default());
        let mut prev = f64::INFINITY;
        for n in [0, bubbles.len() / 2, bubbles.len()] {
            let plan = filler.fill(&bubbles[..n], 64.0, 8).unwrap();
            prop_assert!(plan.leftover_time <= plan.baseline_frozen_time + 1e-9);
            prop_assert!(plan.leftover_time <= prev + 1e-9);
            prev = plan.leftover_time;
        }
    }

    /// Layers within one component appear in strictly non-decreasing order
    /// across the fill plan (the linear dependency chain).
    #[test]
    fn layer_order_is_respected(bubbles in bubbles_strategy()) {
        let database = db(64);
        let filler = Filler::new(&database, FillConfig::default());
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        let mut last_layer: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for item in plan.bubbles.iter().flat_map(|b| &b.items) {
            let entry = last_layer.entry(item.component.index()).or_insert(0);
            prop_assert!(
                item.layer >= *entry,
                "component {} regressed from layer {} to {}",
                item.component.index(),
                entry,
                item.layer
            );
            *entry = item.layer;
        }
    }

    /// With zero setup cost, bubbles at the group device count, and
    /// partial-batch layers disabled, wall time is conserved exactly:
    /// filled + leftover == baseline. (Partial-batch layers run at smaller
    /// local batches where the device efficiency curve makes each sample
    /// slightly more expensive, so with partials the total is bounded but
    /// not equal — checked separately below.)
    #[test]
    fn work_conservation_at_uniform_devices(count in 0usize..20, dur in 0.02f64..0.4) {
        let database = db(64);
        let filler = Filler::new(&database, FillConfig {
            item_setup_seconds: 0.0,
            ..FillConfig::default()
        }.without_partial_batch());
        let bubbles: Vec<Bubble> = (0..count)
            .map(|i| Bubble {
                start: i as f64,
                end: i as f64 + dur,
                slots: (0..8).collect(),
                devices: 8,
            })
            .collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        let total = plan.filled_time() + plan.leftover_time;
        prop_assert!(
            (total - plan.baseline_frozen_time).abs() < 1e-6 * plan.baseline_frozen_time,
            "filled {} + leftover {} != baseline {}",
            plan.filled_time(),
            plan.leftover_time,
            plan.baseline_frozen_time
        );
    }

    /// With partial-batch layers enabled, total wall time stays within the
    /// efficiency-curve envelope: never below the baseline, never more
    /// than the worst-case small-batch penalty above it.
    #[test]
    fn work_bounded_with_partials(count in 0usize..20, dur in 0.02f64..0.4) {
        let database = db(64);
        let filler = Filler::new(&database, FillConfig {
            item_setup_seconds: 0.0,
            ..FillConfig::default()
        });
        let bubbles: Vec<Bubble> = (0..count)
            .map(|i| Bubble {
                start: i as f64,
                end: i as f64 + dur,
                slots: (0..8).collect(),
                devices: 8,
            })
            .collect();
        let plan = filler.fill(&bubbles, 64.0, 8).unwrap();
        let total = plan.filled_time() + plan.leftover_time;
        let base = plan.baseline_frozen_time;
        prop_assert!(total >= base - 1e-9, "total {total} < baseline {base}");
        // phi(4)/phi(8) < 1.35 bounds the per-sample penalty of the
        // smallest partial batch.
        prop_assert!(total <= 1.35 * base, "total {total} > 1.35x baseline {base}");
    }
}
