//! Stable content fingerprints for planner inputs.
//!
//! The planning service (`dpipe_serve`) keys its plan cache by a
//! *content fingerprint* of the request: two requests that describe the same
//! model, cluster and knobs must collide on the same key across processes
//! and platforms. `std::collections::hash_map::DefaultHasher` is explicitly
//! randomised per process, and the spec types carry `f64` fields that do not
//! implement `Hash` at all, so this crate provides a small deterministic
//! [FNV-1a] hasher with explicit write methods for every primitive the spec
//! types contain. Domain-separation tags and length prefixes keep adjacent
//! fields from aliasing (e.g. `("ab", "c")` vs `("a", "bc")`).
//!
//! It is a leaf crate so that `dpipe_model` and `dpipe_cluster` can both
//! build their `fingerprint()` helpers on it without depending on each
//! other.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

/// Deterministic 64-bit FNV-1a hasher with typed write methods.
///
/// # Example
///
/// ```
/// use dpipe_stablehash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("unet");
/// a.write_f64(1.5);
/// let mut b = StableHasher::new();
/// b.write_str("unet");
/// b.write_f64(1.5);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` so 32- and 64-bit targets agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern, with `-0.0` normalised to
    /// `+0.0` and every NaN collapsed to the canonical quiet NaN so
    /// numerically indistinguishable specs fingerprint identically.
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0u64
        } else {
            v.to_bits()
        };
        self.write_u64(bits);
    }

    /// Absorbs a string with a length prefix (prevents field aliasing).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Returns the current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let digest = || {
            let mut h = StableHasher::new();
            h.write_str("stable-diffusion-v2.1");
            h.write_u32(256);
            h.write_f64(0.5);
            h.write_bool(true);
            h.finish()
        };
        assert_eq!(digest(), digest());
    }

    #[test]
    fn empty_input_is_fnv_offset() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn negative_zero_and_nan_are_canonical() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_f64(f64::NAN);
        let mut d = StableHasher::new();
        d.write_f64(f64::from_bits(0x7ff8_0000_0000_0001));
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        let mut b = StableHasher::new();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }
}
