//! The lint catalog and the per-file scanning pass.
//!
//! Each lint enforces one project invariant (see `docs/lints.md` for
//! the full catalog with rationale and examples). Lints are pure
//! functions over the token stream produced by [`crate::lexer`]; test
//! code and suppressed lines are filtered by [`crate::scope`].

use crate::config;
use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::scope::FileScope;

/// Identity of a lint in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library
    /// code outside tests.
    NoPanic,
    /// `Instant`/`SystemTime` in the wall-clock-free simulator.
    NoWallClock,
    /// `HashMap`/`HashSet` in fingerprint- or JSON-emitting modules,
    /// whose iteration order is randomized per process.
    NoUnorderedMap,
    /// `.lock().unwrap()`/`.lock().expect(…)` instead of the shared
    /// poison-recovering helper.
    LockUnwrap,
    /// An acquisition that closes a cycle in the global lock-order
    /// graph (potential deadlock).
    LockOrder,
    /// A lock guard held across a blocking call (channel send/recv,
    /// condvar wait, thread join, socket I/O).
    GuardAcrossBlocking,
    /// A suppression comment that does not parse or lacks a reason.
    MalformedAllow,
    /// A suppression that matched no finding (stale receipt).
    UnusedAllow,
}

impl LintId {
    /// Every lint, in catalog order.
    pub const ALL: [LintId; 8] = [
        LintId::NoPanic,
        LintId::NoWallClock,
        LintId::NoUnorderedMap,
        LintId::LockUnwrap,
        LintId::LockOrder,
        LintId::GuardAcrossBlocking,
        LintId::MalformedAllow,
        LintId::UnusedAllow,
    ];

    /// Stable string id used in diagnostics and allow annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::NoPanic => "no-panic",
            LintId::NoWallClock => "no-wall-clock",
            LintId::NoUnorderedMap => "no-unordered-map",
            LintId::LockUnwrap => "lock-unwrap",
            LintId::LockOrder => "lock-order",
            LintId::GuardAcrossBlocking => "guard-across-blocking",
            LintId::MalformedAllow => "malformed-allow",
            LintId::UnusedAllow => "unused-allow",
        }
    }

    /// Parse a string id back into a lint.
    pub fn parse(s: &str) -> Option<LintId> {
        LintId::ALL.iter().copied().find(|l| l.as_str() == s)
    }

    /// Whether an allow annotation may suppress this lint. The two
    /// meta-lints guard the suppression mechanism itself and can only
    /// be fixed, never allowed.
    pub fn allowable(self) -> bool {
        !matches!(self, LintId::MalformedAllow | LintId::UnusedAllow)
    }
}

/// Method names that panic when called on `Option`/`Result`.
const PANICKING_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macro names that abort the current thread.
const PANICKING_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Hash collections with per-process-randomized iteration order.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Wall-clock types forbidden in the deterministic simulator.
const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// Scan one file's tokens for findings. `rel` is the workspace-relative
/// path (forward slashes) used for scope decisions; `lines` are the
/// file's source lines for snippets.
pub fn scan_file(rel: &str, toks: &[Tok], scope: &FileScope, lines: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();

    let ident = |ci: usize| -> Option<&str> {
        code.get(ci).and_then(|&i| toks.get(i)).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    };
    let punct = |ci: usize, b: u8| -> bool {
        // `ci` arrives pre-offset; an out-of-range index simply fails
        // the pattern.
        code.get(ci)
            .and_then(|&i| toks.get(i))
            .is_some_and(|t| t.kind == TokKind::Punct(b))
    };

    for (ci, &i) in code.iter().enumerate() {
        if scope.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let tok = &toks[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = tok.text.as_str();

        // `.name(` — a panicking method call.
        if PANICKING_METHODS.contains(&name) && ci > 0 && punct(ci - 1, b'.') && punct(ci + 1, b'(')
        {
            // `.lock().unwrap()` is its own lint: the fix is the shared
            // poison-recovering helper, not a typed error.
            let is_lock_chain = ci >= 5
                && punct(ci - 2, b')')
                && punct(ci - 3, b'(')
                && ident(ci - 4) == Some("lock")
                && punct(ci - 5, b'.');
            if is_lock_chain {
                if config::lint_applies(LintId::LockUnwrap, rel) {
                    findings.push(finding(
                        LintId::LockUnwrap,
                        tok,
                        format!("`.lock().{}()` bypasses poison recovery; use the shared poison-recovering lock helper", name),
                        lines,
                    ));
                }
            } else if config::lint_applies(LintId::NoPanic, rel) {
                findings.push(finding(
                    LintId::NoPanic,
                    tok,
                    format!("`.{}()` can panic; return a typed error instead", name),
                    lines,
                ));
            }
            continue;
        }

        // `name!` — a panicking macro invocation.
        if PANICKING_MACROS.contains(&name)
            && punct(ci + 1, b'!')
            && config::lint_applies(LintId::NoPanic, rel)
        {
            findings.push(finding(
                LintId::NoPanic,
                tok,
                format!(
                    "`{}!` aborts the thread; return a typed error instead",
                    name
                ),
                lines,
            ));
            continue;
        }

        if WALL_CLOCK_TYPES.contains(&name) && config::lint_applies(LintId::NoWallClock, rel) {
            findings.push(finding(
                LintId::NoWallClock,
                tok,
                format!(
                    "`{}` reads the wall clock; the simulator must stay virtual-time only",
                    name
                ),
                lines,
            ));
            continue;
        }

        if UNORDERED_TYPES.contains(&name) && config::lint_applies(LintId::NoUnorderedMap, rel) {
            findings.push(finding(
                LintId::NoUnorderedMap,
                tok,
                format!("`{}` iteration order is randomized per process; use BTreeMap/BTreeSet or a sorted Vec in byte-stable output paths", name),
                lines,
            ));
            continue;
        }
    }

    for bad in &scope.malformed {
        findings.push(Finding {
            lint: LintId::MalformedAllow,
            line: bad.line,
            col: bad.col,
            message: format!("malformed suppression: {}", bad.detail),
            snippet: snippet_at(lines, bad.line),
        });
    }

    findings
}

fn finding(lint: LintId, tok: &Tok, message: String, lines: &[&str]) -> Finding {
    Finding {
        lint,
        line: tok.line,
        col: tok.col,
        message,
        snippet: snippet_at(lines, tok.line),
    }
}

/// The trimmed source line for a diagnostic, truncated to keep reports
/// readable and byte-stable.
pub fn snippet_at(lines: &[&str], line: u32) -> String {
    let idx = (line as usize).saturating_sub(1);
    let text = lines.get(idx).copied().unwrap_or("").trim();
    const MAX: usize = 160;
    if text.len() <= MAX {
        return text.to_string();
    }
    let mut cut = MAX;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &text[..cut])
}
