//! `dpipe_analyze` — the workspace invariant linter.
//!
//! The repo's value proposition is determinism under load: byte-identical
//! plan documents across CLI and HTTP, a wall-clock-free simulator,
//! panic-contained workers, and fingerprints that double as cache keys.
//! This crate makes those invariants mechanical instead of tribal: a
//! hand-rolled, zero-dependency token-level pass over the workspace's own
//! sources with a small lint catalog (see `docs/lints.md`):
//!
//! | id | invariant |
//! |----|-----------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code outside tests |
//! | `no-wall-clock` | no `Instant`/`SystemTime` in the simulator |
//! | `no-unordered-map` | no `HashMap`/`HashSet` in fingerprint/JSON-emitting modules |
//! | `lock-unwrap` | no `.lock().unwrap()` — locks route through a poison-recovering helper |
//! | `lock-order` | no cycles in the global lock-order graph (potential deadlocks) |
//! | `guard-across-blocking` | no guard held across channel/condvar/join/socket blocking |
//! | `malformed-allow` | every suppression parses and carries a reason |
//! | `unused-allow` | no stale suppressions |
//!
//! The two concurrency passes run on an item-level parse of the whole
//! workspace at once (fn boundaries, guard scopes, call edges) rather
//! than file-at-a-time token matching; see [`locks`] for the model and
//! `docs/lints.md` for the lock-key naming scheme.
//!
//! Run it with `cargo run -p dpipe_analyze -- check [--json]`; CI fails
//! on any unallowed finding. Legitimate sites are suppressed inline
//! with an allow comment carrying a reason (syntax in `docs/lints.md`),
//! and every suppression is counted in the report.
//!
//! # Example
//!
//! ```
//! use dpipe_analyze::analyze_source;
//!
//! // A panicking call in library code is a finding…
//! let r = analyze_source("crates/core/src/x.rs", "fn f() { None::<u8>.unwrap(); }");
//! assert_eq!(r.unallowed.len(), 1);
//! assert_eq!(r.unallowed[0].lint.as_str(), "no-panic");
//!
//! // …but the same tokens inside a string, comment or test module are not.
//! let r = analyze_source("crates/core/src/x.rs", "const S: &str = \".unwrap()\"; // .unwrap()");
//! assert!(r.unallowed.is_empty());
//! ```
//!
//! Two functions taking two locks in opposite orders close a cycle in
//! the lock-order graph and are flagged as potential deadlocks:
//!
//! ```
//! use dpipe_analyze::analyze_source;
//!
//! let src = "
//!     struct A { m: std::sync::Mutex<u32> }
//!     struct B { n: std::sync::Mutex<u32> }
//!     fn fwd(a: &A, b: &B) { let g = a.m.lock_recover(); let h = b.n.lock_recover(); }
//!     fn rev(a: &A, b: &B) { let h = b.n.lock_recover(); let g = a.m.lock_recover(); }
//! ";
//! let r = analyze_source("crates/core/src/x.rs", src);
//! assert!(r.unallowed.iter().any(|f| f.lint.as_str() == "lock-order"));
//! ```

use std::fmt;
use std::fs;
use std::path::Path;

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod parse;
pub mod report;
pub mod scope;
pub mod walk;

pub use lints::LintId;
pub use locks::{LockEdge, LockGraph};
pub use report::{AllowRecord, FileResult, Finding, Report};

/// Errors from driving the analyzer over a directory tree.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Filesystem failure while walking or reading sources.
    Io { path: String, message: String },
}

impl AnalyzeError {
    pub(crate) fn io(path: &Path, err: std::io::Error) -> AnalyzeError {
        AnalyzeError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io { path, message } => write!(f, "io error at {path}: {message}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyze one file's source text under its workspace-relative path.
/// Pure function of its inputs; the unit the fixture corpus tests.
/// The concurrency passes run too, scoped to this one file.
pub fn analyze_source(rel: &str, src: &str) -> FileResult {
    analyze_sources(&[(rel, src)])
        .files
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// Results of analyzing a set of files together: per-file results plus
/// the global lock-order graph.
#[derive(Debug, Default)]
pub struct WorkspaceResult {
    pub files: Vec<FileResult>,
    pub graph: LockGraph,
}

/// Analyze a set of sources as one workspace: the per-file lints run
/// file-at-a-time, then the concurrency passes (`lock-order`,
/// `guard-across-blocking`) run over the item model of all files at
/// once, so held-lock sets propagate across intra-workspace calls.
/// `sources` are `(workspace-relative path, text)` pairs; results come
/// back in the same order.
pub fn analyze_sources(sources: &[(&str, &str)]) -> WorkspaceResult {
    struct Parsed {
        toks: Vec<lexer::Tok>,
        sc: scope::FileScope,
        items: parse::FileItems,
    }
    let parsed: Vec<Parsed> = sources
        .iter()
        .map(|(_, src)| {
            let toks = lexer::lex(src);
            let sc = scope::scope_file(&toks);
            let items = parse::parse_file(&toks, &sc);
            Parsed { toks, sc, items }
        })
        .collect();
    let codes: Vec<Vec<usize>> = parsed
        .iter()
        .map(|p| (0..p.toks.len()).filter(|&i| p.toks[i].is_code()).collect())
        .collect();
    let line_sets: Vec<Vec<&str>> = sources
        .iter()
        .map(|(_, src)| src.lines().collect())
        .collect();

    let file_data: Vec<locks::FileData> = sources
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| locks::FileData {
            index: i,
            rel,
            toks: &parsed[i].toks,
            code: &codes[i],
            scope: &parsed[i].sc,
            lines: &line_sets[i],
            items: &parsed[i].items,
        })
        .collect();
    let (mut lock_findings, graph) = locks::analyze_workspace(&file_data);

    let mut files = Vec::new();
    for (i, (rel, _)) in sources.iter().enumerate() {
        let mut findings = lints::scan_file(rel, &parsed[i].toks, &parsed[i].sc, &line_sets[i]);
        for f in std::mem::take(&mut lock_findings[i]) {
            if config::lint_applies(f.lint, rel) {
                findings.push(f);
            }
        }
        files.push(match_allows(rel, findings, &parsed[i].sc, &line_sets[i]));
    }
    WorkspaceResult { files, graph }
}

/// Match findings against allow annotations, record receipts, and
/// surface stale suppressions as `unused-allow` findings.
fn match_allows(
    rel: &str,
    findings: Vec<Finding>,
    sc: &scope::FileScope,
    lines: &[&str],
) -> FileResult {
    let mut used = vec![false; sc.allows.len()];
    let mut unallowed = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let slot = if f.lint.allowable() {
            sc.allows
                .iter()
                .position(|a| a.lint == f.lint && a.target_line == f.line)
        } else {
            None
        };
        match slot {
            Some(i) => {
                used[i] = true;
                allowed.push(f);
            }
            None => unallowed.push(f),
        }
    }
    let mut allows = Vec::new();
    for (i, a) in sc.allows.iter().enumerate() {
        if !used[i] {
            unallowed.push(Finding {
                lint: LintId::UnusedAllow,
                line: a.comment_line,
                col: a.comment_col,
                message: format!(
                    "suppression for `{}` matched no finding on line {}; remove the stale allow",
                    a.lint.as_str(),
                    a.target_line
                ),
                snippet: lints::snippet_at(lines, a.comment_line),
            });
        }
        allows.push(AllowRecord {
            line: a.comment_line,
            target_line: a.target_line,
            lint: a.lint,
            reason: a.reason.clone(),
            used: used[i],
        });
    }
    unallowed.sort_by_key(|f| (f.line, f.col, f.lint));
    allowed.sort_by_key(|f| (f.line, f.col, f.lint));
    FileResult {
        rel: rel.to_string(),
        unallowed,
        allowed,
        allows,
    }
}

/// Run the full check over a workspace rooted at `root`.
pub fn check(root: &Path) -> Result<Report, AnalyzeError> {
    let rels = walk::workspace_files(root)?;
    let mut sources = Vec::new();
    for rel in &rels {
        let path = root.join(rel);
        let src = fs::read_to_string(&path).map_err(|e| AnalyzeError::io(&path, e))?;
        sources.push((rel.clone(), src));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.as_str()))
        .collect();
    let outcome = analyze_sources(&refs);
    let mut report = Report {
        files_scanned: rels.len(),
        files: Vec::new(),
        graph: outcome.graph,
    };
    for result in outcome.files {
        if !result.unallowed.is_empty() || !result.allowed.is_empty() || !result.allows.is_empty() {
            report.files.push(result);
        }
    }
    Ok(report)
}

/// The lock-order graph for a workspace rooted at `root` (the `graph`
/// subcommand and the witness subgraph tests).
pub fn lock_graph(root: &Path) -> Result<LockGraph, AnalyzeError> {
    check(root).map(|r| r.graph)
}
