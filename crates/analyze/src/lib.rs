//! `dpipe_analyze` — the workspace invariant linter.
//!
//! The repo's value proposition is determinism under load: byte-identical
//! plan documents across CLI and HTTP, a wall-clock-free simulator,
//! panic-contained workers, and fingerprints that double as cache keys.
//! This crate makes those invariants mechanical instead of tribal: a
//! hand-rolled, zero-dependency token-level pass over the workspace's own
//! sources with a small lint catalog (see `docs/lints.md`):
//!
//! | id | invariant |
//! |----|-----------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code outside tests |
//! | `no-wall-clock` | no `Instant`/`SystemTime` in the simulator |
//! | `no-unordered-map` | no `HashMap`/`HashSet` in fingerprint/JSON-emitting modules |
//! | `lock-unwrap` | no `.lock().unwrap()` — locks route through a poison-recovering helper |
//! | `malformed-allow` | every suppression parses and carries a reason |
//! | `unused-allow` | no stale suppressions |
//!
//! Run it with `cargo run -p dpipe_analyze -- check [--json]`; CI fails
//! on any unallowed finding. Legitimate sites are suppressed inline
//! with an allow comment carrying a reason (syntax in `docs/lints.md`),
//! and every suppression is counted in the report.
//!
//! # Example
//!
//! ```
//! use dpipe_analyze::analyze_source;
//!
//! // A panicking call in library code is a finding…
//! let r = analyze_source("crates/core/src/x.rs", "fn f() { None::<u8>.unwrap(); }");
//! assert_eq!(r.unallowed.len(), 1);
//! assert_eq!(r.unallowed[0].lint.as_str(), "no-panic");
//!
//! // …but the same tokens inside a string, comment or test module are not.
//! let r = analyze_source("crates/core/src/x.rs", "const S: &str = \".unwrap()\"; // .unwrap()");
//! assert!(r.unallowed.is_empty());
//! ```

use std::fmt;
use std::fs;
use std::path::Path;

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scope;
pub mod walk;

pub use lints::LintId;
pub use report::{AllowRecord, FileResult, Finding, Report};

/// Errors from driving the analyzer over a directory tree.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Filesystem failure while walking or reading sources.
    Io { path: String, message: String },
}

impl AnalyzeError {
    pub(crate) fn io(path: &Path, err: std::io::Error) -> AnalyzeError {
        AnalyzeError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io { path, message } => write!(f, "io error at {path}: {message}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyze one file's source text under its workspace-relative path.
/// Pure function of its inputs; the unit the fixture corpus tests.
pub fn analyze_source(rel: &str, src: &str) -> FileResult {
    let toks = lexer::lex(src);
    let sc = scope::scope_file(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let findings = lints::scan_file(rel, &toks, &sc, &lines);
    match_allows(rel, findings, &sc, &lines)
}

/// Match findings against allow annotations, record receipts, and
/// surface stale suppressions as `unused-allow` findings.
fn match_allows(
    rel: &str,
    findings: Vec<Finding>,
    sc: &scope::FileScope,
    lines: &[&str],
) -> FileResult {
    let mut used = vec![false; sc.allows.len()];
    let mut unallowed = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let slot = if f.lint.allowable() {
            sc.allows
                .iter()
                .position(|a| a.lint == f.lint && a.target_line == f.line)
        } else {
            None
        };
        match slot {
            Some(i) => {
                used[i] = true;
                allowed.push(f);
            }
            None => unallowed.push(f),
        }
    }
    let mut allows = Vec::new();
    for (i, a) in sc.allows.iter().enumerate() {
        if !used[i] {
            unallowed.push(Finding {
                lint: LintId::UnusedAllow,
                line: a.comment_line,
                col: a.comment_col,
                message: format!(
                    "suppression for `{}` matched no finding on line {}; remove the stale allow",
                    a.lint.as_str(),
                    a.target_line
                ),
                snippet: lints::snippet_at(lines, a.comment_line),
            });
        }
        allows.push(AllowRecord {
            line: a.comment_line,
            target_line: a.target_line,
            lint: a.lint,
            reason: a.reason.clone(),
            used: used[i],
        });
    }
    unallowed.sort_by_key(|f| (f.line, f.col, f.lint));
    allowed.sort_by_key(|f| (f.line, f.col, f.lint));
    FileResult {
        rel: rel.to_string(),
        unallowed,
        allowed,
        allows,
    }
}

/// Run the full check over a workspace rooted at `root`.
pub fn check(root: &Path) -> Result<Report, AnalyzeError> {
    let rels = walk::workspace_files(root)?;
    let mut report = Report {
        files_scanned: rels.len(),
        files: Vec::new(),
    };
    for rel in rels {
        let path = root.join(&rel);
        let src = fs::read_to_string(&path).map_err(|e| AnalyzeError::io(&path, e))?;
        let result = analyze_source(&rel, &src);
        if !result.unallowed.is_empty() || !result.allowed.is_empty() || !result.allows.is_empty() {
            report.files.push(result);
        }
    }
    Ok(report)
}
