//! Which lints apply where.
//!
//! The scope map is deliberately code, not configuration: the set of
//! deterministic modules is a property of the architecture and changes
//! only when the architecture does, in which case this file changes in
//! the same PR. Paths are workspace-relative with forward slashes.

use crate::lints::LintId;

/// Directories walked for sources, relative to the workspace root.
/// Only library/binary sources are linted: integration tests, examples
/// and benches are exercised by `cargo test` and free to panic.
pub const WALK_ROOTS: [&str; 2] = ["crates", "src"];

/// Crates whose `src/` is exempt from `no-panic`: the bench harnesses
/// are operator-run dev tools where crash-on-misconfiguration is the
/// desired behavior. Every library and the `dpipe` CLI are in scope.
const NO_PANIC_EXEMPT: [&str; 1] = ["crates/bench/"];

/// Modules that must stay wall-clock free: the discrete-event simulator
/// and the core replay entry point. `crates/core/src/planner.rs` is
/// explicitly *not* listed — it times its own search for `PlanStats`,
/// which never feeds a plan document.
const WALL_CLOCK_SCOPE: [&str; 2] = ["crates/sim/", "crates/core/src/simulate.rs"];

/// Fingerprint- and JSON-emitting modules whose output must be
/// byte-stable across processes: the stable hasher, the whole spec
/// crate (canonical encode/decode), and the shared JSON emitters.
const UNORDERED_MAP_SCOPE: [&str; 4] = [
    "crates/stablehash/",
    "crates/spec/",
    "crates/serve/src/json.rs",
    "crates/core/src/json.rs",
];

/// Does `lint` apply to the file at workspace-relative path `rel`?
pub fn lint_applies(lint: LintId, rel: &str) -> bool {
    match lint {
        LintId::NoPanic => !NO_PANIC_EXEMPT.iter().any(|p| rel.starts_with(p)),
        LintId::NoWallClock => WALL_CLOCK_SCOPE.iter().any(|p| rel.starts_with(p)),
        LintId::NoUnorderedMap => UNORDERED_MAP_SCOPE.iter().any(|p| rel.starts_with(p)),
        // The lock discipline (including the concurrency passes) and
        // the suppression meta-lints hold everywhere, bench harnesses
        // included.
        LintId::LockUnwrap
        | LintId::LockOrder
        | LintId::GuardAcrossBlocking
        | LintId::MalformedAllow
        | LintId::UnusedAllow => true,
    }
}
