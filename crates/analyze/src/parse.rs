//! Item-level parse layer on top of [`crate::lexer`].
//!
//! The concurrency passes need more structure than a flat token stream:
//! which tokens form a function body, which type a method belongs to,
//! and which struct fields are lock cells. This module recovers exactly
//! that — function boundaries, impl context, and `Mutex`/`RwLock`
//! struct fields — with a single linear walk over the code tokens. It
//! is deliberately not a Rust parser: anything it does not recognize it
//! skips, which keeps the analysis conservative (unrecognized code can
//! produce missed findings, never parse failures).

use crate::lexer::{Tok, TokKind};
use crate::scope::FileScope;

/// Which primitive a lock field wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A struct field whose type mentions `Mutex` or `RwLock`.
#[derive(Debug, Clone)]
pub struct LockField {
    pub name: String,
    pub kind: LockKind,
}

/// A struct declaring at least one lock field.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub lock_fields: Vec<LockField>,
    pub line: u32,
}

/// One function (free or method) with a brace body.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl` type this method belongs to, `None` for free
    /// functions. For `impl Trait for Type` this is `Type`.
    pub self_type: Option<String>,
    /// Code-index range of the body tokens: `(open_ci + 1, close_ci)`,
    /// i.e. everything strictly inside the braces.
    pub body: (usize, usize),
    pub line: u32,
}

/// Items recovered from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
}

/// Names the acquisition passes treat as the lock primitives
/// themselves: methods on these `impl` types define locking rather
/// than use it, so `self.lock()` inside them is not an acquisition.
pub const PRIMITIVE_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// An open brace context the item walker is currently inside.
struct Ctx {
    /// Code index of the matching `}`.
    close: usize,
    /// `Some(type)` inside an `impl` block, `None` elsewhere.
    impl_type: Option<String>,
}

/// Parse one file's items. Test-scoped items (per `scope.test_mask`)
/// are traversed but not recorded, so test-only locks and helpers never
/// enter the workspace model.
pub fn parse_file(toks: &[Tok], scope: &FileScope) -> FileItems {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut items = FileItems::default();
    let mut stack: Vec<Ctx> = Vec::new();
    let n = code.len();
    let mut ci = 0usize;
    while ci < n {
        while stack.last().is_some_and(|c| ci > c.close) {
            stack.pop();
        }
        let raw = code[ci];
        let masked = scope.test_mask.get(raw).copied().unwrap_or(false);
        let tok = &toks[raw];
        if tok.kind != TokKind::Ident {
            ci += 1;
            continue;
        }
        match tok.text.as_str() {
            "struct" => {
                if let Some(next) = parse_struct(toks, &code, ci, masked, &mut items) {
                    ci = next;
                    continue;
                }
                ci += 1;
            }
            "impl" => {
                if let Some((ty, open, close)) = parse_impl_header(toks, &code, ci) {
                    stack.push(Ctx {
                        close,
                        impl_type: Some(ty),
                    });
                    ci = open + 1;
                    continue;
                }
                ci += 1;
            }
            "fn" => {
                if let Some(next) = parse_fn(toks, &code, ci, masked, stack.last(), &mut items) {
                    ci = next;
                    continue;
                }
                ci += 1;
            }
            _ => ci += 1,
        }
    }
    items
}

/// Parse `struct Name { fields }` starting at the `struct` keyword.
/// Returns the code index to resume from, or `None` when the shape is
/// not recognized (tuple structs, unit structs — both lock-free here).
fn parse_struct(
    toks: &[Tok],
    code: &[usize],
    ci: usize,
    masked: bool,
    items: &mut FileItems,
) -> Option<usize> {
    let name = ident_at(toks, code, ci + 1)?.to_string();
    // Find the body `{` (skipping generics and where clauses) or bail
    // at `;`/`(` — unit and tuple structs carry no named lock fields.
    let mut k = ci + 2;
    let open = loop {
        let t = &toks[*code.get(k)?];
        match t.kind {
            TokKind::Punct(b'{') => break k,
            TokKind::Punct(b';') | TokKind::Punct(b'(') => return Some(k + 1),
            _ => k += 1,
        }
    };
    let close = crate::scope::match_delim(toks, code, open, b'{', b'}')?;
    if !masked {
        let lock_fields = parse_lock_fields(toks, code, open, close);
        if !lock_fields.is_empty() {
            items.structs.push(StructDef {
                name,
                lock_fields,
                line: toks[code[ci]].line,
            });
        }
    }
    Some(close + 1)
}

/// Scan a struct body for `field: …Mutex…`/`…RwLock…` declarations.
fn parse_lock_fields(toks: &[Tok], code: &[usize], open: usize, close: usize) -> Vec<LockField> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut in_type = false;
    let mut k = open + 1;
    let mut cur: Option<(String, Option<LockKind>)> = None;
    while k < close {
        let t = &toks[code[k]];
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct(b',') if depth == 0 => {
                if let Some((name, Some(kind))) = cur.take() {
                    fields.push(LockField { name, kind });
                }
                in_type = false;
            }
            TokKind::Punct(b':') if depth == 0 && !in_type => {
                // `name :` begins a field type; `::` paths only occur
                // inside types, where `in_type` is already set.
                if let Some(name) = ident_at(toks, code, k.wrapping_sub(1)) {
                    cur = Some((name.to_string(), None));
                    in_type = true;
                }
            }
            TokKind::Ident if in_type => {
                let kind = match t.text.as_str() {
                    "Mutex" => Some(LockKind::Mutex),
                    "RwLock" => Some(LockKind::RwLock),
                    _ => None,
                };
                if let (Some(k2), Some((_, slot @ None))) = (kind, cur.as_mut()) {
                    *slot = Some(k2);
                }
            }
            _ => {}
        }
        k += 1;
    }
    if let Some((name, Some(kind))) = cur.take() {
        fields.push(LockField { name, kind });
    }
    fields
}

/// Parse an `impl` header starting at the `impl` keyword. Returns
/// `(type_name, open_ci, close_ci)` for the brace body. Handles
/// `impl Type`, `impl<T> Type<T>`, `impl Trait for Type` and
/// `impl<T> Trait for Type<T>`; the type is the last path segment.
fn parse_impl_header(toks: &[Tok], code: &[usize], ci: usize) -> Option<(String, usize, usize)> {
    let mut k = ci + 1;
    // Skip the generic parameter list, if any.
    if punct_at(toks, code, k, b'<') {
        k = skip_angles(toks, code, k)?;
    }
    // Walk to the body `{`, remembering the last identifier seen at
    // angle-depth zero. A `for` resets it (trait name → type name); a
    // `where` freezes it (bound clauses only re-name known types).
    let mut last_ident: Option<&str> = None;
    let mut angle = 0usize;
    let mut in_where = false;
    loop {
        let t = &toks[*code.get(k)?];
        match t.kind {
            TokKind::Punct(b'{') if angle == 0 => {
                let close = crate::scope::match_delim(toks, code, k, b'{', b'}')?;
                return last_ident.map(|ty| (ty.to_string(), k, close));
            }
            TokKind::Punct(b'<') => angle += 1,
            // `->` in a generic bound like `Fn() -> T` is an arrow,
            // not an angle close.
            TokKind::Punct(b'>') if !punct_at(toks, code, k.wrapping_sub(1), b'-') => {
                angle = angle.saturating_sub(1);
            }
            TokKind::Punct(b';') => return None,
            TokKind::Ident if angle == 0 && !in_where => match t.text.as_str() {
                "for" => last_ident = None,
                "where" => in_where = true,
                "dyn" | "mut" => {}
                other => last_ident = Some(other),
            },
            _ => {}
        }
        k += 1;
        if k > code.len() {
            return None;
        }
    }
}

/// Skip a `<…>` generic list starting at its `<`; returns the code
/// index one past the matching `>`.
fn skip_angles(toks: &[Tok], code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = open;
    while k < code.len() {
        match toks[code[k]].kind {
            TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b'>') if !punct_at(toks, code, k.wrapping_sub(1), b'-') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            TokKind::Punct(b'{') | TokKind::Punct(b';') => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parse `fn name(…) … { body }` starting at the `fn` keyword. Returns
/// the code index to resume scanning from (inside the body, so nested
/// items are still discovered). Bodyless trait declarations resume
/// after their `;`.
fn parse_fn(
    toks: &[Tok],
    code: &[usize],
    ci: usize,
    masked: bool,
    ctx: Option<&Ctx>,
    items: &mut FileItems,
) -> Option<usize> {
    let name = ident_at(toks, code, ci + 1)?.to_string();
    let mut k = ci + 2;
    if punct_at(toks, code, k, b'<') {
        k = skip_angles(toks, code, k)?;
    }
    if !punct_at(toks, code, k, b'(') {
        return None;
    }
    let params_close = crate::scope::match_delim(toks, code, k, b'(', b')')?;
    // Between the parameter list and the body: return type and where
    // clause. Parens and brackets nest; the first top-level `{` opens
    // the body and a top-level `;` means a bodyless declaration.
    let mut depth = 0usize;
    let mut k = params_close + 1;
    let open = loop {
        let t = &toks[*code.get(k)?];
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth = depth.saturating_sub(1),
            TokKind::Punct(b';') if depth == 0 => return Some(k + 1),
            TokKind::Punct(b'{') if depth == 0 => break k,
            _ => {}
        }
        k += 1;
    };
    let close = crate::scope::match_delim(toks, code, open, b'{', b'}')?;
    if !masked {
        items.fns.push(FnDef {
            name,
            self_type: ctx.and_then(|c| c.impl_type.clone()),
            body: (open + 1, close),
            line: toks[code[ci]].line,
        });
    }
    Some(open + 1)
}

fn ident_at<'t>(toks: &'t [Tok], code: &[usize], ci: usize) -> Option<&'t str> {
    code.get(ci).and_then(|&i| toks.get(i)).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(toks: &[Tok], code: &[usize], ci: usize, b: u8) -> bool {
    code.get(ci)
        .and_then(|&i| toks.get(i))
        .is_some_and(|t| t.kind == TokKind::Punct(b))
}
