//! `dpipe-analyze` CLI: `cargo run -p dpipe_analyze -- check [--json]`
//! and `cargo run -p dpipe_analyze -- graph [--dot]`.
//!
//! Exit codes: 0 = clean, 1 = unallowed findings (`check` only),
//! 2 = usage or I/O error. Both the JSON report and the DOT graph are
//! byte-stable across runs on an unchanged tree, so CI can diff them
//! as artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use dpipe_analyze::{check, lock_graph};

const USAGE: &str = "usage: dpipe_analyze check [--json] [--root DIR]\n       dpipe_analyze graph [--dot] [--root DIR]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) if c == "check" || c == "graph" => c,
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut json = false;
    let mut dot = false;
    let mut root = PathBuf::from(".");
    let mut explicit_root = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" if cmd == "check" => json = true,
            "--dot" if cmd == "graph" => dot = true,
            "--root" => match args.next() {
                Some(dir) => {
                    root = PathBuf::from(dir);
                    explicit_root = true;
                }
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Bare `cargo run -p dpipe_analyze` runs from the workspace root; if
    // invoked from elsewhere fall back to the crate's own manifest
    // location two levels up. An explicit --root is never overridden.
    if !explicit_root && !root.join("Cargo.toml").is_file() {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        if let Some(ws) = manifest.parent().and_then(|p| p.parent()) {
            root = ws.to_path_buf();
        }
    }
    if cmd == "graph" {
        return match lock_graph(&root) {
            Ok(graph) => {
                if dot {
                    print!("{}", graph.to_dot());
                } else {
                    print!("{}", graph.to_text());
                }
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("dpipe-analyze: {err}");
                ExitCode::from(2)
            }
        };
    }
    match check(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.unallowed_count() > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("dpipe-analyze: {err}");
            ExitCode::from(2)
        }
    }
}
