//! Intra-workspace call-edge resolution and the held-set fixpoint.
//!
//! Call edges are resolved by name over the items the parse layer
//! recovered, with three deliberately conservative rules:
//!
//! - `self.method(…)` resolves against the enclosing `impl` type;
//! - `Type::method(…)` resolves against `Type` by name, workspace-wide;
//! - `receiver.method(…)` and free `name(…)` calls resolve only when
//!   exactly one workspace function bears that name — a shared name
//!   like `len` or `push` produces no edge rather than a wrong one.
//!
//! Unresolved calls (std, closures, trait objects) simply contribute
//! nothing, which keeps the analysis under-approximate: it can miss a
//! propagated lock acquisition, never invent one.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::locks::LockKey;

/// A function in the workspace model, flattened across files.
pub struct FnNode {
    pub file: usize,
    pub name: String,
    pub self_type: Option<String>,
    pub body: (usize, usize),
    /// Resolved callees (indices into the workspace fn table).
    pub calls: Vec<usize>,
    /// Keyed locks this fn acquires directly.
    pub direct_acquires: BTreeSet<LockKey>,
    /// Whether the body directly calls a blocking operation.
    pub direct_blocking: bool,
    /// Transitive closure over `calls` of `direct_acquires`.
    pub acquires_star: BTreeSet<LockKey>,
    /// Transitive closure over `calls` of `direct_blocking`.
    pub blocking_star: bool,
}

/// Name-resolution tables over the flattened fn list.
pub struct Resolver {
    /// `(self_type, name)` → fn index, when unambiguous.
    by_type_method: BTreeMap<(String, String), Option<usize>>,
    /// method name → fn index, when exactly one method bears it.
    by_method_name: BTreeMap<String, Option<usize>>,
    /// free-fn name → fn index, when exactly one free fn bears it.
    by_free_name: BTreeMap<String, Option<usize>>,
}

impl Resolver {
    pub fn build(fns: &[FnNode]) -> Resolver {
        let mut by_type_method: BTreeMap<(String, String), Option<usize>> = BTreeMap::new();
        let mut by_method_name: BTreeMap<String, Option<usize>> = BTreeMap::new();
        let mut by_free_name: BTreeMap<String, Option<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            match &f.self_type {
                Some(ty) => {
                    insert_unique(&mut by_type_method, (ty.clone(), f.name.clone()), idx);
                    insert_unique(&mut by_method_name, f.name.clone(), idx);
                }
                None => {
                    insert_unique(&mut by_free_name, f.name.clone(), idx);
                }
            }
        }
        Resolver {
            by_type_method,
            by_method_name,
            by_free_name,
        }
    }

    /// `self.name(…)` inside `impl ty`.
    pub fn resolve_self_method(&self, ty: &str, name: &str) -> Option<usize> {
        self.by_type_method
            .get(&(ty.to_string(), name.to_string()))
            .copied()
            .flatten()
    }

    /// `Type::name(…)`.
    pub fn resolve_path(&self, ty: &str, name: &str) -> Option<usize> {
        self.resolve_self_method(ty, name)
    }

    /// `receiver.name(…)` with an untyped receiver.
    pub fn resolve_method(&self, name: &str) -> Option<usize> {
        self.by_method_name.get(name).copied().flatten()
    }

    /// Free `name(…)`.
    pub fn resolve_free(&self, name: &str) -> Option<usize> {
        self.by_free_name.get(name).copied().flatten()
    }
}

/// Insert, demoting to `None` on collision: an ambiguous name resolves
/// to nothing rather than to an arbitrary winner.
fn insert_unique<K: Ord>(map: &mut BTreeMap<K, Option<usize>>, key: K, idx: usize) {
    map.entry(key)
        .and_modify(|slot| *slot = None)
        .or_insert(Some(idx));
}

/// One syntactic call site inside a fn body.
pub struct CallSite<'t> {
    /// Code index of the callee name token.
    pub ci: usize,
    pub name: &'t str,
    /// `Some(fn index)` when the callee resolved to a workspace fn.
    pub target: Option<usize>,
    /// True for `recv.name(…)` method calls (vs free/path calls).
    pub is_method: bool,
}

/// Extract the call sites of one fn body. `code` maps code indices to
/// raw token indices for the whole file.
pub fn call_sites<'t>(
    toks: &'t [Tok],
    code: &[usize],
    body: (usize, usize),
    self_type: Option<&str>,
    resolver: &Resolver,
) -> Vec<CallSite<'t>> {
    let ident = |ci: usize| -> Option<&str> {
        code.get(ci).and_then(|&i| toks.get(i)).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    };
    let punct = |ci: usize, b: u8| -> bool {
        code.get(ci)
            .and_then(|&i| toks.get(i))
            .is_some_and(|t| t.kind == TokKind::Punct(b))
    };
    let mut sites = Vec::new();
    for ci in body.0..body.1.min(code.len()) {
        let Some(name) = ident(ci) else { continue };
        if !punct(ci + 1, b'(') {
            continue;
        }
        // `name!(…)` macros never resolve; `name(…)` after `fn` is a
        // nested definition, not a call.
        if ident(ci.wrapping_sub(1)) == Some("fn") {
            continue;
        }
        if punct(ci - 1, b'.') {
            // Method call. `self.name(…)` resolves by impl type; any
            // other receiver resolves only by globally unique name.
            let target =
                if ident(ci.wrapping_sub(2)) == Some("self") && !punct(ci.wrapping_sub(3), b'.') {
                    self_type.and_then(|ty| resolver.resolve_self_method(ty, name))
                } else {
                    resolver.resolve_method(name)
                };
            sites.push(CallSite {
                ci,
                name,
                target,
                is_method: true,
            });
        } else if punct(ci - 1, b':') && punct(ci.wrapping_sub(2), b':') {
            // `Type::name(…)`. Resolution is strictly by type name
            // (with `Self` mapped to the impl type): a std path like
            // `thread::spawn(…)` must not capture a workspace free fn.
            let target = ident(ci.wrapping_sub(3)).and_then(|ty| {
                let ty = if ty == "Self" {
                    self_type.unwrap_or(ty)
                } else {
                    ty
                };
                resolver.resolve_path(ty, name)
            });
            sites.push(CallSite {
                ci,
                name,
                target,
                is_method: false,
            });
        } else {
            sites.push(CallSite {
                ci,
                name,
                target: resolver.resolve_free(name),
                is_method: false,
            });
        }
    }
    sites
}

/// Propagate `direct_acquires`/`direct_blocking` over the call graph to
/// a fixpoint, filling `acquires_star`/`blocking_star`.
pub fn propagate(fns: &mut [FnNode]) {
    for f in fns.iter_mut() {
        f.acquires_star = f.direct_acquires.clone();
        f.blocking_star = f.direct_blocking;
    }
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let callees = fns[i].calls.clone();
            let mut acq = fns[i].acquires_star.clone();
            let mut blk = fns[i].blocking_star;
            for c in callees {
                blk |= fns[c].blocking_star;
                for k in fns[c].acquires_star.iter() {
                    acq.insert(k.clone());
                }
            }
            if blk != fns[i].blocking_star || acq.len() != fns[i].acquires_star.len() {
                fns[i].blocking_star = blk;
                fns[i].acquires_star = acq;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}
