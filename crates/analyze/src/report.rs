//! Findings, per-file results and the aggregate report, with text and
//! byte-stable JSON rendering.
//!
//! Determinism contract: the same tree produces the same bytes. Files
//! are sorted by relative path, findings by (line, col, lint id),
//! allows by comment line; no timestamps, no absolute paths, no map
//! iteration anywhere in the rendering path.

use crate::lints::LintId;
use crate::locks::LockGraph;

/// One diagnostic at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: LintId,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub snippet: String,
}

/// An allow annotation after matching: `used` records whether it
/// suppressed at least one finding.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub line: u32,
    pub target_line: u32,
    pub lint: LintId,
    pub reason: String,
    pub used: bool,
}

/// Results for one scanned file.
#[derive(Debug, Clone, Default)]
pub struct FileResult {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Findings still standing after suppression matching.
    pub unallowed: Vec<Finding>,
    /// Findings suppressed by a valid allow (kept as receipts).
    pub allowed: Vec<Finding>,
    pub allows: Vec<AllowRecord>,
}

/// Aggregate report over the workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Only files with at least one finding or allow; sorted by path.
    pub files: Vec<FileResult>,
    /// The global lock-order graph assembled by the concurrency passes.
    pub graph: LockGraph,
}

impl Report {
    pub fn unallowed_count(&self) -> usize {
        self.files.iter().map(|f| f.unallowed.len()).sum()
    }

    pub fn allowed_count(&self) -> usize {
        self.files.iter().map(|f| f.allowed.len()).sum()
    }

    pub fn allows_total(&self) -> usize {
        self.files.iter().map(|f| f.allows.len()).sum()
    }

    pub fn allows_used(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.allows)
            .filter(|a| a.used)
            .count()
    }

    /// Human-readable rendering: one block per finding, then a summary
    /// line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            for f in &file.unallowed {
                out.push_str(&format!(
                    "{}:{}:{}: {}: {}\n",
                    file.rel,
                    f.line,
                    f.col,
                    f.lint.as_str(),
                    f.message
                ));
                if !f.snippet.is_empty() {
                    out.push_str(&format!("    {}\n", f.snippet));
                }
            }
        }
        let unallowed = self.unallowed_count();
        let total = unallowed + self.allowed_count();
        out.push_str(&format!(
            "dpipe-analyze: {} files scanned, {} finding{} ({} unallowed), {} allow{} ({} used)\n",
            self.files_scanned,
            total,
            if total == 1 { "" } else { "s" },
            unallowed,
            self.allows_total(),
            if self.allows_total() == 1 { "" } else { "s" },
            self.allows_used(),
        ));
        out
    }

    /// Byte-stable JSON rendering (fixed field order, sorted entries,
    /// trailing newline).
    ///
    /// Schema changelog:
    /// - v1: `files_scanned`, `summary`, `findings`, `allows`.
    /// - v2: adds the `lock_graph` object (`nodes`, `edges` with
    ///   `from`/`to`/`file`/`line`/`cyclic`) emitted by the
    ///   `lock-order` pass; the lint catalog gains `lock-order` and
    ///   `guard-across-blocking`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"summary\": {{\"findings_total\": {}, \"unallowed\": {}, \"allowed\": {}, \"allows_total\": {}, \"allows_used\": {}, \"allows_unused\": {}}},\n",
            self.unallowed_count() + self.allowed_count(),
            self.unallowed_count(),
            self.allowed_count(),
            self.allows_total(),
            self.allows_used(),
            self.allows_total() - self.allows_used(),
        ));
        out.push_str("  \"findings\": [");
        let mut first = true;
        for file in &self.files {
            let both = file
                .unallowed
                .iter()
                .map(|f| (f, false))
                .chain(file.allowed.iter().map(|f| (f, true)));
            let mut entries: Vec<(&Finding, bool)> = both.collect();
            entries.sort_by_key(|(f, _)| (f.line, f.col, f.lint));
            for (f, allowed) in entries {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \"allowed\": {}, \"message\": {}, \"snippet\": {}}}",
                    json_str(&file.rel),
                    f.line,
                    f.col,
                    json_str(f.lint.as_str()),
                    allowed,
                    json_str(&f.message),
                    json_str(&f.snippet),
                ));
            }
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"allows\": [");
        let mut first = true;
        for file in &self.files {
            for a in &file.allows {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"file\": {}, \"line\": {}, \"target_line\": {}, \"lint\": {}, \"used\": {}, \"reason\": {}}}",
                    json_str(&file.rel),
                    a.line,
                    a.target_line,
                    json_str(a.lint.as_str()),
                    a.used,
                    json_str(&a.reason),
                ));
            }
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"lock_graph\": {\"nodes\": [");
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("], \"edges\": [");
        let mut first = true;
        for e in &self.graph.edges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"cyclic\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.file),
                e.line,
                e.cyclic,
            ));
        }
        out.push_str(if first { "]}\n" } else { "\n  ]}\n" });
        out.push_str("}\n");
        out
    }
}

/// Escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
