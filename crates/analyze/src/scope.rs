//! Test-code scoping and allow-annotation parsing.
//!
//! The no-panic family of lints only applies to production code:
//! `#[test]` functions, `#[cfg(test)]` items and `mod tests { … }`
//! blocks are free to `unwrap()`. This module walks the token stream
//! once and produces a per-token mask of test-scoped regions, plus the
//! parsed allow annotations (inline suppressions) for the lint pass.

use crate::lexer::{Tok, TokKind};
use crate::lints::LintId;

/// A parsed allow annotation.
///
/// Suppressions are line comments of the form
/// `dpipe-analyze: allow(<lint>) -- <reason>` (see `docs/lints.md`).
/// A trailing comment suppresses findings on its own line; a comment
/// alone on a line suppresses findings on the next code line. Every
/// annotation must carry a non-empty reason after `--`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment itself sits on.
    pub comment_line: u32,
    /// Column of the comment's `//`.
    pub comment_col: u32,
    /// Line whose findings this annotation suppresses.
    pub target_line: u32,
    pub lint: LintId,
    pub reason: String,
}

/// A suppression comment that did not parse (missing reason, unknown
/// lint id, bad syntax). Reported as a `malformed-allow` finding.
#[derive(Debug, Clone)]
pub struct MalformedAllow {
    pub line: u32,
    pub col: u32,
    pub detail: String,
}

/// Per-file scoping information consumed by the lint pass.
#[derive(Debug, Default)]
pub struct FileScope {
    /// `mask[i]` is true when token `i` is inside test-scoped code.
    pub test_mask: Vec<bool>,
    pub allows: Vec<Allow>,
    pub malformed: Vec<MalformedAllow>,
}

/// Compute test-scope mask and allow annotations for one file's tokens.
pub fn scope_file(toks: &[Tok]) -> FileScope {
    let mut scope = FileScope {
        test_mask: vec![false; toks.len()],
        ..FileScope::default()
    };
    mark_test_regions(toks, &mut scope.test_mask);
    collect_allows(
        toks,
        &scope.test_mask,
        &mut scope.allows,
        &mut scope.malformed,
    );
    scope
}

fn ident_is(toks: &[Tok], code: &[usize], ci: usize, text: &str) -> bool {
    code.get(ci)
        .and_then(|&i| toks.get(i))
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_is(toks: &[Tok], code: &[usize], ci: usize, b: u8) -> bool {
    code.get(ci)
        .and_then(|&i| toks.get(i))
        .is_some_and(|t| t.kind == TokKind::Punct(b))
}

/// Mark every token belonging to a test-only item.
///
/// Recognized forms:
/// - an attribute whose argument tokens mention `test` (covers
///   `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) and do not
///   mention `not` (so `#[cfg(not(test))]` stays production code),
///   applied to the item that follows;
/// - `mod tests { … }` with or without an attribute.
fn mark_test_regions(toks: &[Tok], mask: &mut [bool]) {
    // Indices of code tokens (identifiers, punctuation, literals);
    // comments never participate in structure.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let n = code.len();
    let mut ci = 0usize;
    while ci < n {
        if punct_is(toks, &code, ci, b'#') && punct_is(toks, &code, ci + 1, b'[') {
            let close = match match_delim(toks, &code, ci + 1, b'[', b']') {
                Some(c) => c,
                None => break,
            };
            let mut mentions_test = false;
            let mut mentions_not = false;
            for &k in &code[ci + 2..close] {
                if toks[k].kind == TokKind::Ident {
                    match toks[k].text.as_str() {
                        "test" => mentions_test = true,
                        "not" => mentions_not = true,
                        _ => {}
                    }
                }
            }
            if mentions_test && !mentions_not {
                // Skip any further attributes, then the item itself.
                let mut k = close + 1;
                while punct_is(toks, &code, k, b'#') && punct_is(toks, &code, k + 1, b'[') {
                    match match_delim(toks, &code, k + 1, b'[', b']') {
                        Some(c) => k = c + 1,
                        None => break,
                    }
                }
                let end = skip_item(toks, &code, k);
                mark_range(&code, ci, end, mask);
                ci = end;
                continue;
            }
            ci = close + 1;
            continue;
        }
        if ident_is(toks, &code, ci, "mod")
            && ident_is(toks, &code, ci + 1, "tests")
            && punct_is(toks, &code, ci + 2, b'{')
        {
            let close = match match_delim(toks, &code, ci + 2, b'{', b'}') {
                Some(c) => c,
                None => n,
            };
            mark_range(&code, ci, close.saturating_add(1), mask);
            ci = close + 1;
            continue;
        }
        ci += 1;
    }
}

/// Mark tokens from code index `from` (inclusive) to code index `to`
/// (exclusive), covering interleaved comment tokens as well.
fn mark_range(code: &[usize], from: usize, to: usize, mask: &mut [bool]) {
    if from >= code.len() {
        return;
    }
    let start = code[from];
    let end = if to == 0 || to > code.len() {
        mask.len()
    } else {
        code[to - 1] + 1
    };
    for m in mask.iter_mut().take(end).skip(start) {
        *m = true;
    }
}

/// Given the code index of an opening delimiter, return the code index
/// of its matching closer.
pub(crate) fn match_delim(
    toks: &[Tok],
    code: &[usize],
    open_ci: usize,
    open: u8,
    close: u8,
) -> Option<usize> {
    let mut depth = 0usize;
    for ci in open_ci..code.len() {
        match toks[code[ci]].kind {
            TokKind::Punct(b) if b == open => depth += 1,
            TokKind::Punct(b) if b == close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(ci);
                }
            }
            _ => {}
        }
    }
    None
}

/// Skip one item starting at code index `k`; returns the code index one
/// past its end. An item ends at the first `;` outside any nesting, or
/// at the close of the first brace block (fn bodies, mods, impls).
fn skip_item(toks: &[Tok], code: &[usize], k: usize) -> usize {
    let mut depth = 0usize;
    let mut ci = k;
    while ci < code.len() {
        match toks[code[ci]].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth = depth.saturating_sub(1),
            TokKind::Punct(b';') if depth == 0 => return ci + 1,
            TokKind::Punct(b'{') if depth == 0 => {
                return match match_delim(toks, code, ci, b'{', b'}') {
                    Some(c) => c + 1,
                    None => code.len(),
                };
            }
            _ => {}
        }
        ci += 1;
    }
    code.len()
}

const MARKER: &str = "dpipe-analyze";

/// Parse allow annotations out of line comments.
fn collect_allows(
    toks: &[Tok],
    mask: &[bool],
    allows: &mut Vec<Allow>,
    malformed: &mut Vec<MalformedAllow>,
) {
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment || mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let text = tok.text.trim_start();
        if !text.starts_with(MARKER) {
            continue;
        }
        match parse_allow(text) {
            Ok((lint, reason)) => {
                let has_code_before = toks[..i].iter().any(|t| t.is_code() && t.line == tok.line);
                let target_line = if has_code_before {
                    tok.line
                } else {
                    toks[i + 1..]
                        .iter()
                        .find(|t| t.is_code())
                        .map(|t| t.line)
                        .unwrap_or(tok.line)
                };
                allows.push(Allow {
                    comment_line: tok.line,
                    comment_col: tok.col,
                    target_line,
                    lint,
                    reason,
                });
            }
            Err(detail) => {
                malformed.push(MalformedAllow {
                    line: tok.line,
                    col: tok.col,
                    detail,
                });
            }
        }
    }
}

/// Parse `dpipe-analyze: allow(<lint>) -- <reason>` (the marker prefix
/// has already been checked). Returns the lint and reason, or a
/// diagnostic describing what is wrong.
fn parse_allow(text: &str) -> Result<(LintId, String), String> {
    let rest = match text.strip_prefix(MARKER) {
        Some(r) => r,
        None => return Err("missing marker".to_string()),
    };
    let rest = match rest.strip_prefix(':') {
        Some(r) => r.trim_start(),
        None => return Err("expected `:` after marker".to_string()),
    };
    let rest = match rest.strip_prefix("allow(") {
        Some(r) => r,
        None => return Err("expected `allow(<lint>)`".to_string()),
    };
    let (id, rest) = match rest.split_once(')') {
        Some(pair) => pair,
        None => return Err("unclosed `allow(`".to_string()),
    };
    let lint = match LintId::parse(id.trim()) {
        Some(l) => l,
        None => return Err(format!("unknown lint id `{}`", id.trim())),
    };
    if !lint.allowable() {
        return Err(format!("lint `{}` cannot be suppressed", lint.as_str()));
    }
    let rest = rest.trim_start();
    let reason = match rest.strip_prefix("--") {
        Some(r) => r.trim(),
        None => return Err("expected `-- <reason>` after allow(...)".to_string()),
    };
    if reason.is_empty() {
        return Err("empty reason: every allow must say why".to_string());
    }
    Ok((lint, reason.to_string()))
}
