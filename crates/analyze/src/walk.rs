//! Deterministic discovery of workspace sources.
//!
//! Walks `crates/*/src/**.rs` plus the root `src/**.rs` and returns
//! workspace-relative paths sorted lexicographically, so every run over
//! the same tree scans the same files in the same order regardless of
//! directory-entry ordering.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::WALK_ROOTS;
use crate::AnalyzeError;

/// All `.rs` sources in lint scope under `root`, as sorted
/// workspace-relative forward-slash paths.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, AnalyzeError> {
    let mut rels = Vec::new();
    for walk_root in WALK_ROOTS {
        let dir = root.join(walk_root);
        if !dir.is_dir() {
            continue;
        }
        if walk_root == "crates" {
            for crate_dir in sorted_entries(&dir)? {
                let src = crate_dir.join("src");
                if src.is_dir() {
                    collect_rs(root, &src, &mut rels)?;
                }
            }
        } else {
            collect_rs(root, &dir, &mut rels)?;
        }
    }
    rels.sort();
    Ok(rels)
}

/// Recursively gather `.rs` files under `dir` as root-relative paths.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), AnalyzeError> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rs(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = entry.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Directory entries sorted by path for deterministic traversal.
fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, AnalyzeError> {
    let rd = fs::read_dir(dir).map_err(|e| AnalyzeError::io(dir, e))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| AnalyzeError::io(dir, e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}
