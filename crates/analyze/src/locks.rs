//! The concurrency passes: `lock-order` and `guard-across-blocking`.
//!
//! Built on the item layer ([`crate::parse`]) and call edges
//! ([`crate::callgraph`]), this module models guard lifetimes through
//! block scopes, propagates held-lock sets across intra-workspace
//! calls, assembles the global lock-order graph, and flags:
//!
//! - **`lock-order`** — any acquisition that closes a cycle in the
//!   lock-order graph (two threads taking the same pair of locks in
//!   opposite orders is a deadlock waiting for load);
//! - **`guard-across-blocking`** — holding a guard across a channel
//!   `send`/`recv`, a condvar wait, a thread join, or socket I/O (the
//!   worker-wedge shape the chaos suite probes dynamically).
//!
//! Locks are keyed `crate::Type::field` — the crate directory name
//! (`dpipe` for the root binary), the struct that declares the field,
//! and the field name. Locals and unresolvable receivers get no key:
//! they still count as held guards for the blocking pass, but never
//! enter the global graph. The same keys are the tag strings the
//! runtime witness in `dpipe_sync` records, which is what lets tests
//! check observed orders against this statically derived graph.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::callgraph::{self, CallSite, FnNode, Resolver};
use crate::lexer::{Tok, TokKind};
use crate::lints::{snippet_at, LintId};
use crate::parse::{FileItems, LockKind, PRIMITIVE_TYPES};
use crate::report::Finding;
use crate::scope::{match_delim, FileScope};

/// Identity of a lock in the order graph: `crate::Type::field`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockKey {
    pub krate: String,
    pub type_name: String,
    pub field: String,
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}::{}", self.krate, self.type_name, self.field)
    }
}

/// The crate component of a lock key for a workspace-relative path:
/// the directory name under `crates/`, or `dpipe` for the root binary
/// sources under `src/`.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("dpipe")
}

/// Methods that acquire a `Mutex`-family guard.
const MUTEX_ACQUIRE: [&str; 3] = ["lock", "lock_recover", "lock_recover_tagged"];

/// Methods that acquire an `RwLock` guard — only when the receiver
/// resolves to a known `RwLock` field, since `read`/`write` are also
/// I/O verbs.
const RW_ACQUIRE: [&str; 2] = ["read", "write"];

/// Calls that can block the current thread: channel ends, condvar
/// waits, thread joins and sleeps, socket and stream I/O. `notify_*`
/// is deliberately absent — waking a condvar never blocks.
const BLOCKING: [&str; 22] = [
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "send",
    "send_timeout",
    "sleep",
    "wait",
    "wait_recover",
    "wait_recover_tagged",
    "wait_timeout",
    "wait_while",
    "write",
    "write_all",
];

/// One edge of the lock-order graph with the site that created it.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Workspace-relative path of the acquisition (or call) site.
    pub file: String,
    pub line: u32,
    /// True when this edge lies on a cycle.
    pub cyclic: bool,
}

/// The global lock-order graph: nodes are every keyed lock field
/// declared in the workspace, edges are observed held-while-acquiring
/// orders. Nodes and edges are sorted, so rendering is byte-stable.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    pub nodes: Vec<String>,
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Deterministic Graphviz rendering. Cyclic edges are red.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph lock_order {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for n in &self.nodes {
            out.push_str(&format!("  \"{}\";\n", n));
        }
        for e in &self.edges {
            let color = if e.cyclic { ", color=\"red\"" } else { "" };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"{}];\n",
                e.from, e.to, e.file, e.line, color
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Plain-text rendering for the CLI.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("node {}\n", n));
        }
        for e in &self.edges {
            let mark = if e.cyclic { " CYCLE" } else { "" };
            out.push_str(&format!(
                "edge {} -> {} ({}:{}){}\n",
                e.from, e.to, e.file, e.line, mark
            ));
        }
        out.push_str(&format!(
            "lock-order graph: {} locks, {} edges, {} on cycles\n",
            self.nodes.len(),
            self.edges.len(),
            self.edges.iter().filter(|e| e.cyclic).count(),
        ));
        out
    }
}

/// Everything the workspace pass needs about one file.
pub struct FileData<'a> {
    /// Position of this file in the workspace list (edge attribution).
    pub index: usize,
    pub rel: &'a str,
    pub toks: &'a [Tok],
    pub code: &'a [usize],
    pub scope: &'a FileScope,
    pub lines: &'a [&'a str],
    pub items: &'a FileItems,
}

/// Accumulated `(from, to)` edges keyed to the first site that created
/// each: `(file index, line, col, via-callee)`.
type EdgeMap = BTreeMap<(String, String), (usize, u32, u32, Option<String>)>;

/// Lock-field resolution across files: field name → declaring structs.
struct FieldTable {
    by_name: BTreeMap<String, Vec<(usize, LockKey, LockKind)>>,
}

impl FieldTable {
    fn build(files: &[FileData]) -> FieldTable {
        let mut by_name: BTreeMap<String, Vec<(usize, LockKey, LockKind)>> = BTreeMap::new();
        for (fi, fd) in files.iter().enumerate() {
            let krate = crate_of(fd.rel);
            for s in &fd.items.structs {
                for lf in &s.lock_fields {
                    by_name.entry(lf.name.clone()).or_default().push((
                        fi,
                        LockKey {
                            krate: krate.to_string(),
                            type_name: s.name.clone(),
                            field: lf.name.clone(),
                        },
                        lf.kind,
                    ));
                }
            }
        }
        FieldTable { by_name }
    }

    /// Resolve `….field.lock…()` to a key: unique within the same file
    /// first, then the same crate, then the workspace. Ambiguity at
    /// every level resolves to `None` — no key beats a wrong key.
    fn resolve(&self, field: &str, file: usize, krate: &str) -> Option<(LockKey, LockKind)> {
        let cands = self.by_name.get(field)?;
        for scope in 0..3u8 {
            let hits: Vec<&(usize, LockKey, LockKind)> = cands
                .iter()
                .filter(|(fi, key, _)| match scope {
                    0 => *fi == file,
                    1 => key.krate == krate,
                    _ => true,
                })
                .collect();
            if hits.len() == 1 {
                return Some((hits[0].1.clone(), hits[0].2));
            }
            if hits.len() > 1 {
                return None;
            }
        }
        None
    }

    /// Every declared lock key, for the graph's node set.
    fn all_keys(&self) -> BTreeSet<String> {
        self.by_name
            .values()
            .flat_map(|v| v.iter().map(|(_, k, _)| k.to_string()))
            .collect()
    }
}

/// How an acquisition site binds its guard.
enum Life {
    /// `let g = ….lock…();` — lives to the end of the enclosing block.
    Block { depth: i32 },
    /// Expression temporary — dies at the next `;`, top-level `,`, or
    /// closing `}`.
    Temp,
    /// `if`/`while`/`for` head temporary — dies at the body's `{`.
    CondTemp,
    /// `match` scrutinee temporary — lives until the match closes
    /// (the classic extended-temporary footgun, modeled faithfully).
    Until(usize),
}

struct Held {
    key: Option<LockKey>,
    var: Option<String>,
    life: Life,
    line: u32,
}

/// What an acquisition-shaped call turned out to be.
enum Acq {
    /// A keyed acquisition of a declared lock field.
    Keyed(LockKey),
    /// A lock acquisition on a local/unresolvable receiver: held for
    /// the blocking pass, invisible to the order graph.
    Anon,
    /// The lock primitive's own implementation (`self.lock()` inside
    /// `impl … for Mutex<T>`): not a use of locking at all.
    Primitive,
    /// Not an acquisition (e.g. `.read(` on a socket).
    No,
}

/// Run both concurrency passes over the workspace. Returns per-file
/// findings (parallel to `files`) and the global lock-order graph.
pub fn analyze_workspace(files: &[FileData]) -> (Vec<Vec<Finding>>, LockGraph) {
    let fields = FieldTable::build(files);
    let per_file_items: Vec<&FileItems> = files.iter().map(|f| f.items).collect();
    let mut fns = flatten_items(&per_file_items);
    let resolver = Resolver::build(&fns);

    // Pass A: per-fn direct facts — resolved call edges, direct keyed
    // acquisitions, direct blocking calls.
    for i in 0..fns.len() {
        let fd = &files[fns[i].file];
        let sites = callgraph::call_sites(
            fd.toks,
            fd.code,
            fns[i].body,
            fns[i].self_type.as_deref(),
            &resolver,
        );
        let krate = crate_of(fd.rel);
        let mut calls = Vec::new();
        for site in &sites {
            match classify_acquisition(fd, &fields, fns[i].self_type.as_deref(), krate, site) {
                Acq::Keyed(key) => {
                    fns[i].direct_acquires.insert(key);
                }
                Acq::Anon | Acq::Primitive => {}
                Acq::No => {
                    if BLOCKING.contains(&site.name) {
                        fns[i].direct_blocking = true;
                    }
                    if let Some(t) = site.target {
                        calls.push(t);
                    }
                }
            }
        }
        calls.sort_unstable();
        calls.dedup();
        fns[i].calls = calls;
    }
    callgraph::propagate(&mut fns);

    // Pass B: guard-lifetime simulation emitting edges and findings.
    let mut findings: Vec<Vec<Finding>> = files.iter().map(|_| Vec::new()).collect();
    let mut edges = EdgeMap::new();
    for i in 0..fns.len() {
        simulate_fn(
            &fns,
            i,
            files,
            &fields,
            &resolver,
            &mut edges,
            &mut findings,
        );
    }

    // Cycle detection over the keyed graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    let mut graph = LockGraph {
        nodes: fields.all_keys().into_iter().collect(),
        edges: Vec::new(),
    };
    for ((from, to), (file, line, col, via)) in &edges {
        let cyclic = reaches(&adj, to, from);
        if cyclic {
            let fd = &files[*file];
            let via_note = match via {
                Some(callee) => format!(" (via call to `{}`)", callee),
                None => String::new(),
            };
            findings[*file].push(Finding {
                lint: LintId::LockOrder,
                line: *line,
                col: *col,
                message: format!(
                    "acquiring `{}`{} while holding `{}` closes a cycle in the lock-order graph; potential deadlock",
                    to, via_note, from
                ),
                snippet: snippet_at(fd.lines, *line),
            });
        }
        for key in [from, to] {
            if !graph.nodes.contains(key) {
                graph.nodes.push(key.clone());
            }
        }
        graph.edges.push(LockEdge {
            from: from.clone(),
            to: to.clone(),
            file: files[*file].rel.to_string(),
            line: *line,
            cyclic,
        });
    }
    graph.nodes.sort();
    graph.nodes.dedup();
    (findings, graph)
}

/// Is `to` reachable from `from` in the edge relation? (`from == to`
/// counts: a self-edge is a self-deadlock.)
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            for &m in next {
                if m == to {
                    return true;
                }
                stack.push(m);
            }
        }
    }
    false
}

fn flatten_items(per_file: &[&FileItems]) -> Vec<FnNode> {
    let mut fns = Vec::new();
    for (file, items) in per_file.iter().enumerate() {
        for f in &items.fns {
            fns.push(FnNode {
                file,
                name: f.name.clone(),
                self_type: f.self_type.clone(),
                body: f.body,
                calls: Vec::new(),
                direct_acquires: BTreeSet::new(),
                direct_blocking: false,
                acquires_star: BTreeSet::new(),
                blocking_star: false,
            });
        }
    }
    fns
}

/// Decide whether a call site is a lock acquisition and of what.
fn classify_acquisition(
    fd: &FileData,
    fields: &FieldTable,
    self_type: Option<&str>,
    krate: &str,
    site: &CallSite,
) -> Acq {
    let is_mutex_acq = MUTEX_ACQUIRE.contains(&site.name);
    let is_rw_acq = RW_ACQUIRE.contains(&site.name);
    if !site.is_method || (!is_mutex_acq && !is_rw_acq) {
        return Acq::No;
    }
    let file_idx = file_index(fd);
    let ident = |ci: usize| ident_text(fd, ci);
    let punct = |ci: usize, b: u8| punct_is(fd, ci, b);
    let ci = site.ci;
    // Receiver shape: `….field.name(` vs `ident.name(` vs `(expr).name(`.
    if let Some(field) = ident(ci.wrapping_sub(2)) {
        if punct(ci.wrapping_sub(3), b'.') {
            // Field access: resolve by field name.
            return match fields.resolve(field, file_idx, krate) {
                Some((key, kind)) => {
                    if is_rw_acq && kind != LockKind::RwLock {
                        Acq::No
                    } else {
                        Acq::Keyed(key)
                    }
                }
                None => {
                    if is_mutex_acq {
                        Acq::Anon
                    } else {
                        Acq::No
                    }
                }
            };
        }
        if field == "self" {
            if self_type.is_some_and(|ty| PRIMITIVE_TYPES.contains(&ty)) {
                return Acq::Primitive;
            }
            return if is_mutex_acq { Acq::Anon } else { Acq::No };
        }
        // Bare local or static receiver.
        return if is_mutex_acq { Acq::Anon } else { Acq::No };
    }
    // `).lock(`, `].lock(`, tuple fields, etc.
    if is_mutex_acq {
        Acq::Anon
    } else {
        Acq::No
    }
}

/// Walk one fn body tracking held guards; emit lock-order edges and
/// guard-across-blocking findings.
#[allow(clippy::too_many_arguments)]
fn simulate_fn(
    fns: &[FnNode],
    idx: usize,
    files: &[FileData],
    fields: &FieldTable,
    resolver: &Resolver,
    edges: &mut EdgeMap,
    findings: &mut [Vec<Finding>],
) {
    let f = &fns[idx];
    let fd = &files[f.file];
    let krate = crate_of(fd.rel);
    let sites = callgraph::call_sites(fd.toks, fd.code, f.body, f.self_type.as_deref(), resolver);
    let site_at: BTreeMap<usize, &CallSite> = sites.iter().map(|s| (s.ci, s)).collect();

    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    let mut paren: i32 = 0;
    let (start, end) = f.body;
    let mut ci = start;
    while ci < end.min(fd.code.len()) {
        held.retain(|g| !matches!(g.life, Life::Until(e) if ci >= e));
        let tok = &fd.toks[fd.code[ci]];
        match tok.kind {
            TokKind::Punct(b'{') => {
                held.retain(|g| !matches!(g.life, Life::CondTemp));
                depth += 1;
            }
            TokKind::Punct(b'}') => {
                held.retain(|g| !matches!(g.life, Life::Temp | Life::CondTemp));
                depth -= 1;
                held.retain(|g| !matches!(g.life, Life::Block { depth: d, .. } if depth < d));
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
            TokKind::Punct(b';') | TokKind::Punct(b',') if paren == 0 => {
                held.retain(|g| !matches!(g.life, Life::Temp | Life::CondTemp));
            }
            TokKind::Ident => {
                // `drop(g)` releases a bound guard early.
                if tok.text == "drop" && punct_is(fd, ci + 1, b'(') && punct_is(fd, ci + 3, b')') {
                    if let Some(var) = ident_text(fd, ci + 2) {
                        held.retain(|g| g.var.as_deref() != Some(var));
                    }
                }
                if let Some(site) = site_at.get(&ci) {
                    handle_call_site(
                        fns, idx, fd, fields, krate, site, &mut held, depth, edges, findings,
                    );
                }
            }
            _ => {}
        }
        ci += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_call_site(
    fns: &[FnNode],
    idx: usize,
    fd: &FileData,
    fields: &FieldTable,
    krate: &str,
    site: &CallSite,
    held: &mut Vec<Held>,
    depth: i32,
    edges: &mut EdgeMap,
    findings: &mut [Vec<Finding>],
) {
    let f = &fns[idx];
    let file_idx = file_index(fd);
    let tok = &fd.toks[fd.code[site.ci]];
    match classify_acquisition(fd, fields, f.self_type.as_deref(), krate, site) {
        Acq::Primitive => return,
        Acq::Keyed(key) => {
            for g in held.iter() {
                if let Some(from) = &g.key {
                    record_edge(edges, from, &key, file_idx, tok.line, tok.col, None);
                }
            }
            let (life, var) = classify_life(fd, site.ci, depth);
            held.push(Held {
                key: Some(key),
                var,
                life,
                line: tok.line,
            });
            return;
        }
        Acq::Anon => {
            let (life, var) = classify_life(fd, site.ci, depth);
            held.push(Held {
                key: None,
                var,
                life,
                line: tok.line,
            });
            return;
        }
        Acq::No => {}
    }

    if held.is_empty() {
        return;
    }
    let target_blocks = site.target.is_some_and(|t| fns[t].blocking_star);
    let direct_block = BLOCKING.contains(&site.name);
    if direct_block || target_blocks {
        // Guards passed into the call are released by it (condvar
        // waits take their guard by value): exempt them.
        let args = call_arg_idents(fd, site.ci);
        if let Some(g) = held
            .iter()
            .find(|g| !g.var.as_deref().is_some_and(|v| args.contains(v)))
        {
            let what = match &g.key {
                Some(k) => format!("`{}`", k),
                None => match &g.var {
                    Some(v) => format!("local guard `{}`", v),
                    None => "a lock guard".to_string(),
                },
            };
            let why = if direct_block {
                format!("`{}` can block", site.name)
            } else {
                format!(
                    "`{}` can block (it waits or does I/O transitively)",
                    site.name
                )
            };
            findings[file_idx].push(Finding {
                lint: LintId::GuardAcrossBlocking,
                line: tok.line,
                col: tok.col,
                message: format!(
                    "{} while holding {} (acquired on line {}); release the guard before blocking",
                    why, what, g.line
                ),
                snippet: snippet_at(fd.lines, tok.line),
            });
        }
    }
    // Held-set propagation: calling a fn that takes keyed locks while
    // holding keyed locks creates order edges at this call site.
    if let Some(t) = site.target {
        if !fns[t].acquires_star.is_empty() {
            for g in held.iter() {
                if let Some(from) = &g.key {
                    for to in fns[t].acquires_star.iter() {
                        record_edge(
                            edges,
                            from,
                            to,
                            file_idx,
                            tok.line,
                            tok.col,
                            Some(fns[t].name.clone()),
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::type_complexity)]
fn record_edge(
    edges: &mut EdgeMap,
    from: &LockKey,
    to: &LockKey,
    file: usize,
    line: u32,
    col: u32,
    via: Option<String>,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert((file, line, col, via));
}

/// Classify how the acquisition at `ci` binds its guard: scan back to
/// the statement head, then forward past the call's closing paren.
fn classify_life(fd: &FileData, ci: usize, depth: i32) -> (Life, Option<String>) {
    // Backward to the statement boundary, skipping balanced groups.
    let mut back = ci;
    let mut rev_depth = 0i32;
    let boundary = loop {
        if back == 0 {
            break 0;
        }
        back -= 1;
        match fd.toks[fd.code[back]].kind {
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => rev_depth += 1,
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                if rev_depth == 0 {
                    break back + 1;
                }
                rev_depth -= 1;
            }
            TokKind::Punct(b';') | TokKind::Punct(b',') if rev_depth == 0 => break back + 1,
            _ => {}
        }
    };
    let mut head = boundary;
    if ident_text(fd, head) == Some("else") {
        head += 1;
    }
    match ident_text(fd, head) {
        Some("let") => {
            let mut v = head + 1;
            if ident_text(fd, v) == Some("mut") {
                v += 1;
            }
            let var = ident_text(fd, v).map(str::to_string);
            // Bound only when the guard is the whole initializer:
            // `… = recv.lock…(args);`.
            if let Some(close) = match_delim(fd.toks, fd.code, ci + 1, b'(', b')') {
                if punct_is(fd, close + 1, b';') {
                    return (Life::Block { depth }, var);
                }
            }
            (Life::Temp, None)
        }
        Some("if") | Some("while") | Some("for") => (Life::CondTemp, None),
        Some("match") => {
            // The scrutinee temporary survives the whole match.
            if let Some(close) = match_delim(fd.toks, fd.code, ci + 1, b'(', b')') {
                let mut k = close + 1;
                let mut d = 0i32;
                while k < fd.code.len() {
                    match fd.toks[fd.code[k]].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') => d += 1,
                        TokKind::Punct(b')') | TokKind::Punct(b']') => d -= 1,
                        TokKind::Punct(b'{') if d == 0 => {
                            let end = match_delim(fd.toks, fd.code, k, b'{', b'}')
                                .unwrap_or(fd.code.len());
                            return (Life::Until(end), None);
                        }
                        TokKind::Punct(b';') if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            (Life::Temp, None)
        }
        _ => (Life::Temp, None),
    }
}

/// Arguments of the call at `ci` that are a bare identifier — the
/// whole top-level argument is one ident, nothing else. Only those can
/// be a guard moved *into* the call (the `cvar.wait_recover(guard)`
/// release pattern); a guard merely mentioned in an argument
/// expression (`tx.send(guard.len())`) stays held across the call.
fn call_arg_idents<'a>(fd: &FileData<'a>, ci: usize) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    let Some(close) = match_delim(fd.toks, fd.code, ci + 1, b'(', b')') else {
        return out;
    };
    let mut depth = 0i32;
    let mut arg_start = ci + 2;
    let mut flush = |start: usize, end: usize| {
        if end == start + 1 {
            let t = &fd.toks[fd.code[start]];
            if t.kind == TokKind::Ident {
                out.insert(t.text.as_str());
            }
        }
    };
    for k in ci + 2..close {
        match fd.toks[fd.code[k]].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
            TokKind::Punct(b',') if depth == 0 => {
                flush(arg_start, k);
                arg_start = k + 1;
            }
            _ => {}
        }
    }
    flush(arg_start, close);
    out
}

fn ident_text<'a>(fd: &FileData<'a>, ci: usize) -> Option<&'a str> {
    fd.code.get(ci).and_then(|&i| fd.toks.get(i)).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_is(fd: &FileData, ci: usize, b: u8) -> bool {
    fd.code
        .get(ci)
        .and_then(|&i| fd.toks.get(i))
        .is_some_and(|t| t.kind == TokKind::Punct(b))
}

/// Index of `fd` within the workspace file list. Stored on the struct
/// to avoid threading another parameter everywhere.
fn file_index(fd: &FileData) -> usize {
    fd.index
}
