//! Token-level lexer for Rust source.
//!
//! The linter never wants a full parse: every invariant it enforces is
//! visible in the token stream (`.unwrap()`, `panic!`, `Instant`,
//! `HashMap`, …). What it *does* need is for comments, string literals,
//! char literals and raw strings to never produce identifier tokens — a
//! doc example containing `.unwrap()` or a log message mentioning
//! `panic!` must not trip a lint. This module therefore lexes exactly
//! enough of Rust's lexical grammar to classify every byte of a source
//! file as identifier, punctuation, literal or comment, with precise
//! line/column positions, and leaves everything else to the lint pass.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text available via [`Tok::text`]).
    Ident,
    /// A single punctuation byte (`.`, `!`, `{`, …).
    Punct(u8),
    /// String, raw-string, byte-string, byte or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// `// …` comment (text available via [`Tok::text`], without `//`).
    LineComment,
    /// `/* … */` comment (possibly nested).
    BlockComment,
}

/// One token with its position in the source file.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
    /// Token text; populated for identifiers and line comments (the two
    /// kinds the lint pass inspects), empty for everything else.
    pub text: String,
}

impl Tok {
    /// True for tokens the lint pass matches on (identifiers and
    /// punctuation); comments and literals are position markers only.
    pub fn is_code(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Ident
                | TokKind::Punct(_)
                | TokKind::Literal
                | TokKind::Number
                | TokKind::Lifetime
        )
    }
}

/// Byte-oriented scanner with line/column tracking.
struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a [u8]) -> Self {
        Scanner {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advance one byte, maintaining line/col counters.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream.
///
/// The lexer is total: any byte sequence produces a token list (malformed
/// input degrades to punctuation tokens rather than failing), so the lint
/// pass can run on any file the walker hands it.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut s = Scanner::new(src.as_bytes());
    let mut toks = Vec::new();
    while let Some(b) = s.peek() {
        let (line, col) = (s.line, s.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => {
                let start = s.pos + 2;
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                let text = String::from_utf8_lossy(&s.src[start.min(s.pos)..s.pos]).into_owned();
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    line,
                    col,
                    text,
                });
            }
            b'/' if s.peek_at(1) == Some(b'*') => {
                s.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(), s.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            s.bump_n(2);
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    line,
                    col,
                    text: String::new(),
                });
            }
            b'"' => {
                lex_string(&mut s);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    line,
                    col,
                    text: String::new(),
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut s);
                toks.push(Tok {
                    kind,
                    line,
                    col,
                    text: String::new(),
                });
            }
            b'0'..=b'9' => {
                // Numeric literal: digits plus any alphanumeric suffix
                // (covers 0x…, 1_000u64, 1e9). The `.` of a float is left
                // as punctuation; `1.5` lexes as Number/Punct/Number,
                // which no lint pattern can confuse with a method call.
                while let Some(c) = s.peek() {
                    if is_ident_continue(c) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    line,
                    col,
                    text: String::new(),
                });
            }
            c if is_ident_start(c) => {
                let start = s.pos;
                while let Some(c) = s.peek() {
                    if is_ident_continue(c) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                let ident = &s.src[start..s.pos];
                // Raw-string / byte-string / byte-char prefixes, and raw
                // identifiers (`r#match`). The prefix identifier has
                // already been consumed; on a match the literal body is
                // consumed too and the whole thing becomes one token.
                match ident {
                    b"r" | b"br" => {
                        if lex_raw_string_body(&mut s) {
                            toks.push(Tok {
                                kind: TokKind::Literal,
                                line,
                                col,
                                text: String::new(),
                            });
                            continue;
                        }
                        if ident == b"r"
                            && s.peek() == Some(b'#')
                            && s.peek_at(1).is_some_and(is_ident_start)
                        {
                            // Raw identifier r#foo: emit `foo` as the
                            // identifier text.
                            s.bump(); // '#'
                            let rstart = s.pos;
                            while let Some(c) = s.peek() {
                                if is_ident_continue(c) {
                                    s.bump();
                                } else {
                                    break;
                                }
                            }
                            let text = String::from_utf8_lossy(&s.src[rstart..s.pos]).into_owned();
                            toks.push(Tok {
                                kind: TokKind::Ident,
                                line,
                                col,
                                text,
                            });
                            continue;
                        }
                    }
                    b"b" => {
                        if s.peek() == Some(b'"') {
                            lex_string(&mut s);
                            toks.push(Tok {
                                kind: TokKind::Literal,
                                line,
                                col,
                                text: String::new(),
                            });
                            continue;
                        }
                        if s.peek() == Some(b'\'') {
                            lex_quote(&mut s);
                            toks.push(Tok {
                                kind: TokKind::Literal,
                                line,
                                col,
                                text: String::new(),
                            });
                            continue;
                        }
                    }
                    _ => {}
                }
                let text = String::from_utf8_lossy(ident).into_owned();
                toks.push(Tok {
                    kind: TokKind::Ident,
                    line,
                    col,
                    text,
                });
            }
            _ => {
                s.bump();
                toks.push(Tok {
                    kind: TokKind::Punct(b),
                    line,
                    col,
                    text: String::new(),
                });
            }
        }
    }
    toks
}

/// Consume a `"…"` string starting at the opening quote.
fn lex_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    while let Some(c) = s.peek() {
        match c {
            b'\\' => s.bump_n(2),
            b'"' => {
                s.bump();
                return;
            }
            _ => {
                s.bump();
            }
        }
    }
}

/// Consume what follows a `'`: either a char literal or a lifetime/label.
///
/// Disambiguation mirrors rustc's lexer: `'` followed by a backslash is a
/// char escape; `'` followed by exactly one character and a closing `'`
/// is a char literal; anything else identifier-like is a lifetime.
fn lex_quote(s: &mut Scanner<'_>) -> TokKind {
    s.bump(); // opening quote
    match s.peek() {
        Some(b'\\') => {
            // Escape: consume until the closing quote.
            s.bump_n(2);
            while let Some(c) = s.peek() {
                match c {
                    b'\\' => s.bump_n(2),
                    b'\'' => {
                        s.bump();
                        break;
                    }
                    _ => {
                        s.bump();
                    }
                }
            }
            TokKind::Literal
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'x' (char) or 'x…(lifetime). Scan the identifier
            // run; a closing quote right after exactly that run makes it
            // a char literal only when the run is one character long —
            // otherwise ('abc' is not valid Rust) treat as lifetime.
            let mut len = 1usize;
            while s.peek_at(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            // Count continuation bytes so a single multi-byte char (e.g.
            // 'é') still reads as one character.
            let chars = s.src[s.pos..s.pos + len]
                .iter()
                .filter(|b| (**b & 0xC0) != 0x80)
                .count();
            if chars == 1 && s.peek_at(len) == Some(b'\'') {
                s.bump_n(len + 1);
                TokKind::Literal
            } else {
                s.bump_n(len);
                TokKind::Lifetime
            }
        }
        Some(b'\'') => {
            // Empty '' — not valid Rust; consume and move on.
            s.bump();
            TokKind::Literal
        }
        Some(_) => {
            // Non-identifier char literal like '.', '(' or a multi-byte
            // symbol; consume the char and the closing quote if present.
            s.bump();
            if s.peek() == Some(b'\'') {
                s.bump();
            } else {
                // Multi-byte char: skip continuation bytes then the quote.
                while s.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                    s.bump();
                }
                if s.peek() == Some(b'\'') {
                    s.bump();
                }
            }
            TokKind::Literal
        }
        None => TokKind::Literal,
    }
}

/// Try to consume a raw-string body (`#*"…"#*`) after an `r`/`br`
/// prefix. Returns false (consuming nothing) if what follows is not a
/// raw string.
fn lex_raw_string_body(s: &mut Scanner<'_>) -> bool {
    let mut hashes = 0usize;
    while s.peek_at(hashes) == Some(b'#') {
        hashes += 1;
    }
    if s.peek_at(hashes) != Some(b'"') {
        return false;
    }
    s.bump_n(hashes + 1); // hashes + opening quote
    loop {
        match s.peek() {
            None => return true,
            Some(b'"') => {
                let mut close = 0usize;
                while close < hashes && s.peek_at(1 + close) == Some(b'#') {
                    close += 1;
                }
                if close == hashes {
                    s.bump_n(1 + hashes);
                    return true;
                }
                s.bump();
            }
            Some(_) => {
                s.bump();
            }
        }
    }
}
