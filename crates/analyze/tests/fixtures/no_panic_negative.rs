//! Fixture: nothing in this file may produce a finding.
//! Panic-shaped tokens appear only in comments, strings, raw strings,
//! char/lifetime positions, item definitions, and test code.

// A comment saying .unwrap() or panic!("x") is not a call.
/* Block comments too: .unwrap() /* nested .expect("x") */ still a comment. */

/// Doc comments mentioning .unwrap() and panic!() are prose, not code.
pub const IN_STRING: &str = "calling .unwrap() or panic!(\"boom\") in a string";
pub const IN_RAW: &str = r#"raw: .unwrap() and .expect("x") and "quotes""#;
pub const IN_BYTES: &[u8] = b".unwrap()";
pub const A_CHAR: char = 'u';

// A method *definition* named unwrap is not a call site.
pub struct W;
impl W {
    pub fn unwrap(&self) -> u8 {
        0
    }
}

// Lifetimes must not be confused with char literals.
pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    x
}

#[test]
fn a_test_may_unwrap() {
    let v: Option<u8> = Some(1);
    assert_eq!(v.unwrap(), 1);
    None::<u8>.expect("tests may panic");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_modules_may_panic() {
        panic!("fine in tests");
    }
}

#[cfg(all(test, feature = "x"))]
mod more_tests {
    pub fn helper(x: Option<u8>) -> u8 {
        x.unwrap()
    }
}
