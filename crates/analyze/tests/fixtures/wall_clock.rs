//! Fixture: under a simulator path every marked line is a
//! `no-wall-clock` finding; under a non-simulator path none are.

use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, SystemTime) {
    let a = Instant::now(); // HIT under crates/sim/
    let b = SystemTime::now(); // HIT under crates/sim/
    (a, b)
}

// Mentions in comments or strings never count: Instant::now()
pub const DOC: &str = "SystemTime::now() in a string";
