//! Fixture: panicking lock acquisition is `lock-unwrap` (not
//! `no-panic`); the recovering helper is clean.

use std::sync::Mutex;

pub fn bad(m: &Mutex<u8>) -> u8 {
    let a = *m.lock().unwrap(); // HIT: lock-unwrap
    let b = *m.lock().expect("poisoned"); // HIT: lock-unwrap
    a + b
}

pub fn good(m: &Mutex<u8>) -> u8 {
    use dpipe_sync::LockRecover;
    *m.lock_recover()
}
