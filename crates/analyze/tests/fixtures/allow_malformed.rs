//! Fixture: each marker comment below is broken in a distinct way and
//! must surface as a `malformed-allow` finding.

pub fn f(x: Option<u8>) -> u8 {
    // dpipe-analyze allow(no-panic) -- missing the colon
    // dpipe-analyze: disallow(no-panic) -- not the allow keyword
    // dpipe-analyze: allow(no-such-lint) -- unknown lint id
    // dpipe-analyze: allow(unused-allow) -- meta-lints cannot be allowed
    // dpipe-analyze: allow(no-panic)
    // dpipe-analyze: allow(no-panic) --
    x.map(|v| v + 1).unwrap_or(0)
}
