//! Fixture: a stale suppression over clean code must surface as an
//! `unused-allow` finding (which itself cannot be allowed).

pub fn clean(x: u8) -> u8 {
    // dpipe-analyze: allow(no-panic) -- stale: the unwrap below was removed
    x + 1
}
