//! Positive fixture for `lock-order`: a 3-edge cycle a → b → c → a
//! where no single function sees more than two locks, and the c → a
//! edge only exists through the call graph (`close_cycle` calls
//! `touch_a` while holding `c`). Pairwise review of any one function
//! finds nothing; only the global graph shows the cycle.

use std::sync::Mutex;

pub struct Stages {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
    pub c: Mutex<u32>,
}

pub fn a_then_b(s: &Stages) {
    let a = s.a.lock_recover();
    let mut b = s.b.lock_recover(); // flagged: on the a → b → c → a cycle
    *b += *a;
}

pub fn b_then_c(s: &Stages) {
    let b = s.b.lock_recover();
    let mut c = s.c.lock_recover(); // flagged: on the a → b → c → a cycle
    *c += *b;
}

pub fn touch_a(s: &Stages) {
    *s.a.lock_recover() += 1;
}

pub fn close_cycle(s: &Stages) {
    let _c = s.c.lock_recover();
    touch_a(s); // flagged: acquires `a` via the call graph while `c` is held
}
