//! Fixture: both findings here are suppressed with receipts; the file
//! must report zero unallowed findings and two used allows.

pub fn own_line_allow(x: Option<u8>) -> u8 {
    // dpipe-analyze: allow(no-panic) -- fixture: the invariant is documented here
    x.unwrap()
}

pub fn trailing_allow(x: Option<u8>) -> u8 {
    x.expect("present") // dpipe-analyze: allow(no-panic) -- fixture: trailing form
}
