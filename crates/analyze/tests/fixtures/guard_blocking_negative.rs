//! Negative fixture for `guard-across-blocking`: every blocking call
//! happens after the guard is released — by scope, by `drop`, or by
//! handing the guard to the blocking call itself (the condvar wait
//! pattern, which releases the lock while parked).

use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

pub struct Outbox {
    pub staged: Mutex<Vec<u64>>,
    pub ready: Condvar,
}

pub fn snapshot_then_send(outbox: &Outbox, tx: &Sender<u64>) {
    let pending = {
        let staged = outbox.staged.lock_recover();
        staged.len() as u64
    };
    tx.send(pending).ok();
}

pub fn drop_then_join(outbox: &Outbox, worker: JoinHandle<u64>) {
    let staged = outbox.staged.lock_recover();
    let count = staged.len();
    drop(staged);
    worker.join().ok();
    let _ = count;
}

pub fn wait_with_own_guard(outbox: &Outbox) {
    let mut staged = outbox.staged.lock_recover();
    while staged.is_empty() {
        // Not flagged: the wait consumes (and releases) this very guard.
        staged = outbox.ready.wait_recover(staged);
    }
}
