//! Positive fixture for `lock-order`: two locks acquired in opposite
//! orders on two paths. Either path alone is fine; together they close
//! a 2-cycle in the lock-order graph, the classic AB/BA deadlock.

use std::sync::Mutex;

pub struct Ledger {
    pub entries: Mutex<Vec<u64>>,
}

pub struct Audit {
    pub trail: Mutex<Vec<u64>>,
}

pub fn forward(ledger: &Ledger, audit: &Audit) {
    let entries = ledger.entries.lock_recover();
    let mut trail = audit.trail.lock_recover(); // flagged: closes the cycle
    trail.push(entries.len() as u64);
}

pub fn reverse(ledger: &Ledger, audit: &Audit) {
    let trail = audit.trail.lock_recover();
    let mut entries = ledger.entries.lock_recover(); // flagged: closes the cycle
    entries.push(trail.len() as u64);
}
