//! Fixture: every line marked HIT below must produce a `no-panic` finding.

pub fn unwraps(x: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = x.unwrap(); // HIT
    let b = r.expect("boom"); // HIT
    let c = r.unwrap_err(); // HIT (on the Ok side this panics)
    let d = r.expect_err("boom"); // HIT
    a + b + c as u8 + d as u8
}

pub fn macros(n: u8) {
    match n {
        0 => panic!("zero"),    // HIT
        1 => todo!(),           // HIT
        2 => unimplemented!(),  // HIT
        _ => {}
    }
}

// `cfg(not(test))` is production code: still linted.
#[cfg(not(test))]
pub fn not_test_is_still_linted(x: Option<u8>) -> u8 {
    x.unwrap() // HIT
}
