//! Positive fixture for `guard-across-blocking`: guards held across a
//! channel send, a channel recv, and a thread join. Each blocks for an
//! unbounded time while every other accessor of the lock spins.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

pub struct Outbox {
    pub staged: Mutex<Vec<u64>>,
}

pub fn send_while_holding(outbox: &Outbox, tx: &Sender<u64>) {
    let staged = outbox.staged.lock_recover();
    tx.send(staged.len() as u64).ok(); // flagged: send with `staged` held
}

pub fn recv_while_holding(outbox: &Outbox, rx: &Receiver<u64>) {
    let mut staged = outbox.staged.lock_recover();
    let next = rx.recv().unwrap_or_default(); // flagged: recv with `staged` held
    staged.push(next);
}

pub fn join_while_holding(outbox: &Outbox, worker: JoinHandle<u64>) {
    let mut staged = outbox.staged.lock_recover();
    let done = worker.join().unwrap_or_default(); // flagged: join with `staged` held
    staged.push(done);
}
