//! Negative fixture for `lock-order`: the same locks as the positive
//! fixtures, but every path acquires them in one consistent order
//! (entries before trail). The graph has edges and no cycle, so the
//! pass stays silent.

use std::sync::Mutex;

pub struct Ledger {
    pub entries: Mutex<Vec<u64>>,
}

pub struct Audit {
    pub trail: Mutex<Vec<u64>>,
}

pub fn post(ledger: &Ledger, audit: &Audit) {
    let entries = ledger.entries.lock_recover();
    let mut trail = audit.trail.lock_recover();
    trail.push(entries.len() as u64);
}

pub fn settle(ledger: &Ledger, audit: &Audit) {
    let mut entries = ledger.entries.lock_recover();
    entries.push(7);
    // Still the consistent order: `entries` first, then `trail`.
    audit.trail.lock_recover().push(entries.len() as u64);
}

pub fn trail_alone(audit: &Audit) {
    // A single lock with nothing held is never an edge.
    audit.trail.lock_recover().clear();
}
