//! Fixture: under a fingerprint/JSON path every marked line is a
//! `no-unordered-map` finding; elsewhere none are.

use std::collections::{HashMap, HashSet}; // HIT x2 under crates/stablehash/

pub fn build() -> (HashMap<u8, u8>, HashSet<u8>) {
    // HIT x2 under crates/stablehash/ (the type names above)
    (HashMap::new(), HashSet::new()) // HIT x2 under crates/stablehash/
}

// BTreeMap is the ordered replacement and never flagged.
pub fn ordered() -> std::collections::BTreeMap<u8, u8> {
    std::collections::BTreeMap::new()
}
