//! Guard-lifetime fixture: nested blocks, early returns, temporary
//! guards, and match scrutinees. The first three functions are silent —
//! the guard model must see each release. `match_scrutinee_extends`
//! is the one positive case: a guard created in a match scrutinee
//! lives to the end of the whole match (Rust's extended-temporary
//! rule), so the send inside an arm still runs with the lock held.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct State {
    pub inner: Mutex<Vec<u64>>,
}

pub fn nested_block_releases(state: &State, tx: &Sender<u64>) {
    let mut total = 0u64;
    {
        let inner = state.inner.lock_recover();
        {
            total += inner.len() as u64;
        }
    }
    tx.send(total).ok();
}

pub fn early_return_releases(state: &State, tx: &Sender<u64>) {
    {
        let inner = state.inner.lock_recover();
        if inner.is_empty() {
            return;
        }
    }
    tx.send(1).ok();
}

pub fn temporary_guard_dies_at_semicolon(state: &State, tx: &Sender<u64>) {
    let count = state.inner.lock_recover().len() as u64;
    tx.send(count).ok();
}

pub fn match_scrutinee_extends(state: &State, tx: &Sender<u64>) {
    match state.inner.lock_recover().first().copied() {
        Some(head) => {
            tx.send(head).ok(); // flagged: the scrutinee guard is still held
        }
        None => {}
    }
}
