//! Fixture: the CI-gate canary. A workspace containing this file must
//! fail `dpipe_analyze check` (exit 1); the gate test seeds it into a
//! scratch tree and asserts the report counts it as unallowed.

pub fn seeded(x: Option<u8>) -> u8 {
    x.unwrap()
}
