//! Fixture-corpus tests: every lint has a positive and a negative
//! committed fixture, the suppression machinery has receipts, and the
//! CI gate catches a seeded violation planted in a scratch tree.

use dpipe_analyze::{analyze_source, analyze_sources, check, FileResult, LintId};

fn lint_counts(r: &FileResult, lint: LintId) -> usize {
    r.unallowed.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn no_panic_positive_fixture_hits_every_marked_line() {
    let src = include_str!("fixtures/no_panic_positive.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(lint_counts(&r, LintId::NoPanic), 8, "{:#?}", r.unallowed);
    assert_eq!(r.unallowed.len(), 8);
    assert!(r.allows.is_empty());
    // Diagnostics are positioned and carry the offending source line.
    for f in &r.unallowed {
        assert!(f.line > 0 && f.col > 0);
        assert!(!f.snippet.is_empty());
    }
}

#[test]
fn no_panic_negative_fixture_is_silent() {
    let src = include_str!("fixtures/no_panic_negative.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert!(r.unallowed.is_empty(), "{:#?}", r.unallowed);
    assert!(r.allowed.is_empty());
}

#[test]
fn allows_fixture_suppresses_with_receipts() {
    let src = include_str!("fixtures/allows.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert!(r.unallowed.is_empty(), "{:#?}", r.unallowed);
    // Both findings are retained as receipts, not dropped.
    assert_eq!(r.allowed.len(), 2);
    assert_eq!(r.allows.len(), 2);
    assert!(r.allows.iter().all(|a| a.used));
    assert!(r.allows.iter().all(|a| !a.reason.is_empty()));
}

#[test]
fn stale_allow_surfaces_as_unused_allow() {
    let src = include_str!("fixtures/allow_unused.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(
        lint_counts(&r, LintId::UnusedAllow),
        1,
        "{:#?}",
        r.unallowed
    );
    assert_eq!(r.unallowed.len(), 1);
    assert_eq!(r.allows.len(), 1);
    assert!(!r.allows[0].used);
}

#[test]
fn malformed_allows_each_surface() {
    let src = include_str!("fixtures/allow_malformed.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(
        lint_counts(&r, LintId::MalformedAllow),
        6,
        "{:#?}",
        r.unallowed
    );
    assert_eq!(r.unallowed.len(), 6);
}

#[test]
fn wall_clock_fixture_scoped_to_simulator_paths() {
    let src = include_str!("fixtures/wall_clock.rs");
    let sim = analyze_source("crates/sim/src/wall_clock.rs", src);
    assert_eq!(
        lint_counts(&sim, LintId::NoWallClock),
        6,
        "{:#?}",
        sim.unallowed
    );
    let http = analyze_source("crates/http/src/wall_clock.rs", src);
    assert_eq!(
        lint_counts(&http, LintId::NoWallClock),
        0,
        "{:#?}",
        http.unallowed
    );
}

#[test]
fn unordered_map_fixture_scoped_to_fingerprint_paths() {
    let src = include_str!("fixtures/unordered_map.rs");
    let hashed = analyze_source("crates/stablehash/src/demo.rs", src);
    assert_eq!(
        lint_counts(&hashed, LintId::NoUnorderedMap),
        6,
        "{:#?}",
        hashed.unallowed
    );
    let engine = analyze_source("crates/engine/src/demo.rs", src);
    assert_eq!(
        lint_counts(&engine, LintId::NoUnorderedMap),
        0,
        "{:#?}",
        engine.unallowed
    );
}

#[test]
fn lock_unwrap_fixture_routes_to_its_own_lint() {
    let src = include_str!("fixtures/lock_unwrap.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(lint_counts(&r, LintId::LockUnwrap), 2, "{:#?}", r.unallowed);
    // The chain is never double-reported as no-panic.
    assert_eq!(lint_counts(&r, LintId::NoPanic), 0, "{:#?}", r.unallowed);
    assert_eq!(r.unallowed.len(), 2);
}

#[test]
fn bench_crates_are_exempt_from_no_panic() {
    let src = include_str!("fixtures/seeded_violation.rs");
    let r = analyze_source("crates/bench/src/lib.rs", src);
    assert!(r.unallowed.is_empty(), "{:#?}", r.unallowed);
}

#[test]
fn lock_order_cycle2_fixture_flags_both_closing_sites() {
    let src = include_str!("fixtures/lock_order_cycle2.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(lint_counts(&r, LintId::LockOrder), 2, "{:#?}", r.unallowed);
    assert_eq!(r.unallowed.len(), 2);
    for f in &r.unallowed {
        assert!(f.message.contains("potential deadlock"), "{}", f.message);
        assert!(f.message.contains("demo::"), "{}", f.message);
    }
}

#[test]
fn lock_order_chain3_fixture_flags_every_edge_of_the_cycle() {
    let src = include_str!("fixtures/lock_order_chain3.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(lint_counts(&r, LintId::LockOrder), 3, "{:#?}", r.unallowed);
    // The c → a edge exists only through the call graph.
    assert!(
        r.unallowed
            .iter()
            .any(|f| f.message.contains("via call to `touch_a`")),
        "{:#?}",
        r.unallowed
    );
}

#[test]
fn lock_order_negative_fixture_has_edges_but_no_cycle() {
    let src = include_str!("fixtures/lock_order_negative.rs");
    let ws = analyze_sources(&[("crates/demo/src/lib.rs", src)]);
    assert!(
        ws.files[0].unallowed.is_empty(),
        "{:#?}",
        ws.files[0].unallowed
    );
    // The consistent order still shows up in the graph — as acyclic edges.
    assert!(!ws.graph.edges.is_empty());
    assert!(ws.graph.edges.iter().all(|e| !e.cyclic));
}

#[test]
fn guard_blocking_positive_fixture_hits_send_recv_and_join() {
    let src = include_str!("fixtures/guard_blocking_positive.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert_eq!(
        lint_counts(&r, LintId::GuardAcrossBlocking),
        3,
        "{:#?}",
        r.unallowed
    );
    assert_eq!(r.unallowed.len(), 3);
}

#[test]
fn guard_blocking_negative_fixture_is_silent() {
    let src = include_str!("fixtures/guard_blocking_negative.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    assert!(r.unallowed.is_empty(), "{:#?}", r.unallowed);
}

#[test]
fn lock_scopes_fixture_tracks_guard_lifetimes() {
    let src = include_str!("fixtures/lock_scopes.rs");
    let r = analyze_source("crates/demo/src/lib.rs", src);
    // Nested blocks, early returns, and `;`-bounded temporaries all
    // release; only the match-scrutinee extended temporary is flagged.
    assert_eq!(
        lint_counts(&r, LintId::GuardAcrossBlocking),
        1,
        "{:#?}",
        r.unallowed
    );
    assert_eq!(r.unallowed.len(), 1);
    assert!(r.unallowed[0].snippet.contains("tx.send(head)"));
}

/// The lock-order graph is global: a cycle closed across two files of
/// the same crate is invisible to either file alone but flagged when
/// they are analyzed as one workspace — one finding in each file, at
/// the acquisition that closes the cycle there.
#[test]
fn lock_order_cycle_across_files_is_found() {
    let shared = "use std::sync::Mutex;\n\
                  pub struct Ledger { pub entries: Mutex<Vec<u64>> }\n\
                  pub struct Audit { pub trail: Mutex<Vec<u64>> }\n\
                  pub fn forward(l: &Ledger, a: &Audit) {\n\
                      let e = l.entries.lock_recover();\n\
                      a.trail.lock_recover().push(e.len() as u64);\n\
                  }\n";
    let other = "use crate::{Audit, Ledger};\n\
                 pub fn reverse(l: &Ledger, a: &Audit) {\n\
                     let t = a.trail.lock_recover();\n\
                     l.entries.lock_recover().push(t.len() as u64);\n\
                 }\n";
    let ws = analyze_sources(&[
        ("crates/demo/src/lib.rs", shared),
        ("crates/demo/src/reverse.rs", other),
    ]);
    for file in &ws.files {
        assert_eq!(
            lint_counts(file, LintId::LockOrder),
            1,
            "{}: {:#?}",
            file.rel,
            file.unallowed
        );
    }
    assert_eq!(ws.graph.edges.len(), 2);
    assert!(ws.graph.edges.iter().all(|e| e.cyclic));
    // But either file alone is silent: no single-file order is wrong.
    let alone = analyze_sources(&[("crates/demo/src/lib.rs", shared)]);
    assert!(alone.files[0].unallowed.is_empty());
}

/// The DOT rendering is byte-stable and pinned to a committed golden.
/// Regenerate deliberately with `DPIPE_UPDATE_GOLDENS=1`.
#[test]
fn lock_graph_dot_matches_committed_golden() {
    const GOLDEN_PATH: &str = "tests/fixtures/lock_graph.dot";
    let ws = analyze_sources(&[
        (
            "crates/demo/src/lib.rs",
            include_str!("fixtures/lock_order_chain3.rs"),
        ),
        (
            "crates/other/src/lib.rs",
            include_str!("fixtures/lock_order_negative.rs"),
        ),
    ]);
    let dot = ws.graph.to_dot();
    assert_eq!(dot, ws.graph.to_dot(), "to_dot must be deterministic");
    if std::env::var("DPIPE_UPDATE_GOLDENS").is_ok() {
        std::fs::write(GOLDEN_PATH, &dot).expect("write golden");
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("committed golden present; regenerate with DPIPE_UPDATE_GOLDENS=1");
    assert_eq!(
        dot, committed,
        "lock graph drifted; regenerate deliberately"
    );
}

/// The CI-gate canary: plant the seeded fixture into a scratch tree and
/// assert the full `check` walk reports it as unallowed (the CLI maps
/// that to exit code 1, which fails the CI job).
#[test]
fn check_fails_a_seeded_violation() {
    let root = std::env::temp_dir().join(format!("dpipe-analyze-gate-{}", std::process::id()));
    let src_dir = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).expect("create scratch tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("fixtures/seeded_violation.rs"),
    )
    .expect("write seeded fixture");

    let report = check(&root).expect("check runs");
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.unallowed_count(), 1, "{}", report.to_text());
    assert!(report.to_text().contains("no-panic"));
    assert!(report.to_json().contains("\"crates/seeded/src/lib.rs\""));

    std::fs::remove_dir_all(&root).expect("clean scratch tree");
}

/// The concurrency-gate canary: a scratch tree seeded with the
/// committed 2-lock cycle fixture fails `check` with `lock-order`
/// findings, and the JSON report carries the cyclic graph.
#[test]
fn check_fails_a_seeded_lock_order_cycle() {
    let root = std::env::temp_dir().join(format!("dpipe-analyze-lockgate-{}", std::process::id()));
    let src_dir = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).expect("create scratch tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("fixtures/lock_order_cycle2.rs"),
    )
    .expect("write seeded fixture");

    let report = check(&root).expect("check runs");
    assert_eq!(report.unallowed_count(), 2, "{}", report.to_text());
    assert!(report.to_text().contains("lock-order"));
    assert!(report.to_json().contains("\"lock_graph\""));
    assert!(report.to_json().contains("\"cyclic\": true"));
    assert_eq!(report.graph.edges.len(), 2);

    std::fs::remove_dir_all(&root).expect("clean scratch tree");
}

/// Acceptance: the workspace itself is clean — zero unallowed findings,
/// every suppression used and carrying a reason — and the JSON report is
/// byte-stable across two walks of the same tree.
#[test]
fn workspace_is_clean_and_report_is_byte_stable() {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let ws = manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let a = check(ws).expect("first walk");
    let b = check(ws).expect("second walk");
    assert_eq!(a.unallowed_count(), 0, "{}", a.to_text());
    assert_eq!(
        a.allows_total(),
        a.allows_used(),
        "stale allows:\n{}",
        a.to_text()
    );
    for file in &a.files {
        for allow in &file.allows {
            assert!(
                !allow.reason.is_empty(),
                "{}: allow without a reason",
                file.rel
            );
        }
    }
    assert_eq!(a.to_json(), b.to_json());
}
