//! Property tests: panic-shaped text inside strings, raw strings,
//! comments, and char literals never triggers a finding, and the JSON
//! report is a pure, byte-stable function of the source.

use dpipe_analyze::{analyze_source, analyze_sources, Report};
use proptest::prelude::*;

/// Panic-shaped fragments that must only count when they are code.
const SCARY: [&str; 8] = [
    ".unwrap()",
    ".expect(\\\"gone\\\")",
    "panic!(\\\"boom\\\")",
    "todo!()",
    "unimplemented!()",
    ".lock().unwrap()",
    "HashMap::new()",
    "Instant::now()",
];

/// Characters safe inside a normal string literal without escaping.
const STRING_CHARS: [char; 16] = [
    'a', 'z', 'A', '0', '9', ' ', '.', '(', ')', '!', '{', '}', '#', '\'', '/', '*',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A scary fragment wrapped in any non-code context is invisible,
    /// even on a path where every lint is active.
    #[test]
    fn non_code_contexts_never_trigger(which in 0usize..8, wrapper in 0usize..5) {
        let scary = SCARY[which];
        let line = match wrapper {
            0 => format!("// comment: {scary}"),
            1 => format!("/* block {scary} */ pub const A: u8 = 0;"),
            2 => format!("pub const S: &str = \"{scary}\";"),
            3 => format!("pub const R: &str = r#\"{}\"#;", scary.replace("\\\"", "\"")),
            _ => format!("/// doc prose about {scary}"),
        };
        let src = format!("{line}\npub fn f() -> u8 {{ 0 }}\n");
        let r = analyze_source("crates/sim/src/demo.rs", &src);
        prop_assert!(r.unallowed.is_empty(), "{line} -> {:#?}", r.unallowed);
    }

    /// Random string-literal contents never produce findings, whatever
    /// panic-shaped substrings they happen to spell.
    #[test]
    fn random_string_literals_are_silent(
        chars in proptest::collection::vec(0usize..16, 0..40),
    ) {
        let body: String = chars.iter().map(|&i| STRING_CHARS[i]).collect();
        let src = format!("pub const S: &str = \"{body}\";\npub fn f() -> u8 {{ 0 }}\n");
        let r = analyze_source("crates/stablehash/src/demo.rs", &src);
        prop_assert!(r.unallowed.is_empty(), "{body:?} -> {:#?}", r.unallowed);
    }

    /// Char literals and lifetimes are disambiguated: neither turns the
    /// rest of the file into a string and hides real findings, nor
    /// produces findings of its own.
    #[test]
    fn char_literals_and_lifetimes_keep_the_lexer_in_sync(
        c in 0usize..16,
        seed_violation in any::<bool>(),
    ) {
        let ch = STRING_CHARS[c];
        let lit = if ch == '\'' { '_' } else { ch };
        let tail = if seed_violation { "None::<u8>.unwrap()" } else { "0" };
        let src = format!(
            "pub fn f<'a>(x: &'a str) -> char {{ let _ = x; '{lit}' }}\n\
             pub fn g() -> u8 {{ {tail} }}\n"
        );
        let r = analyze_source("crates/core/src/demo.rs", &src);
        let expected = usize::from(seed_violation);
        prop_assert!(r.unallowed.len() == expected, "{src} -> {:#?}", r.unallowed);
    }

    /// Lock-shaped fragments in non-code contexts are invisible to the
    /// concurrency passes: no acquisition, no blocking call, no graph
    /// node comes from a string or comment.
    #[test]
    fn lock_shaped_text_never_triggers_concurrency_passes(
        which in 0usize..6,
        wrapper in 0usize..4,
    ) {
        const LOCKY: [&str; 6] = [
            ".lock_recover()",
            ".lock_recover_tagged(TAG)",
            "self.state.write()",
            "cvar.wait_recover(guard)",
            "tx.send(job)",
            "worker.join()",
        ];
        let locky = LOCKY[which];
        let line = match wrapper {
            0 => format!("// held: {locky}"),
            1 => format!("/* {locky} */ pub const A: u8 = 0;"),
            2 => format!("pub const S: &str = \"{locky}\";"),
            _ => format!("/// doc prose about {locky}"),
        };
        // A real guard is live on the same lines, so any leak of the
        // lock-shaped text into code would have a guard to pair with.
        let src = format!(
            "use std::sync::Mutex;\n\
             pub struct S {{ pub m: Mutex<u8> }}\n\
             pub fn f(s: &S) {{\n\
                 let g = s.m.lock_recover();\n\
                 {line}\n\
                 let _ = *g;\n\
             }}\n"
        );
        let ws = analyze_sources(&[("crates/demo/src/lib.rs", &src)]);
        prop_assert!(ws.files[0].unallowed.is_empty(), "{line} -> {:#?}", ws.files[0].unallowed);
        prop_assert!(ws.graph.edges.is_empty(), "{line} -> {:?}", ws.graph.edges);
        prop_assert_eq!(ws.graph.nodes.len(), 1, "only the declared lock is a node");
    }

    /// The DOT rendering is a pure, byte-stable function of the source
    /// set, whatever order findings were produced in.
    #[test]
    fn lock_graph_dot_is_byte_stable(seed_cycle in any::<bool>(), pad in 0usize..6) {
        let blanks = "\n".repeat(pad);
        let second = if seed_cycle {
            "pub fn rev(s: &S) { let b = s.b.lock_recover(); *s.a.lock_recover() += *b; }\n"
        } else {
            "pub fn fwd2(s: &S) { let a = s.a.lock_recover(); *s.b.lock_recover() += *a; }\n"
        };
        let src = format!(
            "{blanks}use std::sync::Mutex;\n\
             pub struct S {{ pub a: Mutex<u8>, pub b: Mutex<u8> }}\n\
             pub fn fwd(s: &S) {{ let a = s.a.lock_recover(); *s.b.lock_recover() += *a; }}\n\
             {second}"
        );
        let one = analyze_sources(&[("crates/demo/src/lib.rs", &src)]);
        let two = analyze_sources(&[("crates/demo/src/lib.rs", &src)]);
        prop_assert_eq!(one.graph.to_dot(), two.graph.to_dot());
        prop_assert_eq!(one.graph.to_text(), two.graph.to_text());
        prop_assert_eq!(
            one.graph.edges.iter().any(|e| e.cyclic),
            seed_cycle,
            "{}", one.graph.to_text()
        );
    }

    /// The JSON report is byte-stable: analyzing identical input twice
    /// yields identical bytes (no timestamps, maps, or absolute paths).
    #[test]
    fn json_report_is_byte_stable(which in 0usize..8, pad in 0usize..6) {
        let scary = SCARY[which].replace("\\\"", "\"");
        let blanks = "\n".repeat(pad);
        let src = format!("{blanks}pub fn f() {{ let x: Option<u8> = None; x{scary}; }}\n");
        let one = analyze_source("crates/core/src/demo.rs", &src);
        let two = analyze_source("crates/core/src/demo.rs", &src);
        let ra = Report { files_scanned: 1, files: vec![one], ..Report::default() };
        let rb = Report { files_scanned: 1, files: vec![two], ..Report::default() };
        prop_assert_eq!(ra.to_json(), rb.to_json());
        prop_assert_eq!(ra.to_text(), rb.to_text());
    }
}
