//! Chrome trace-event JSON exporter (the "JSON Array Format" with `ph: "X"`
//! complete events), hand-rolled so the crate stays dependency-free.
//! Timestamps and durations are microseconds since the collector origin;
//! Perfetto and `chrome://tracing` both load the output directly.

use crate::{AttrValue, Trace};

/// Escapes a string into a JSON string literal (without quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        AttrValue::UInt(v) => out.push_str(&v.to_string()),
        AttrValue::Int(v) => out.push_str(&v.to_string()),
        AttrValue::Float(v) if v.is_finite() => out.push_str(&format!("{v}")),
        AttrValue::Float(_) => out.push_str("null"),
        AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

pub(crate) fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &span.name);
        out.push_str("\",\"cat\":\"dpipe\",\"ph\":\"X\",\"ts\":");
        out.push_str(&span.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&span.duration_us().to_string());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&span.thread.to_string());
        out.push_str(",\"args\":{\"span_id\":");
        out.push_str(&span.id.to_string());
        if let Some(parent) = span.parent {
            out.push_str(",\"parent_id\":");
            out.push_str(&parent.to_string());
        }
        for (key, value) in &span.attrs {
            out.push_str(",\"");
            escape_into(&mut out, key);
            out.push_str("\":");
            push_attr_value(&mut out, value);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use crate::Tracer;

    #[test]
    fn export_is_valid_json_with_complete_events() {
        let tracer = Tracer::new();
        {
            let mut root = tracer.span("plan");
            root.set("model", "sd \"2.1\"\n");
            root.set("world", 8u64);
            root.set("ratio", 0.5f64);
            root.set("skipped", false);
            let _child = tracer.child_span("partition", root.id());
        }
        let json = tracer.snapshot().to_chrome_json();
        let doc = dpipe_spec::json::parse(&json).expect("chrome export parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(dpipe_spec::json::JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for event in events {
            assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(event.get("ts").and_then(|v| v.as_u64()).is_some());
            assert!(event.get("dur").and_then(|v| v.as_u64()).is_some());
            assert!(event.get("name").and_then(|v| v.as_str()).is_some());
        }
        let plan = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("plan"))
            .unwrap();
        assert_eq!(
            plan.get("args")
                .and_then(|a| a.get("model"))
                .and_then(|v| v.as_str()),
            Some("sd \"2.1\"\n")
        );
        let partition = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("partition"))
            .unwrap();
        assert_eq!(
            partition
                .get("args")
                .and_then(|a| a.get("parent_id"))
                .and_then(|v| v.as_u64()),
            plan.get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(|v| v.as_u64()),
        );
    }
}
