//! Zero-dependency structured tracing for the planning stack.
//!
//! A [`Tracer`] is a cheap clonable handle onto a shared span collector.
//! Spans are opened with an explicit parent (no thread-local ambient
//! context), carry typed key/value attributes, and close on drop — so a
//! single trace can stitch together work that hops threads: the HTTP
//! connection worker, the service worker pool and the planner's scoped
//! search threads all record into the same collector with monotonic
//! timestamps from one shared origin.
//!
//! Cost model: a disabled tracer ([`Tracer::off`], the default everywhere)
//! carries no collector at all — every API call is a `None` check. An
//! allocated collector can additionally be switched off at runtime via an
//! atomic flag ([`Tracer::set_enabled`]), which reduces every span site to
//! one relaxed atomic load; `plan_bench` guards that this stays in the
//! noise.
//!
//! Exporters: [`Trace::to_chrome_json`] emits Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`), [`Trace::render_tree`] a
//! human-readable span tree.

mod chrome;
mod tree;

use dpipe_sync::LockRecoverTagged;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of a recorded span, used to parent children onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Str(String),
    UInt(u64),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One finished span as stored in the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Collector-unique id (dense, starting at 1).
    pub id: u64,
    /// Parent span id, or `None` for a root.
    pub parent: Option<u64>,
    pub name: String,
    /// Start offset from the collector origin, microseconds.
    pub start_us: u64,
    /// End offset from the collector origin, microseconds.
    pub end_us: u64,
    /// Dense per-thread label (first thread to record is 1, ...).
    pub thread: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Lock-order witness tag for [`Collector::finished`] (static key form).
const COLLECTOR_FINISHED_TAG: &str = "trace::Collector::finished";

struct Collector {
    enabled: AtomicBool,
    origin: Instant,
    next_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    fn micros_since_origin(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_micros() as u64
    }
}

/// Dense thread labels so exporters get small stable `tid`s instead of
/// opaque OS thread ids.
fn thread_label() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LABEL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LABEL.with(|label| *label)
}

/// Cheap clonable handle onto a shared span collector; see the crate docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Collector>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer with a live collector whose time origin is "now".
    pub fn new() -> Self {
        Self::starting_at(Instant::now())
    }

    /// A tracer whose time origin is `origin` — lets spans cover work that
    /// happened before the tracer existed (e.g. time spent in the accept
    /// queue before the request was sampled).
    pub fn starting_at(origin: Instant) -> Self {
        Tracer {
            inner: Some(Arc::new(Collector {
                enabled: AtomicBool::new(true),
                origin,
                next_id: AtomicU64::new(1),
                finished: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op tracer: no collector, every call is a `None` check.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|c| c.enabled.load(Ordering::Relaxed))
    }

    /// Toggles recording at runtime. No-op without a collector.
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(collector) = &self.inner {
            collector.enabled.store(enabled, Ordering::Relaxed);
        }
    }

    fn active(&self) -> Option<&Arc<Collector>> {
        self.inner
            .as_ref()
            .filter(|c| c.enabled.load(Ordering::Relaxed))
    }

    /// Opens a root span starting now.
    pub fn span(&self, name: &str) -> Span {
        self.span_full(name, None, Instant::now())
    }

    /// Opens a root span whose start time is backdated to `start`.
    pub fn span_at(&self, name: &str, start: Instant) -> Span {
        self.span_full(name, None, start)
    }

    /// Opens a span under `parent` (pass `None` for a root) starting now.
    pub fn child_span(&self, name: &str, parent: Option<SpanId>) -> Span {
        self.span_full(name, parent, Instant::now())
    }

    fn span_full(&self, name: &str, parent: Option<SpanId>, start: Instant) -> Span {
        let Some(collector) = self.active() else {
            return Span { active: None };
        };
        let id = collector.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            active: Some(ActiveSpan {
                collector: Arc::clone(collector),
                id,
                parent: parent.map(|p| p.0),
                name: name.to_owned(),
                start,
                attrs: Vec::new(),
            }),
        }
    }

    /// Records an already-elapsed interval as a finished span — for phases
    /// whose boundaries were observed before/without an open guard (e.g.
    /// the single-flight wait measured by the cache).
    pub fn record_between(
        &self,
        name: &str,
        parent: Option<SpanId>,
        start: Instant,
        end: Instant,
    ) -> Option<SpanId> {
        let collector = self.active()?;
        let id = collector.next_id.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            id,
            parent: parent.map(|p| p.0),
            name: name.to_owned(),
            start_us: collector.micros_since_origin(start),
            end_us: collector.micros_since_origin(end),
            thread: thread_label(),
            attrs: Vec::new(),
        };
        collector
            .finished
            .lock_recover_tagged(COLLECTOR_FINISHED_TAG)
            .push(record);
        Some(SpanId(id))
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let spans = match &self.inner {
            Some(collector) => collector
                .finished
                .lock_recover_tagged(COLLECTOR_FINISHED_TAG)
                .clone(),
            None => Vec::new(),
        };
        Trace::from_spans(spans)
    }

    /// Drains the collector, leaving it empty (and still enabled).
    pub fn take(&self) -> Trace {
        let spans = match &self.inner {
            Some(collector) => std::mem::take(
                &mut *collector
                    .finished
                    .lock_recover_tagged(COLLECTOR_FINISHED_TAG),
            ),
            None => Vec::new(),
        };
        Trace::from_spans(spans)
    }
}

struct ActiveSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
}

/// RAII guard for an open span; records into the collector on drop (or
/// [`Span::finish`]). A no-op span (from a disabled tracer) does nothing.
#[derive(Default)]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// A no-op span, equivalent to one opened on a disabled tracer.
    pub fn none() -> Self {
        Span { active: None }
    }

    /// This span's id, or `None` when not recording.
    pub fn id(&self) -> Option<SpanId> {
        self.active.as_ref().map(|a| SpanId(a.id))
    }

    /// Attaches (or appends) a typed attribute.
    pub fn set(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = Instant::now();
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_us: active.collector.micros_since_origin(active.start),
            end_us: active.collector.micros_since_origin(end),
            thread: thread_label(),
            attrs: active.attrs,
        };
        active
            .collector
            .finished
            .lock_recover_tagged(COLLECTOR_FINISHED_TAG)
            .push(record);
    }
}

/// An immutable snapshot of recorded spans, sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    fn from_spans(mut spans: Vec<SpanRecord>) -> Self {
        spans.sort_by_key(|s| (s.start_us, s.id));
        Trace { spans }
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// The first span (by start time) with this name.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with this name, in start order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Direct children of `id`, in start order.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Fraction (0.0–1.0) of the span's duration covered by the union of
    /// its direct children's intervals (clipped to the parent). A span
    /// with zero duration counts as fully covered.
    pub fn child_coverage(&self, id: u64) -> f64 {
        let Some(parent) = self.spans.iter().find(|s| s.id == id) else {
            return 0.0;
        };
        let duration = parent.duration_us();
        if duration == 0 {
            return 1.0;
        }
        let mut intervals: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .map(|s| {
                (
                    s.start_us.clamp(parent.start_us, parent.end_us),
                    s.end_us.clamp(parent.start_us, parent.end_us),
                )
            })
            .filter(|(start, end)| end > start)
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = parent.start_us;
        for (start, end) in intervals {
            let from = start.max(cursor);
            if end > from {
                covered += end - from;
                cursor = end;
            }
        }
        covered as f64 / duration as f64
    }

    /// Chrome trace-event JSON (`ph: "X"` complete events, timestamps in
    /// microseconds) — loadable in Perfetto or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// A human-readable span tree with durations and attributes.
    pub fn render_tree(&self) -> String {
        tree::render_tree(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::off();
        let mut span = tracer.span("root");
        assert_eq!(span.id(), None);
        span.set("k", 1u64);
        drop(span);
        tracer.record_between("x", None, Instant::now(), Instant::now());
        assert!(tracer.snapshot().is_empty());
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn runtime_flag_stops_recording() {
        let tracer = Tracer::new();
        drop(tracer.span("before"));
        tracer.set_enabled(false);
        assert!(!tracer.is_enabled());
        drop(tracer.span("while_off"));
        tracer.set_enabled(true);
        drop(tracer.span("after"));
        let trace = tracer.snapshot();
        assert_eq!(trace.len(), 2);
        assert!(trace.find("while_off").is_none());
    }

    #[test]
    fn nesting_attributes_and_timing() {
        let tracer = Tracer::new();
        let mut root = tracer.span("root");
        root.set("model", "sd");
        root.set("batch", 256u32);
        let root_id = root.id();
        {
            let mut child = tracer.child_span("child", root_id);
            child.set("ok", true);
            std::thread::sleep(Duration::from_millis(2));
        }
        root.finish();
        let trace = tracer.take();
        assert_eq!(trace.len(), 2);
        let root = trace.find("root").unwrap();
        let child = trace.find("child").unwrap();
        assert_eq!(child.parent, Some(root.id));
        assert!(child.start_us >= root.start_us);
        assert!(child.end_us <= root.end_us);
        assert!(child.duration_us() >= 1_000, "slept 2ms: {child:?}");
        assert_eq!(root.attr("model"), Some(&AttrValue::Str("sd".into())));
        assert_eq!(root.attr("batch"), Some(&AttrValue::UInt(256)));
        assert_eq!(child.attr("ok"), Some(&AttrValue::Bool(true)));
        // take() drained the collector.
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn spans_from_other_threads_share_the_collector() {
        let tracer = Tracer::new();
        let root_id = {
            let root = tracer.span("root");
            let id = root.id();
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let tracer = tracer.clone();
                    std::thread::spawn(move || {
                        let mut span = tracer.child_span("work", id);
                        span.set("worker", i as u64);
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            id
        };
        let trace = tracer.snapshot();
        assert_eq!(trace.len(), 5);
        let children = trace.children_of(root_id.unwrap().0);
        assert_eq!(children.len(), 4);
        let threads: std::collections::HashSet<u64> = children.iter().map(|c| c.thread).collect();
        assert!(
            threads.len() > 1,
            "workers should get distinct thread labels"
        );
    }

    #[test]
    fn backdated_and_recorded_spans() {
        let origin = Instant::now() - Duration::from_millis(10);
        let tracer = Tracer::starting_at(origin);
        let root = tracer.span_at("request", origin);
        let root_id = root.id();
        let waited = tracer.record_between(
            "queue_wait",
            root_id,
            origin,
            origin + Duration::from_millis(3),
        );
        assert!(waited.is_some());
        drop(root);
        let trace = tracer.take();
        let request = trace.find("request").unwrap();
        let wait = trace.find("queue_wait").unwrap();
        assert_eq!(request.start_us, 0);
        assert_eq!(wait.start_us, 0);
        assert!((2_500..=3_500).contains(&wait.end_us), "{wait:?}");
        assert!(request.duration_us() >= 10_000);
    }

    #[test]
    fn child_coverage_unions_overlap_and_clips() {
        let mk = |id, parent, start_us, end_us| SpanRecord {
            id,
            parent,
            name: format!("s{id}"),
            start_us,
            end_us,
            thread: 1,
            attrs: Vec::new(),
        };
        // Parent [0, 100]; children [0,40], [30,60] (overlap), [90,150]
        // (clipped to 100): union covers 0..60 + 90..100 = 70%.
        let trace = Trace::from_spans(vec![
            mk(1, None, 0, 100),
            mk(2, Some(1), 0, 40),
            mk(3, Some(1), 30, 60),
            mk(4, Some(1), 90, 150),
        ]);
        let coverage = trace.child_coverage(1);
        assert!((coverage - 0.70).abs() < 1e-9, "{coverage}");
        assert_eq!(trace.child_coverage(2), 0.0);
        assert_eq!(trace.child_coverage(999), 0.0);
    }
}
