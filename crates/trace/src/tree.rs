//! Human-readable span-tree renderer: one line per span, indented by
//! depth, with duration and attributes. Spans whose parent is missing
//! from the snapshot are promoted to roots so a partial trace still
//! renders completely.

use crate::{AttrValue, SpanRecord, Trace};
use std::collections::HashSet;

fn format_duration_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{us} µs")
    }
}

fn format_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::Str(s) => s.clone(),
        AttrValue::UInt(v) => v.to_string(),
        AttrValue::Int(v) => v.to_string(),
        AttrValue::Float(v) => format!("{v:.4}"),
        AttrValue::Bool(v) => v.to_string(),
    }
}

fn render_span(trace: &Trace, span: &SpanRecord, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&span.name);
    out.push(' ');
    out.push_str(&format_duration_us(span.duration_us()));
    if !span.attrs.is_empty() {
        out.push_str("  [");
        for (i, (key, value)) in span.attrs.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(key);
            out.push('=');
            out.push_str(&format_attr(value));
        }
        out.push(']');
    }
    out.push('\n');
    for child in trace.children_of(span.id) {
        render_span(trace, child, depth + 1, out);
    }
}

pub(crate) fn render_tree(trace: &Trace) -> String {
    let ids: HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    let mut out = String::new();
    for span in &trace.spans {
        let is_root = match span.parent {
            None => true,
            Some(parent) => !ids.contains(&parent),
        };
        if is_root {
            render_span(trace, span, 0, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Tracer;

    #[test]
    fn tree_indents_children_and_shows_attrs() {
        let tracer = Tracer::new();
        {
            let mut root = tracer.span("plan");
            root.set("model", "sd");
            let search = tracer.child_span("config_search", root.id());
            let _leaf = tracer.child_span("partition", search.id());
        }
        let tree = tracer.snapshot().render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3, "{tree}");
        assert!(lines[0].starts_with("plan "), "{tree}");
        assert!(lines[0].contains("[model=sd]"), "{tree}");
        assert!(lines[1].starts_with("  config_search "), "{tree}");
        assert!(lines[2].starts_with("    partition "), "{tree}");
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let tracer = Tracer::new();
        {
            // Parent id that is never recorded (e.g. snapshot of a live
            // collector whose root span is still open).
            let _child = tracer.child_span("child", Some(crate::SpanId(9999)));
        }
        let tree = tracer.snapshot().render_tree();
        assert!(tree.starts_with("child "), "{tree}");
    }
}
