//! Analytical device model.

use serde::{Deserialize, Serialize};

/// A compute device characterised by an effective sustained throughput and
/// a batch-efficiency curve.
///
/// Layer execution time is modelled as
/// `overhead + flops_per_sample * batch * φ(batch) / peak_flops`, where
/// `φ(B) = (1 + c/√B) / (1 + c/√B_ref)` captures the kernel-efficiency gain
/// of larger local batches (small batches under-utilise the device). `φ` is
/// normalised to 1 at the reference batch (64), so zoo calibrations quoted
/// "at batch 64" are exact. This nonlinearity is what lets DiffusionPipe
/// out-run data parallelism even without synchronisation overhead: pipeline
/// stages and bubble-filled frozen layers process larger local batches than
/// a fully data-parallel layout (paper §6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name, informational.
    pub name: String,
    /// Effective sustained throughput in FLOP/s at the reference batch.
    pub peak_flops: f64,
    /// Batch-efficiency coefficient `c` (0 disables the effect).
    pub efficiency_coeff: f64,
    /// Reference batch at which `φ = 1`.
    pub reference_batch: f64,
}

impl DeviceModel {
    /// An A100-80GB-like device: 1e14 FLOP/s effective at batch 64 (about a
    /// third of the fp16 tensor-core peak, accounting for memory-bound
    /// layers), with a moderate small-batch penalty.
    pub fn a100_like() -> Self {
        DeviceModel {
            name: "a100-80gb".to_owned(),
            peak_flops: 1.0e14,
            efficiency_coeff: 8.0,
            reference_batch: 64.0,
        }
    }

    /// A device with perfectly linear batch scaling (φ ≡ 1), useful for
    /// tests that need exact proportionality.
    pub fn linear() -> Self {
        DeviceModel {
            efficiency_coeff: 0.0,
            name: "linear".to_owned(),
            ..DeviceModel::a100_like()
        }
    }

    /// A device `factor`× faster/slower than this one.
    pub fn scaled(&self, factor: f64) -> Self {
        DeviceModel {
            name: format!("{}-x{factor}", self.name),
            peak_flops: self.peak_flops * factor,
            ..self.clone()
        }
    }

    /// The efficiency multiplier `φ(batch)` (1 at the reference batch,
    /// larger for smaller batches, smaller for bigger ones).
    pub fn efficiency_factor(&self, batch: f64) -> f64 {
        if self.efficiency_coeff == 0.0 || batch <= 0.0 {
            return 1.0;
        }
        let phi = (1.0 + self.efficiency_coeff / batch.sqrt())
            / (1.0 + self.efficiency_coeff / self.reference_batch.sqrt());
        // Kernels saturate: beyond a few hundred samples per device the
        // per-sample time stops improving.
        phi.max(0.65)
    }

    /// Execution time of a kernel with the given per-sample FLOPs and fixed
    /// overhead for a (possibly fractional) local batch.
    ///
    /// Fractional batches arise from the paper's `B/r` terms when a stage is
    /// replicated on `r` devices.
    pub fn kernel_time(&self, flops_per_sample: f64, overhead_us: f64, batch: f64) -> f64 {
        debug_assert!(batch >= 0.0);
        overhead_us * 1e-6
            + flops_per_sample * batch * self.efficiency_factor(batch) / self.peak_flops
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::a100_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_time_linear_for_linear_device() {
        let d = DeviceModel::linear();
        let t1 = d.kernel_time(1e12, 0.0, 1.0);
        let t2 = d.kernel_time(1e12, 0.0, 2.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert!((t1 - 0.01).abs() < 1e-12); // 1 TFLOP at 1e14 FLOP/s = 10 ms
    }

    #[test]
    fn efficiency_normalised_at_reference_batch() {
        let d = DeviceModel::a100_like();
        assert!((d.efficiency_factor(64.0) - 1.0).abs() < 1e-12);
        // Smaller batches pay a penalty, larger ones a bonus.
        assert!(d.efficiency_factor(8.0) > 1.2);
        assert!(d.efficiency_factor(256.0) < 1.0);
        assert_eq!(d.efficiency_factor(0.0), 1.0);
    }

    #[test]
    fn per_sample_time_decreases_with_batch() {
        let d = DeviceModel::a100_like();
        let per = |b: f64| d.kernel_time(1e12, 0.0, b) / b;
        assert!(per(8.0) > per(32.0));
        assert!(per(32.0) > per(128.0));
    }

    #[test]
    fn overhead_is_batch_independent() {
        let d = DeviceModel::a100_like();
        let t0 = d.kernel_time(0.0, 100.0, 0.0);
        let t64 = d.kernel_time(0.0, 100.0, 64.0);
        assert_eq!(t0, t64);
        assert!((t0 - 1e-4).abs() < 1e-15);
    }

    #[test]
    fn scaled_device() {
        let d = DeviceModel::linear().scaled(2.0);
        assert_eq!(d.peak_flops, 2.0e14);
        let t = d.kernel_time(1e12, 0.0, 1.0);
        assert!((t - 0.005).abs() < 1e-12);
    }
}
