//! Profiling errors.

use dpipe_model::{ComponentId, LayerId};
use std::error::Error;
use std::fmt;

/// Errors from record-backed profiling.
///
/// Raised when a [`crate::RecordTable`] does not cover the model it is
/// attached to — a model/profile mismatch that previously panicked deep
/// inside timing queries. Serving layers map this into their own
/// invalid-request errors instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// A layer of the model was never profiled.
    MissingLayer {
        /// Component owning the unprofiled layer.
        component: ComponentId,
        /// The unprofiled layer.
        layer: LayerId,
    },
    /// A layer was profiled but has no timing samples.
    EmptySamples {
        /// Component owning the sample-less layer.
        component: ComponentId,
        /// The sample-less layer.
        layer: LayerId,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::MissingLayer { component, layer } => {
                write!(f, "layer {component}/{layer} was not profiled")
            }
            ProfileError::EmptySamples { component, layer } => {
                write!(f, "layer {component}/{layer} has no timing samples")
            }
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_layer() {
        let e = ProfileError::MissingLayer {
            component: ComponentId(1),
            layer: LayerId(3),
        };
        assert!(e.to_string().contains("not profiled"));
        let e = ProfileError::EmptySamples {
            component: ComponentId(0),
            layer: LayerId(0),
        };
        assert!(e.to_string().contains("no timing samples"));
    }
}
