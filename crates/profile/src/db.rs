//! Profile database: the query interface used by every planning algorithm.

use crate::device::DeviceModel;
use crate::records::RecordTable;
use dpipe_model::{ComponentId, LayerId, ModelSpec};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

/// Deterministic multiplicative noise emulating profiling measurement error.
///
/// A layer's *profiled* time is its true analytic time scaled by
/// `1 + sigma * u` where `u ∈ [-1, 1]` is a hash of (component, layer).
/// This reproduces the paper's observation (§6.2) that the gap between
/// profiled and actual execution time leaves a little bubble time unfilled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative noise amplitude (e.g. 0.03 for ±3%).
    pub sigma: f64,
    /// Seed mixed into the hash.
    pub seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl NoiseConfig {
    fn factor(&self, c: ComponentId, l: LayerId) -> f64 {
        let h = splitmix64(
            self.seed ^ (c.index() as u64).wrapping_mul(0x9e37) ^ ((l.index() as u64) << 32),
        );
        let u = (h as f64 / u64::MAX as f64) * 2.0 - 1.0;
        1.0 + self.sigma * u
    }
}

/// Queryable per-layer execution times, communication sizes and gradient
/// sizes — the paper's "profile records" (Fig. 7, step 1 output).
#[derive(Debug, Clone)]
pub struct ProfileDb {
    model: Arc<ModelSpec>,
    device: DeviceModel,
    noise: Option<NoiseConfig>,
    /// When present, layer times come from interpolated measurements
    /// instead of the analytic device model (the paper's record-driven
    /// mode).
    records: Option<Arc<RecordTable>>,
}

impl ProfileDb {
    /// Builds a database for `model` timed on `device`.
    pub fn new(model: Arc<ModelSpec>, device: DeviceModel) -> Self {
        ProfileDb {
            model,
            device,
            noise: None,
            records: None,
        }
    }

    /// Switches the database to record-backed timing: every layer query is
    /// answered by piecewise-linear interpolation over the given profiled
    /// samples. The table is validated against the model up front, so a
    /// model/profile mismatch is a typed error here rather than a panic
    /// inside a later timing query.
    ///
    /// # Errors
    ///
    /// [`crate::ProfileError`] if any model layer lacks samples.
    pub fn with_records(mut self, records: RecordTable) -> Result<Self, crate::ProfileError> {
        records.validate_covers(&self.model)?;
        self.records = Some(Arc::new(records));
        Ok(self)
    }

    /// True when timing comes from interpolated records.
    pub fn is_record_backed(&self) -> bool {
        self.records.is_some()
    }

    /// Adds deterministic measurement noise.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The profiled model.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The device model used for timing.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    fn noise_factor(&self, c: ComponentId, l: LayerId) -> f64 {
        self.noise.map_or(1.0, |n| n.factor(c, l))
    }

    /// Forward time `P^f_l(B)` of one layer at a (possibly fractional) local
    /// batch size. Record-backed lookups are total: coverage is validated
    /// when the records are attached ([`ProfileDb::with_records`]), and a
    /// layer that somehow still lacks samples falls back to the analytic
    /// model instead of panicking.
    pub fn fwd_time(&self, c: ComponentId, l: LayerId, batch: f64) -> f64 {
        if let Some(records) = &self.records {
            if let Some(samples) = records.layer(c, l) {
                return samples.fwd(batch) * self.noise_factor(c, l);
            }
        }
        let layer = self.model.component(c).layer(l);
        self.device
            .kernel_time(layer.flops_per_sample, layer.overhead_us, batch)
            * self.noise_factor(c, l)
    }

    /// Backward time `P^b_l(B)` (same lookup contract as
    /// [`ProfileDb::fwd_time`]).
    pub fn bwd_time(&self, c: ComponentId, l: LayerId, batch: f64) -> f64 {
        if let Some(records) = &self.records {
            if let Some(samples) = records.layer(c, l) {
                return samples.bwd(batch) * self.noise_factor(c, l);
            }
        }
        let layer = self.model.component(c).layer(l);
        self.device.kernel_time(
            layer.flops_per_sample * layer.backward_mult,
            layer.overhead_us * layer.backward_mult,
            batch,
        ) * self.noise_factor(c, l)
    }

    /// Sum of forward times over a layer range of a component.
    pub fn fwd_time_range(&self, c: ComponentId, layers: Range<usize>, batch: f64) -> f64 {
        layers.map(|l| self.fwd_time(c, LayerId(l), batch)).sum()
    }

    /// Sum of backward times over a layer range.
    pub fn bwd_time_range(&self, c: ComponentId, layers: Range<usize>, batch: f64) -> f64 {
        layers.map(|l| self.bwd_time(c, LayerId(l), batch)).sum()
    }

    /// Forward time of a whole component (frozen encoders run forward only).
    pub fn component_fwd_time(&self, c: ComponentId, batch: f64) -> f64 {
        self.fwd_time_range(c, 0..self.model.component(c).num_layers(), batch)
    }

    /// Forward + backward time of a whole component.
    pub fn component_fwd_bwd_time(&self, c: ComponentId, batch: f64) -> f64 {
        let n = self.model.component(c).num_layers();
        self.fwd_time_range(c, 0..n, batch) + self.bwd_time_range(c, 0..n, batch)
    }

    /// Activation bytes crossing a stage boundary placed *after* layer `l`
    /// of component `c`, for a whole local batch — the paper's
    /// `C^f_{l,l+1}(B)`. Backward traffic `C^b_{l+1,l}` is the gradient of
    /// the same activation, i.e. the same byte count.
    pub fn boundary_bytes(&self, c: ComponentId, l: LayerId, batch: f64) -> u64 {
        let layer = self.model.component(c).layer(l);
        (layer.out_bytes_per_sample as f64 * batch).ceil() as u64
    }

    /// Gradient bytes `G_l` of a layer (batch independent for f32 training).
    pub fn grad_bytes(&self, c: ComponentId, l: LayerId) -> u64 {
        self.model.component(c).layer(l).grad_bytes()
    }

    /// Gradient bytes summed over a layer range.
    pub fn grad_bytes_range(&self, c: ComponentId, layers: Range<usize>) -> u64 {
        layers.map(|l| self.grad_bytes(c, LayerId(l))).sum()
    }

    /// Output bytes `O_L(B)` of a component's final layer for a local batch
    /// (used for the self-conditioning feedback transfer, Eqn. 18).
    pub fn output_bytes(&self, c: ComponentId, batch: f64) -> u64 {
        let comp = self.model.component(c);
        (comp.output_bytes_per_sample() as f64 * batch).ceil() as u64
    }

    /// Total frozen (non-trainable) forward time at a local batch size —
    /// numerator of the paper's Table 1 ratio.
    pub fn total_frozen_fwd_time(&self, batch: f64) -> f64 {
        self.model
            .frozen_components()
            .map(|(id, _)| self.component_fwd_time(id, batch))
            .sum()
    }

    /// Total trainable forward+backward time at a local batch size —
    /// denominator of the paper's Table 1 ratio.
    pub fn total_trainable_fwd_bwd_time(&self, batch: f64) -> f64 {
        self.model
            .backbones()
            .map(|(id, _)| self.component_fwd_bwd_time(id, batch))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    fn db() -> ProfileDb {
        ProfileDb::new(Arc::new(zoo::tiny_model()), DeviceModel::a100_like())
    }

    #[test]
    fn bwd_is_twice_fwd_minus_overhead_effects() {
        let db = db();
        let (bb, _) = db.model().backbones().next().unwrap();
        let f = db.fwd_time(bb, LayerId(0), 64.0);
        let b = db.bwd_time(bb, LayerId(0), 64.0);
        assert!((b / f - 2.0).abs() < 1e-9, "b/f = {}", b / f);
    }

    #[test]
    fn range_sums_match_single_layers() {
        let db = db();
        let (bb, comp) = db.model().backbones().next().unwrap();
        let n = comp.num_layers();
        let total: f64 = (0..n).map(|l| db.fwd_time(bb, LayerId(l), 8.0)).sum();
        assert!((db.fwd_time_range(bb, 0..n, 8.0) - total).abs() < 1e-12);
    }

    #[test]
    fn fractional_batch_is_supported() {
        let db = db();
        let (bb, _) = db.model().backbones().next().unwrap();
        let t_half = db.fwd_time(bb, LayerId(0), 32.0);
        let t_full = db.fwd_time(bb, LayerId(0), 64.0);
        assert!(t_half < t_full);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let base = db();
        let noisy = db().with_noise(NoiseConfig {
            sigma: 0.05,
            seed: 42,
        });
        let noisy2 = db().with_noise(NoiseConfig {
            sigma: 0.05,
            seed: 42,
        });
        let (bb, comp) = base.model().backbones().next().unwrap();
        for l in 0..comp.num_layers() {
            let t0 = base.fwd_time(bb, LayerId(l), 16.0);
            let t1 = noisy.fwd_time(bb, LayerId(l), 16.0);
            let t2 = noisy2.fwd_time(bb, LayerId(l), 16.0);
            assert_eq!(t1, t2);
            assert!((t1 / t0 - 1.0).abs() <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn table1_ratio_shape_for_sd() {
        // Table 1: SD v2.1 non-trainable/trainable ratio grows from ~38% at
        // batch 8 to ~44% at batch 64.
        let db = ProfileDb::new(
            Arc::new(zoo::stable_diffusion_v2_1()),
            DeviceModel::a100_like(),
        );
        let r8 = db.total_frozen_fwd_time(8.0) / db.total_trainable_fwd_bwd_time(8.0);
        let r64 = db.total_frozen_fwd_time(64.0) / db.total_trainable_fwd_bwd_time(64.0);
        assert!((0.33..0.43).contains(&r8), "r8 = {r8}");
        assert!((0.40..0.49).contains(&r64), "r64 = {r64}");
        assert!(r64 > r8);
    }

    #[test]
    fn table1_ratio_shape_for_controlnet() {
        let db = ProfileDb::new(Arc::new(zoo::controlnet_v1_0()), DeviceModel::a100_like());
        let r8 = db.total_frozen_fwd_time(8.0) / db.total_trainable_fwd_bwd_time(8.0);
        let r64 = db.total_frozen_fwd_time(64.0) / db.total_trainable_fwd_bwd_time(64.0);
        assert!((0.68..0.84).contains(&r8), "r8 = {r8}");
        assert!((0.82..0.96).contains(&r64), "r64 = {r64}");
        assert!(r64 > r8);
    }

    #[test]
    fn boundary_and_grad_bytes() {
        let db = db();
        let (bb, comp) = db.model().backbones().next().unwrap();
        let l0 = comp.layer(LayerId(0));
        assert_eq!(
            db.boundary_bytes(bb, LayerId(0), 4.0),
            l0.out_bytes_per_sample * 4
        );
        assert_eq!(db.grad_bytes(bb, LayerId(0)), l0.grad_bytes());
        assert_eq!(
            db.grad_bytes_range(bb, 0..comp.num_layers()),
            comp.param_bytes()
        );
    }
}
