//! Precomputed cost tables for the partitioning hot path.
//!
//! The §4 partition DP asks for the same quantities over and over: the
//! summed forward/backward time of a layer interval `[l, l2)` at some local
//! batch, the gradient bytes of the interval, and the activation bytes at a
//! stage boundary. Answering those through [`ProfileDb`] walks every layer
//! on every query (and re-evaluates the deterministic measurement-noise
//! hash per layer), which dominates planning time.
//!
//! [`CostPrefix`] precomputes the answers once per (component, local batch)
//! pair so every interval query is O(1). The tables are *bit-identical* to
//! the naive sums: `fwd_time_range` folds layer times left-to-right from
//! `0.0`, so the triangular interval table is built by exactly that
//! recurrence (`sum[l, l2+1] = sum[l, l2] + t[l2]`) rather than by
//! subtracting prefix sums, which would round differently. The equivalence
//! is enforced by property tests in `dpipe_partition`.

use crate::db::ProfileDb;
use dpipe_model::{ComponentId, LayerId};
use std::ops::Range;

/// Triangular table of interval sums over `n` per-layer values.
///
/// Entry `(l, l2)` with `l < l2 <= n` holds the left-to-right fold of
/// `values[l..l2]`, stored flat: row `l` starts at `row_offset(l)` and has
/// `n - l` entries for interval ends `l+1..=n`.
#[derive(Debug, Clone)]
struct IntervalTable {
    n: usize,
    sums: Vec<f64>,
}

impl IntervalTable {
    /// Builds the table from per-layer values, reproducing the exact
    /// rounding of a left-to-right `Iterator::sum::<f64>()` over each
    /// interval.
    fn build(values: &[f64]) -> Self {
        let n = values.len();
        let mut sums = Vec::with_capacity(n * (n + 1) / 2);
        for l in 0..n {
            let mut acc = 0.0f64;
            for &v in &values[l..] {
                acc += v;
                sums.push(acc);
            }
        }
        IntervalTable { n, sums }
    }

    #[inline]
    fn row_offset(&self, l: usize) -> usize {
        // Row l starts after rows 0..l of lengths n, n-1, ..., n-l+1.
        l * self.n - l * (l + 1) / 2 + l
    }

    /// The interval sum over `[l, l2)`; `0.0` for empty intervals.
    #[inline]
    fn range(&self, range: &Range<usize>) -> f64 {
        if range.start >= range.end {
            return 0.0;
        }
        debug_assert!(range.end <= self.n);
        self.sums[self.row_offset(range.start) + (range.end - range.start - 1)]
    }
}

/// Per-batch cost row: interval tables plus boundary bytes at that batch.
#[derive(Debug, Clone)]
struct BatchRow {
    /// The local batch this row was built for, as raw bits (exact match).
    batch_bits: u64,
    fwd: IntervalTable,
    bwd: IntervalTable,
    /// `boundary_bytes(c, l, batch)` per layer.
    boundary: Vec<u64>,
}

/// Borrowed view of one batch row of a [`CostPrefix`].
///
/// Resolves the batch → row lookup once, so hot loops (the partition DPs
/// query three cost kinds per candidate) never re-scan the row list.
#[derive(Debug, Clone, Copy)]
pub struct BatchCosts<'a> {
    row: &'a BatchRow,
    grad_prefix: &'a [u64],
}

impl BatchCosts<'_> {
    /// Sum of forward times over `layers` — bit-identical to
    /// [`ProfileDb::fwd_time_range`] at this view's batch.
    #[inline]
    pub fn fwd_range(&self, layers: &Range<usize>) -> f64 {
        self.row.fwd.range(layers)
    }

    /// Sum of backward times over `layers`.
    #[inline]
    pub fn bwd_range(&self, layers: &Range<usize>) -> f64 {
        self.row.bwd.range(layers)
    }

    /// Activation bytes crossing the boundary after layer `l`.
    #[inline]
    pub fn boundary_bytes(&self, l: usize) -> u64 {
        self.row.boundary[l]
    }

    /// Gradient bytes summed over `layers` (batch independent).
    #[inline]
    pub fn grad_bytes_range(&self, layers: &Range<usize>) -> u64 {
        self.grad_prefix[layers.end] - self.grad_prefix[layers.start]
    }
}

/// Precomputed O(1) interval cost table for one component of a model.
///
/// Build once with [`CostPrefix::new`], then call
/// [`ensure_batch`](CostPrefix::ensure_batch) for every local batch size the
/// search will query (for a stage replicated on `r` devices that is
/// `micro_batch / r`). After that the table is immutable and can be shared
/// across threads.
#[derive(Debug, Clone)]
pub struct CostPrefix {
    comp: ComponentId,
    num_layers: usize,
    /// Prefix sums of per-layer gradient bytes (batch independent; u64
    /// addition is associative so plain prefix subtraction is exact).
    grad_prefix: Vec<u64>,
    rows: Vec<BatchRow>,
}

impl CostPrefix {
    /// Creates the batch-independent part of the table for `comp`.
    pub fn new(db: &ProfileDb, comp: ComponentId) -> Self {
        let num_layers = db.model().component(comp).num_layers();
        let mut grad_prefix = Vec::with_capacity(num_layers + 1);
        let mut acc = 0u64;
        grad_prefix.push(0);
        for l in 0..num_layers {
            acc += db.grad_bytes(comp, LayerId(l));
            grad_prefix.push(acc);
        }
        CostPrefix {
            comp,
            num_layers,
            grad_prefix,
            rows: Vec::new(),
        }
    }

    /// The component this table covers.
    pub fn component(&self) -> ComponentId {
        self.comp
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Precomputes the per-layer tables for one local batch size (a no-op
    /// if the row already exists). O(L²) time, O(L²) space per batch.
    pub fn ensure_batch(&mut self, db: &ProfileDb, batch: f64) {
        let bits = batch.to_bits();
        if self.rows.iter().any(|r| r.batch_bits == bits) {
            return;
        }
        let fwd: Vec<f64> = (0..self.num_layers)
            .map(|l| db.fwd_time(self.comp, LayerId(l), batch))
            .collect();
        let bwd: Vec<f64> = (0..self.num_layers)
            .map(|l| db.bwd_time(self.comp, LayerId(l), batch))
            .collect();
        let boundary: Vec<u64> = (0..self.num_layers)
            .map(|l| db.boundary_bytes(self.comp, LayerId(l), batch))
            .collect();
        self.rows.push(BatchRow {
            batch_bits: bits,
            fwd: IntervalTable::build(&fwd),
            bwd: IntervalTable::build(&bwd),
            boundary,
        });
    }

    /// True when a row for this exact batch exists.
    pub fn has_batch(&self, batch: f64) -> bool {
        let bits = batch.to_bits();
        self.rows.iter().any(|r| r.batch_bits == bits)
    }

    #[inline]
    fn row(&self, batch: f64) -> &BatchRow {
        let bits = batch.to_bits();
        self.rows
            .iter()
            .find(|r| r.batch_bits == bits)
            .unwrap_or_else(|| {
                // dpipe-analyze: allow(no-panic) -- documented "# Panics" contract: ensure_batch must precede queries; a silent fallback would corrupt cost lookups
                panic!(
                    "CostPrefix row for batch {batch} missing; call ensure_batch before querying"
                )
            })
    }

    /// Resolves the row for `batch` once, for repeated hot-loop queries.
    ///
    /// # Panics
    ///
    /// Panics if [`ensure_batch`](CostPrefix::ensure_batch) was not called
    /// for this batch.
    #[inline]
    pub fn batch_view(&self, batch: f64) -> BatchCosts<'_> {
        BatchCosts {
            row: self.row(batch),
            grad_prefix: &self.grad_prefix,
        }
    }

    /// Sum of forward times over `layers` at `batch` — bit-identical to
    /// [`ProfileDb::fwd_time_range`].
    ///
    /// # Panics
    ///
    /// Panics if [`ensure_batch`](CostPrefix::ensure_batch) was not called
    /// for this batch.
    #[inline]
    pub fn fwd_range(&self, layers: &Range<usize>, batch: f64) -> f64 {
        self.row(batch).fwd.range(layers)
    }

    /// Sum of backward times over `layers` at `batch` — bit-identical to
    /// [`ProfileDb::bwd_time_range`].
    ///
    /// # Panics
    ///
    /// Panics if the batch row is missing (see [`CostPrefix::fwd_range`]).
    #[inline]
    pub fn bwd_range(&self, layers: &Range<usize>, batch: f64) -> f64 {
        self.row(batch).bwd.range(layers)
    }

    /// Activation bytes crossing a boundary after layer `l` at `batch` —
    /// identical to [`ProfileDb::boundary_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if the batch row is missing (see [`CostPrefix::fwd_range`]).
    #[inline]
    pub fn boundary_bytes(&self, l: usize, batch: f64) -> u64 {
        self.row(batch).boundary[l]
    }

    /// Gradient bytes summed over `layers` — identical to
    /// [`ProfileDb::grad_bytes_range`].
    #[inline]
    pub fn grad_bytes_range(&self, layers: &Range<usize>) -> u64 {
        self.grad_prefix[layers.end] - self.grad_prefix[layers.start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::profiler::Profiler;
    use dpipe_model::zoo;

    fn db() -> ProfileDb {
        Profiler::new(DeviceModel::a100_like())
            .profile(&zoo::stable_diffusion_v2_1(), 64)
            .0
    }

    fn backbone(db: &ProfileDb) -> ComponentId {
        db.model().backbones().next().unwrap().0
    }

    #[test]
    fn interval_table_matches_left_fold() {
        let values = [0.1, 0.7, 1e-9, 3.0, 0.25];
        let t = IntervalTable::build(&values);
        for l in 0..values.len() {
            for l2 in l..=values.len() {
                let naive: f64 = values[l..l2].iter().sum();
                assert_eq!(t.range(&(l..l2)), naive, "interval {l}..{l2}");
            }
        }
    }

    #[test]
    fn ranges_bit_identical_to_profile_db() {
        let db = db();
        let bb = backbone(&db);
        let mut prefix = CostPrefix::new(&db, bb);
        let n = prefix.num_layers();
        for batch in [16.0, 7.5, 64.0] {
            prefix.ensure_batch(&db, batch);
            for l in 0..n {
                for l2 in l..=n {
                    assert_eq!(
                        prefix.fwd_range(&(l..l2), batch),
                        db.fwd_time_range(bb, l..l2, batch)
                    );
                    assert_eq!(
                        prefix.bwd_range(&(l..l2), batch),
                        db.bwd_time_range(bb, l..l2, batch)
                    );
                    assert_eq!(
                        prefix.grad_bytes_range(&(l..l2)),
                        db.grad_bytes_range(bb, l..l2)
                    );
                }
            }
            for l in 0..n {
                assert_eq!(
                    prefix.boundary_bytes(l, batch),
                    db.boundary_bytes(bb, LayerId(l), batch)
                );
            }
        }
    }

    #[test]
    fn noisy_db_ranges_match_too() {
        let base = db().with_noise(crate::NoiseConfig {
            sigma: 0.04,
            seed: 7,
        });
        let bb = backbone(&base);
        let mut prefix = CostPrefix::new(&base, bb);
        prefix.ensure_batch(&base, 12.0);
        let n = prefix.num_layers();
        assert_eq!(
            prefix.fwd_range(&(0..n), 12.0),
            base.fwd_time_range(bb, 0..n, 12.0)
        );
    }

    #[test]
    fn ensure_batch_is_idempotent() {
        let db = db();
        let bb = backbone(&db);
        let mut prefix = CostPrefix::new(&db, bb);
        prefix.ensure_batch(&db, 8.0);
        prefix.ensure_batch(&db, 8.0);
        assert!(prefix.has_batch(8.0));
        assert!(!prefix.has_batch(9.0));
        assert_eq!(prefix.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_row_panics_with_hint() {
        let db = db();
        let bb = backbone(&db);
        let prefix = CostPrefix::new(&db, bb);
        let _ = prefix.fwd_range(&(0..1), 8.0);
    }

    #[test]
    fn empty_interval_is_zero() {
        let db = db();
        let bb = backbone(&db);
        let mut prefix = CostPrefix::new(&db, bb);
        prefix.ensure_batch(&db, 4.0);
        assert_eq!(prefix.fwd_range(&(3..3), 4.0), 0.0);
        assert_eq!(prefix.grad_bytes_range(&(0..0)), 0);
    }
}
