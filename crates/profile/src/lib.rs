//! Layer profiling and execution-time cost models.
//!
//! Step 1 of DiffusionPipe's workflow (Fig. 7) profiles every model layer at
//! a set of batch sizes on the real cluster. This crate substitutes the CUDA
//! profiler with a deterministic analytical device model (an A100-like
//! device with ~1e14 FLOP/s effective throughput), optionally perturbed with
//! reproducible noise to emulate measurement error — the cause of residual
//! unfilled bubble time the paper reports in §6.2.
//!
//! All downstream algorithms (partitioning, scheduling, bubble filling)
//! consume a [`ProfileDb`], never the model directly, mirroring the paper's
//! profile-record-driven design.
//!
//! # Example
//!
//! ```
//! use dpipe_model::zoo;
//! use dpipe_profile::{DeviceModel, Profiler};
//!
//! let model = zoo::stable_diffusion_v2_1();
//! let (db, report) = Profiler::new(DeviceModel::a100_like())
//!     .profile(&model, 64);
//! assert!(report.wall_time_seconds > 0.0);
//! let (cid, unet) = model.backbones().next().unwrap();
//! let t = db.fwd_time(cid, dpipe_model::LayerId(0), 64.0);
//! assert!(t > 0.0);
//! # let _ = unet;
//! ```

mod db;
mod device;
mod error;
mod prefix;
mod profiler;
mod records;

pub use db::{NoiseConfig, ProfileDb};
pub use device::DeviceModel;
pub use error::ProfileError;
pub use prefix::{BatchCosts, CostPrefix};
pub use profiler::{ProfileRecord, Profiler, ProfilingReport};
pub use records::{LayerSamples, RecordTable};
