//! Parallel profiling pass (Fig. 7, step 1).

use crate::db::ProfileDb;
use crate::device::DeviceModel;
use crate::records::RecordTable;
use dpipe_model::{ComponentId, LayerId, ModelSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One profiled measurement: a layer at one batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Component owning the layer.
    pub component: ComponentId,
    /// Layer within the component.
    pub layer: LayerId,
    /// Batch size the measurement was taken at.
    pub batch: u32,
    /// Forward time in seconds.
    pub fwd_time: f64,
    /// Backward time in seconds (0 for frozen components).
    pub bwd_time: f64,
    /// Activation output bytes at this batch.
    pub out_bytes: u64,
}

/// Summary of a profiling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilingReport {
    /// Simulated wall-clock duration of the profiling pass, assuming it runs
    /// data-parallel on `world_size` devices with `repeats` timed repetitions
    /// per measurement (the paper reports ~55 s for SD v2.1 on 16 GPUs).
    pub wall_time_seconds: f64,
    /// All records gathered.
    pub records: Vec<ProfileRecord>,
    /// Batch sizes profiled.
    pub batch_sizes: Vec<u32>,
}

/// Profiler configuration.
///
/// # Example
///
/// ```
/// use dpipe_model::zoo;
/// use dpipe_profile::{DeviceModel, Profiler};
///
/// let (db, report) = Profiler::new(DeviceModel::a100_like())
///     .with_world_size(16)
///     .profile(&zoo::tiny_model(), 64);
/// assert!(!report.records.is_empty());
/// assert!(db.fwd_time(dpipe_model::ComponentId(0), dpipe_model::LayerId(0), 8.0) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceModel,
    world_size: usize,
    repeats: u32,
    extra_batch_sizes: Vec<u32>,
}

impl Profiler {
    /// Creates a profiler for the given device model.
    pub fn new(device: DeviceModel) -> Self {
        Profiler {
            device,
            world_size: 1,
            repeats: 3,
            extra_batch_sizes: Vec::new(),
        }
    }

    /// Number of devices profiling runs on in parallel.
    pub fn with_world_size(mut self, world_size: usize) -> Self {
        assert!(world_size > 0, "world size must be positive");
        self.world_size = world_size;
        self
    }

    /// Timed repetitions per measurement (default 3).
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Additional batch sizes to profile beyond the default ladder.
    pub fn with_extra_batch_sizes(mut self, sizes: impl IntoIterator<Item = u32>) -> Self {
        self.extra_batch_sizes.extend(sizes);
        self
    }

    /// The batch-size ladder profiled for a training batch `b`: the paper's
    /// partial-batch candidates {4, 8, 12, 16, 24, 32, 48, 64, 96} capped at
    /// `b`, plus `b` itself and any extras.
    pub fn batch_ladder(&self, training_batch: u32) -> Vec<u32> {
        let mut sizes: Vec<u32> = [4u32, 8, 12, 16, 24, 32, 48, 64, 96]
            .into_iter()
            .filter(|&s| s <= training_batch)
            .collect();
        sizes.push(training_batch);
        sizes.extend(self.extra_batch_sizes.iter().copied());
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// Runs the profiling pass for `model` at training batch size
    /// `training_batch`, producing the queryable [`ProfileDb`] and a
    /// [`ProfilingReport`] with per-record data and simulated cost.
    pub fn profile(&self, model: &ModelSpec, training_batch: u32) -> (ProfileDb, ProfilingReport) {
        let model = Arc::new(model.clone());
        let db = ProfileDb::new(Arc::clone(&model), self.device.clone());
        let batch_sizes = self.batch_ladder(training_batch);
        let mut records = Vec::new();
        let mut total_device_seconds = 0.0;
        for (cid, comp) in model.components_enumerated() {
            for (lid, layer) in comp.layers_enumerated() {
                for &b in &batch_sizes {
                    let fwd = db.fwd_time(cid, lid, b as f64);
                    let bwd = if comp.is_trainable() {
                        db.bwd_time(cid, lid, b as f64)
                    } else {
                        0.0
                    };
                    total_device_seconds += (fwd + bwd) * self.repeats as f64;
                    records.push(ProfileRecord {
                        component: cid,
                        layer: lid,
                        batch: b,
                        fwd_time: fwd,
                        bwd_time: bwd,
                        out_bytes: layer.out_bytes(b as u64),
                    });
                }
            }
        }
        // Profiling parallelises over devices; add a fixed setup cost per
        // measured layer for graph capture / warmup.
        let setup = 0.02 * records.len() as f64 / self.world_size as f64;
        let report = ProfilingReport {
            wall_time_seconds: total_device_seconds / self.world_size as f64 + setup,
            records,
            batch_sizes,
        };
        (db, report)
    }

    /// Like [`Profiler::profile`], but returns a *record-backed* database:
    /// planning queries are answered by interpolating the measured samples
    /// (the paper's mode of operation). Backward times for frozen layers
    /// are profiled too so stage-cost queries remain well-defined.
    ///
    /// # Errors
    ///
    /// [`crate::ProfileError`] if the recorded table fails coverage
    /// validation against the model (cannot happen for tables built here,
    /// but the typed contract is shared with
    /// [`ProfileDb::with_records`]).
    pub fn profile_records(
        &self,
        model: &ModelSpec,
        training_batch: u32,
    ) -> Result<(ProfileDb, ProfilingReport), crate::ProfileError> {
        let (analytic_db, report) = self.profile(model, training_batch);
        let mut table = RecordTable::new();
        for (cid, comp) in model.components_enumerated() {
            for (lid, _) in comp.layers_enumerated() {
                for &b in &report.batch_sizes {
                    let fwd = analytic_db.fwd_time(cid, lid, b as f64);
                    let bwd = analytic_db.bwd_time(cid, lid, b as f64);
                    table.record(cid, lid, b as f64, fwd, bwd);
                }
            }
        }
        Ok((analytic_db.with_records(table)?, report))
    }

    /// Profiles `model` once per device class, given each class's compute
    /// scale relative to this profiler's device (the heterogeneous-cluster
    /// entry point): `dbs[c]` answers timing queries as measured on class
    /// `c`. A scale of exactly 1.0 reuses the reference database, so the
    /// single-class call is bit-identical to [`Profiler::profile`].
    ///
    /// The report models one profiling pass on the reference class — in a
    /// real mixed fleet each class profiles its own layers concurrently, so
    /// the reference wall time is the (conservative) upper bound.
    pub fn profile_classes(
        &self,
        model: &ModelSpec,
        training_batch: u32,
        compute_scales: &[f64],
    ) -> (Vec<ProfileDb>, ProfilingReport) {
        let (reference, report) = self.profile(model, training_batch);
        let dbs = compute_scales
            .iter()
            .map(|&scale| {
                if scale == 1.0 {
                    reference.clone()
                } else {
                    ProfileDb::new(Arc::new(model.clone()), self.device.scaled(scale))
                }
            })
            .collect();
        (dbs, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    #[test]
    fn ladder_is_sorted_unique_and_capped() {
        let p = Profiler::new(DeviceModel::a100_like());
        assert_eq!(p.batch_ladder(16), vec![4, 8, 12, 16]);
        assert_eq!(p.batch_ladder(64), vec![4, 8, 12, 16, 24, 32, 48, 64]);
        let l = p.batch_ladder(100);
        assert!(l.contains(&96) && l.contains(&100));
    }

    #[test]
    fn record_count_matches_layers_times_batches() {
        let m = zoo::tiny_model();
        let p = Profiler::new(DeviceModel::a100_like());
        let (_, report) = p.profile(&m, 16);
        let layers: usize = m.components.iter().map(|c| c.num_layers()).sum();
        assert_eq!(report.records.len(), layers * report.batch_sizes.len());
    }

    #[test]
    fn frozen_layers_have_zero_bwd() {
        let m = zoo::tiny_model();
        let (_, report) = Profiler::new(DeviceModel::a100_like()).profile(&m, 8);
        for r in &report.records {
            let frozen = !m.component(r.component).is_trainable();
            if frozen {
                assert_eq!(r.bwd_time, 0.0);
            } else {
                assert!(r.bwd_time > 0.0);
            }
        }
    }

    #[test]
    fn more_devices_profile_faster() {
        let m = zoo::stable_diffusion_v2_1();
        let (_, r1) = Profiler::new(DeviceModel::a100_like()).profile(&m, 64);
        let (_, r16) = Profiler::new(DeviceModel::a100_like())
            .with_world_size(16)
            .profile(&m, 64);
        assert!(r16.wall_time_seconds < r1.wall_time_seconds);
    }

    #[test]
    fn sd_profiling_takes_tens_of_seconds_on_16_gpus() {
        // §6.4: "a typical profiling time of SD v2.1 on 2 machines at batch
        // size 512 is 55 seconds". Same order of magnitude here.
        let m = zoo::stable_diffusion_v2_1();
        let (_, r) = Profiler::new(DeviceModel::a100_like())
            .with_world_size(16)
            .with_extra_batch_sizes([128, 256, 512])
            .profile(&m, 512);
        assert!(
            (5.0..300.0).contains(&r.wall_time_seconds),
            "{}",
            r.wall_time_seconds
        );
    }
}
