//! Record-backed timing: piecewise-linear interpolation over profiled
//! batch sizes, mirroring the paper's design where all planning algorithms
//! consume measured profile records rather than a closed-form model.

use crate::error::ProfileError;
use dpipe_model::{ComponentId, LayerId, ModelSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Timing samples for one layer: sorted `(batch, fwd_seconds, bwd_seconds)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LayerSamples {
    samples: Vec<(f64, f64, f64)>,
}

impl LayerSamples {
    /// Adds a measurement (keeps the list sorted by batch).
    pub fn push(&mut self, batch: f64, fwd: f64, bwd: f64) {
        let pos = self.samples.partition_point(|&(b, _, _)| b < batch);
        self.samples.insert(pos, (batch, fwd, bwd));
    }

    /// Piecewise-linear interpolation (linear extrapolation at the edges
    /// through the origin-side anchor). Returns 0 for an empty sample list —
    /// validated tables ([`RecordTable::validate_covers`]) never contain one.
    fn interp(&self, batch: f64, select: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if self.samples.len() == 1 {
            // Scale proportionally from the single sample.
            let (b0, _, _) = self.samples[0];
            return select(&self.samples[0]) * (batch / b0);
        }
        // Find the surrounding segment (clamped to the outermost ones).
        let pos = self
            .samples
            .partition_point(|&(b, _, _)| b < batch)
            .clamp(1, self.samples.len() - 1);
        let lo = self.samples[pos - 1];
        let hi = self.samples[pos];
        let (b0, b1) = (lo.0, hi.0);
        let (v0, v1) = (select(&lo), select(&hi));
        let t = (batch - b0) / (b1 - b0);
        v0 + t * (v1 - v0)
    }

    /// Interpolated forward time.
    pub fn fwd(&self, batch: f64) -> f64 {
        self.interp(batch, |s| s.1).max(0.0)
    }

    /// Interpolated backward time.
    pub fn bwd(&self, batch: f64) -> f64 {
        self.interp(batch, |s| s.2).max(0.0)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A table of per-layer timing samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RecordTable {
    layers: HashMap<(usize, usize), LayerSamples>,
}

impl RecordTable {
    /// An empty table.
    pub fn new() -> Self {
        RecordTable::default()
    }

    /// Records one measurement.
    pub fn record(&mut self, c: ComponentId, l: LayerId, batch: f64, fwd: f64, bwd: f64) {
        self.layers
            .entry((c.index(), l.index()))
            .or_default()
            .push(batch, fwd, bwd);
    }

    /// Samples for a layer, or `None` if the layer was never profiled.
    /// (This lookup used to panic on any model/profile mismatch; use
    /// [`RecordTable::require_layer`] for a typed error instead.)
    pub fn layer(&self, c: ComponentId, l: LayerId) -> Option<&LayerSamples> {
        self.layers.get(&(c.index(), l.index()))
    }

    /// Samples for a layer as a typed result.
    ///
    /// # Errors
    ///
    /// [`ProfileError::MissingLayer`] if the layer was never profiled,
    /// [`ProfileError::EmptySamples`] if it was recorded with no samples.
    pub fn require_layer(&self, c: ComponentId, l: LayerId) -> Result<&LayerSamples, ProfileError> {
        let samples = self.layer(c, l).ok_or(ProfileError::MissingLayer {
            component: c,
            layer: l,
        })?;
        if samples.is_empty() {
            return Err(ProfileError::EmptySamples {
                component: c,
                layer: l,
            });
        }
        Ok(samples)
    }

    /// Checks that every layer of `model` has at least one sample.
    ///
    /// # Errors
    ///
    /// The first [`ProfileError`] encountered, in component/layer order.
    pub fn validate_covers(&self, model: &ModelSpec) -> Result<(), ProfileError> {
        for (cid, comp) in model.components_enumerated() {
            for (lid, _) in comp.layers_enumerated() {
                self.require_layer(cid, lid)?;
            }
        }
        Ok(())
    }

    /// Number of profiled layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(points: &[(f64, f64, f64)]) -> LayerSamples {
        let mut s = LayerSamples::default();
        for &(b, f, w) in points {
            s.push(b, f, w);
        }
        s
    }

    #[test]
    fn exact_at_sample_points() {
        let s = samples(&[(8.0, 0.1, 0.2), (16.0, 0.18, 0.36), (32.0, 0.34, 0.68)]);
        assert_eq!(s.fwd(16.0), 0.18);
        assert_eq!(s.bwd(32.0), 0.68);
    }

    #[test]
    fn interpolates_between_points() {
        let s = samples(&[(8.0, 0.1, 0.2), (16.0, 0.2, 0.4)]);
        assert!((s.fwd(12.0) - 0.15).abs() < 1e-12);
        assert!((s.bwd(12.0) - 0.30).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_linearly_at_edges() {
        let s = samples(&[(8.0, 0.1, 0.2), (16.0, 0.2, 0.4)]);
        assert!((s.fwd(24.0) - 0.3).abs() < 1e-12);
        assert!((s.fwd(4.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unsorted_insertion_is_sorted() {
        let s = samples(&[(32.0, 0.3, 0.6), (8.0, 0.1, 0.2), (16.0, 0.2, 0.4)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.fwd(16.0), 0.2);
    }

    #[test]
    fn single_sample_scales_proportionally() {
        let s = samples(&[(8.0, 0.1, 0.2)]);
        assert!((s.fwd(16.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn missing_layer_is_a_typed_error_not_a_panic() {
        let t = RecordTable::new();
        assert!(t.layer(ComponentId(0), LayerId(0)).is_none());
        assert_eq!(
            t.require_layer(ComponentId(2), LayerId(5)),
            Err(ProfileError::MissingLayer {
                component: ComponentId(2),
                layer: LayerId(5),
            })
        );
    }

    #[test]
    fn empty_samples_are_a_typed_error() {
        let mut t = RecordTable::new();
        // A recorded-but-empty layer can only arise through deserialisation
        // or manual construction; emulate it via the entry API.
        t.layers.insert((0, 0), LayerSamples::default());
        assert_eq!(
            t.require_layer(ComponentId(0), LayerId(0)),
            Err(ProfileError::EmptySamples {
                component: ComponentId(0),
                layer: LayerId(0),
            })
        );
        // Interpolation over an empty list is total (0), not a panic.
        assert_eq!(LayerSamples::default().fwd(8.0), 0.0);
    }

    #[test]
    fn validate_covers_flags_partial_tables() {
        let model = dpipe_model::zoo::tiny_model();
        let mut t = RecordTable::new();
        assert!(t.validate_covers(&model).is_err());
        for (cid, comp) in model.components_enumerated() {
            for (lid, _) in comp.layers_enumerated() {
                t.record(cid, lid, 8.0, 0.1, 0.2);
            }
        }
        assert!(t.validate_covers(&model).is_ok());
    }
}
