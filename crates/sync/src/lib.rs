//! Poison-recovering lock primitives.
//!
//! The serving stack contains panics on purpose: worker threads wrap
//! caller-supplied work in `catch_unwind` so one bad request can never
//! take the process down. But a panic that unwinds *while holding a
//! mutex* poisons it, and `.lock().unwrap()` then converts every later
//! access — the plan cache, the metrics registry, the accept queue —
//! into a cascading panic long after the original fault was contained.
//!
//! The guarded structures in this workspace are all plain data
//! (counters, `VecDeque`s, cache maps) whose methods uphold their
//! invariants even when interrupted by unwinding, so the right response
//! to poisoning is to take the guard and keep serving. These extension
//! traits make that the one-line default, and the `lock-unwrap` lint
//! (`cargo run -p dpipe_analyze -- check`) forbids the panicking form
//! workspace-wide.
//!
//! # Example
//!
//! ```
//! use std::sync::Mutex;
//! use dpipe_sync::LockRecover;
//!
//! let m = Mutex::new(0u32);
//! *m.lock_recover() += 1;
//! assert_eq!(*m.lock_recover(), 1);
//! ```

use std::sync::{Condvar, Mutex, MutexGuard};

/// Poison-recovering [`Mutex::lock`].
pub trait LockRecover<T> {
    /// Acquire the guard, recovering it from a poisoned lock instead of
    /// panicking. Callers must only guard data whose invariants survive
    /// an unwind mid-critical-section (true of every lock in this
    /// workspace: counters, queues, cache maps).
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        match self.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Poison-recovering [`Condvar::wait`].
pub trait WaitRecover {
    /// Block on the condvar, recovering the reacquired guard from a
    /// poisoned lock instead of panicking.
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;
}

impl WaitRecover for Condvar {
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_plain() {
        let m = Mutex::new(vec![1, 2]);
        m.lock_recover().push(3);
        assert_eq!(*m.lock_recover(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recover_after_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        // The data is still intact and usable.
        *m.lock_recover() += 1;
        assert_eq!(*m.lock_recover(), 8);
    }

    #[test]
    fn wait_recover_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock_recover();
            while !*ready {
                ready = cvar.wait_recover(ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock_recover() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
