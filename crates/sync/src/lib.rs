//! Poison-recovering lock primitives.
//!
//! The serving stack contains panics on purpose: worker threads wrap
//! caller-supplied work in `catch_unwind` so one bad request can never
//! take the process down. But a panic that unwinds *while holding a
//! mutex* poisons it, and `.lock().unwrap()` then converts every later
//! access — the plan cache, the metrics registry, the accept queue —
//! into a cascading panic long after the original fault was contained.
//!
//! The guarded structures in this workspace are all plain data
//! (counters, `VecDeque`s, cache maps) whose methods uphold their
//! invariants even when interrupted by unwinding, so the right response
//! to poisoning is to take the guard and keep serving. These extension
//! traits make that the one-line default, and the `lock-unwrap` lint
//! (`cargo run -p dpipe_analyze -- check`) forbids the panicking form
//! workspace-wide.
//!
//! # Example
//!
//! ```
//! use std::sync::Mutex;
//! use dpipe_sync::LockRecover;
//!
//! let m = Mutex::new(0u32);
//! *m.lock_recover() += 1;
//! assert_eq!(*m.lock_recover(), 1);
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};

pub mod witness;

/// Poison-recovering [`Mutex::lock`].
pub trait LockRecover<T> {
    /// Acquire the guard, recovering it from a poisoned lock instead of
    /// panicking. Callers must only guard data whose invariants survive
    /// an unwind mid-critical-section (true of every lock in this
    /// workspace: counters, queues, cache maps).
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        match self.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Poison-recovering [`Condvar::wait`].
pub trait WaitRecover {
    /// Block on the condvar, recovering the reacquired guard from a
    /// poisoned lock instead of panicking.
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;
}

impl WaitRecover for Condvar {
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A [`MutexGuard`] registered with the lock-order [`witness`] under a
/// `crate::Type::field` tag. Dereferences like the plain guard; in
/// release builds the registration compiles away and this is exactly a
/// `MutexGuard` plus one `&'static str`.
#[derive(Debug)]
pub struct TaggedGuard<'a, T: ?Sized> {
    // Declaration order is drop order: release the mutex first, then
    // pop the witness registration. The witness stack is thread-local,
    // so the brief overlap is invisible to other threads.
    guard: MutexGuard<'a, T>,
    token: witness::Token,
}

impl<T: ?Sized> Deref for TaggedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for TaggedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Poison-recovering, witness-registered [`Mutex::lock`].
///
/// The tag names the lock with the same `crate::Type::field` key the
/// static `lock-order` pass uses, so observed orders can be checked
/// against the statically derived graph at test time.
pub trait LockRecoverTagged<T> {
    fn lock_recover_tagged(&self, tag: &'static str) -> TaggedGuard<'_, T>;
}

impl<T> LockRecoverTagged<T> for Mutex<T> {
    fn lock_recover_tagged(&self, tag: &'static str) -> TaggedGuard<'_, T> {
        // Register the intent *before* blocking on the lock: a real
        // deadlock would otherwise block forever without ever being
        // witnessed.
        let token = witness::Token::acquire(tag);
        TaggedGuard {
            guard: self.lock_recover(),
            token,
        }
    }
}

/// Poison-recovering [`Condvar::wait`] for tagged guards: the witness
/// registration is released for the duration of the wait (the mutex
/// is) and re-recorded on wakeup.
pub trait WaitRecoverTagged {
    fn wait_recover_tagged<'a, T>(&self, guard: TaggedGuard<'a, T>) -> TaggedGuard<'a, T>;
}

impl WaitRecoverTagged for Condvar {
    fn wait_recover_tagged<'a, T>(&self, guard: TaggedGuard<'a, T>) -> TaggedGuard<'a, T> {
        let TaggedGuard { guard, token } = guard;
        let tag = token.tag;
        drop(token);
        let guard = self.wait_recover(guard);
        TaggedGuard {
            guard,
            token: witness::Token::acquire(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_plain() {
        let m = Mutex::new(vec![1, 2]);
        m.lock_recover().push(3);
        assert_eq!(*m.lock_recover(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recover_after_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        // The data is still intact and usable.
        *m.lock_recover() += 1;
        assert_eq!(*m.lock_recover(), 8);
    }

    #[test]
    fn tagged_guard_locks_and_derefs() {
        let m = Mutex::new(vec![1]);
        m.lock_recover_tagged("synctest::Deref::v").push(2);
        assert_eq!(*m.lock_recover_tagged("synctest::Deref::v"), vec![1, 2]);
        assert!(witness::observed_nodes().contains(&"synctest::Deref::v"));
    }

    #[test]
    fn nested_tagged_locks_record_an_edge() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let ga = a.lock_recover_tagged("synctest::Edge::a");
        let gb = b.lock_recover_tagged("synctest::Edge::b");
        drop(gb);
        drop(ga);
        assert!(witness::observed_edges().contains(&("synctest::Edge::a", "synctest::Edge::b")));
        assert_eq!(
            witness::observed_edges()
                .iter()
                .filter(|(f, t)| *f == "synctest::Edge::b" && *t == "synctest::Edge::a")
                .count(),
            0
        );
    }

    #[test]
    fn inversion_panics_in_debug_builds() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        {
            let _ga = a.lock_recover_tagged("synctest::Inv::a");
            let _gb = b.lock_recover_tagged("synctest::Inv::b");
        }
        let before = witness::inversions();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock_recover_tagged("synctest::Inv::b");
            let _ga = a.lock_recover_tagged("synctest::Inv::a");
        }));
        if cfg!(debug_assertions) {
            assert!(caught.is_err(), "inversion must panic in debug builds");
            assert!(witness::inversions() > before);
        } else {
            assert!(caught.is_ok());
        }
    }

    #[test]
    fn self_nesting_panics_in_debug_builds() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let _ga = a.lock_recover_tagged("synctest::Nest::a");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Same *tag* on a different mutex still counts: the tag is
            // the lock's identity in the order graph.
            let _gb = b.lock_recover_tagged("synctest::Nest::a");
        }));
        assert_eq!(caught.is_err(), cfg!(debug_assertions));
    }

    #[test]
    fn dump_dot_is_well_formed() {
        let m = Mutex::new(0u32);
        drop(m.lock_recover_tagged("synctest::Dot::m"));
        let dot = witness::dump_dot();
        assert!(dot.starts_with("digraph observed_lock_order {"));
        assert!(dot.ends_with("}\n"));
        if cfg!(debug_assertions) {
            assert!(dot.contains("\"synctest::Dot::m\";"));
        }
    }

    #[test]
    fn tagged_wait_recover_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock_recover_tagged("synctest::Wait::ready");
            while !*ready {
                ready = cvar.wait_recover_tagged(ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock_recover_tagged("synctest::Wait::ready") = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_recover_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock_recover();
            while !*ready {
                ready = cvar.wait_recover(ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock_recover() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
