//! Runtime lock-order witness (armed under `debug_assertions` only).
//!
//! The static `lock-order` pass in `dpipe_analyze` derives the graph of
//! lock orders the code *can* exhibit; this module records the orders
//! the process *does* exhibit. Each tagged acquisition
//! ([`crate::LockRecoverTagged`]) pushes its tag onto a thread-local
//! stack of held locks and records one `held → acquired` edge per lock
//! already held. Two invariants are enforced on the spot:
//!
//! - **No inversion:** if `B → A` was ever observed, acquiring `B`
//!   while holding `A` panics — two threads interleaving those orders
//!   is a deadlock waiting for load.
//! - **No self-nesting:** re-acquiring a tag already held by this
//!   thread panics — `std::sync::Mutex` is not reentrant.
//!
//! Tags use the same `crate::Type::field` naming scheme as the static
//! pass's lock keys, so tests can assert the observed graph is a
//! subgraph of the statically derived one (see the http chaos suite).
//! In release builds every hook compiles to nothing: the observed
//! graph is empty and [`inversions`] is zero.

#[cfg(debug_assertions)]
mod armed {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    use crate::LockRecover;

    thread_local! {
        /// Tags of locks this thread currently holds, with the token id
        /// that releases each (guards drop in any order, not LIFO).
        static HELD: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static INVERSIONS: AtomicU64 = AtomicU64::new(0);
    /// Every `held → acquired` pair observed process-wide.
    static EDGES: Mutex<BTreeSet<(&'static str, &'static str)>> = Mutex::new(BTreeSet::new());
    /// Every tag ever acquired (nodes of the observed graph).
    static NODES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

    pub fn acquire(tag: &'static str) -> u64 {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        NODES.lock_recover().insert(tag);
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().iter().map(|&(_, t)| t).collect());
        for h in held {
            if h == tag {
                INVERSIONS.fetch_add(1, Ordering::Relaxed);
                fail(
                    tag,
                    h,
                    "same lock re-acquired while held (Mutex is not reentrant)",
                );
            }
            let mut edges = EDGES.lock_recover();
            if edges.contains(&(tag, h)) {
                drop(edges);
                INVERSIONS.fetch_add(1, Ordering::Relaxed);
                fail(tag, h, "opposite order was observed earlier");
            }
            edges.insert((h, tag));
        }
        HELD.with(|h| h.borrow_mut().push((id, tag)));
        id
    }

    pub fn release(id: u64) {
        HELD.with(|h| h.borrow_mut().retain(|&(i, _)| i != id));
    }

    /// A lock-order violation is a latent deadlock: fail the test run
    /// loudly at the exact acquisition that proves it.
    fn fail(acquiring: &'static str, held: &'static str, why: &str) -> ! {
        // dpipe-analyze: allow(no-panic) -- the witness is a debug-only test oracle; an observed lock-order inversion is a latent deadlock and must abort the test run at the proving acquisition
        panic!(
            "lock-order inversion: acquiring `{}` while holding `{}` ({})",
            acquiring, held, why
        );
    }

    pub fn inversions() -> u64 {
        INVERSIONS.load(Ordering::Relaxed)
    }

    pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
        EDGES.lock_recover().iter().copied().collect()
    }

    pub fn observed_nodes() -> Vec<&'static str> {
        NODES.lock_recover().iter().copied().collect()
    }

    pub fn reset() {
        EDGES.lock_recover().clear();
        NODES.lock_recover().clear();
        INVERSIONS.store(0, Ordering::Relaxed);
    }
}

/// A held-lock registration. Created by tagged acquisitions; dropping
/// it unregisters the lock from the thread's held stack. In release
/// builds this is a zero-sized no-op carrying only the tag.
#[derive(Debug)]
pub struct Token {
    pub(crate) tag: &'static str,
    #[cfg(debug_assertions)]
    id: u64,
}

impl Token {
    /// Record an acquisition of `tag`, panicking (debug builds) on an
    /// observed order inversion or self-nesting.
    pub fn acquire(tag: &'static str) -> Token {
        Token {
            tag,
            #[cfg(debug_assertions)]
            id: armed::acquire(tag),
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for Token {
    fn drop(&mut self) {
        armed::release(self.id);
    }
}

/// Total order inversions observed so far (always 0 in release builds).
pub fn inversions() -> u64 {
    #[cfg(debug_assertions)]
    {
        armed::inversions()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// The observed lock-order edges, sorted (empty in release builds).
pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(debug_assertions)]
    {
        armed::observed_edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Every tag observed so far, sorted (empty in release builds).
pub fn observed_nodes() -> Vec<&'static str> {
    #[cfg(debug_assertions)]
    {
        armed::observed_nodes()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// The observed graph in the same deterministic Graphviz shape as
/// `dpipe_analyze graph --dot`, for eyeballing against the static one.
pub fn dump_dot() -> String {
    let mut out = String::new();
    out.push_str("digraph observed_lock_order {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    for n in observed_nodes() {
        out.push_str(&format!("  \"{}\";\n", n));
    }
    for (from, to) in observed_edges() {
        out.push_str(&format!("  \"{}\" -> \"{}\";\n", from, to));
    }
    out.push_str("}\n");
    out
}

/// Clear the observed graph and inversion counter. Test-harness
/// helper: the globals are process-wide, so only call this from
/// single-threaded setup code, never mid-workload.
pub fn reset() {
    #[cfg(debug_assertions)]
    armed::reset();
}
