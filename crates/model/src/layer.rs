//! Per-layer cost metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse operator category of a layer.
///
/// The kind does not affect planning directly; it feeds the profiler's cost
/// model (e.g. attention layers have worse small-batch efficiency than convs)
/// and makes timelines and plans human-readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution (or conv-dominated residual block).
    Conv,
    /// Self/cross attention block.
    Attention,
    /// Transformer encoder layer (attention + MLP).
    Transformer,
    /// Fully connected / projection layer.
    Linear,
    /// Token or timestep embedding.
    Embedding,
    /// Normalisation / activation glue.
    Norm,
    /// Resolution change (up/downsample).
    Resample,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv => "conv",
            LayerKind::Attention => "attn",
            LayerKind::Transformer => "xfmr",
            LayerKind::Linear => "linear",
            LayerKind::Embedding => "embed",
            LayerKind::Norm => "norm",
            LayerKind::Resample => "resample",
        };
        f.write_str(s)
    }
}

/// Cost metadata for one layer.
///
/// All quantities are *per sample* except `overhead_us`, which is a
/// batch-independent kernel-launch / framework overhead paid once per layer
/// invocation. The profiler combines these with a device model to produce
/// execution times; see `dpipe_profile`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `"down.3.resblock"`.
    pub name: String,
    /// Operator category.
    pub kind: LayerKind,
    /// Number of trainable parameters (0 for frozen layers is *not* implied;
    /// frozen components simply never produce gradients).
    pub param_count: u64,
    /// Forward FLOPs per sample.
    pub flops_per_sample: f64,
    /// Backward/forward FLOP ratio (typically 2.0).
    pub backward_mult: f64,
    /// Bytes of activation output per sample (what must be sent to the next
    /// stage if a pipeline boundary is placed after this layer).
    pub out_bytes_per_sample: u64,
    /// Fixed per-invocation overhead in microseconds.
    pub overhead_us: f64,
}

impl LayerSpec {
    /// Creates a layer with the given name/kind and cost numbers, using the
    /// default backward multiplier of 2.0.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        param_count: u64,
        flops_per_sample: f64,
        out_bytes_per_sample: u64,
    ) -> Self {
        LayerSpec {
            name: name.into(),
            kind,
            param_count,
            flops_per_sample,
            backward_mult: 2.0,
            out_bytes_per_sample,
            overhead_us: 50.0,
        }
    }

    /// Sets the fixed per-invocation overhead (µs), returning `self` for
    /// chaining.
    pub fn with_overhead_us(mut self, overhead_us: f64) -> Self {
        self.overhead_us = overhead_us;
        self
    }

    /// Sets the backward/forward FLOP ratio, returning `self` for chaining.
    pub fn with_backward_mult(mut self, mult: f64) -> Self {
        self.backward_mult = mult;
        self
    }

    /// Parameter bytes assuming 4-byte (f32) parameters.
    pub fn param_bytes(&self) -> u64 {
        self.param_count * 4
    }

    /// Gradient bytes — equal to parameter bytes for f32 training.
    pub fn grad_bytes(&self) -> u64 {
        self.param_bytes()
    }

    /// Activation output bytes for a whole batch.
    pub fn out_bytes(&self, batch: u64) -> u64 {
        self.out_bytes_per_sample * batch
    }

    /// Returns true if this layer's cost numbers are internally consistent
    /// (non-negative, finite).
    pub fn is_valid(&self) -> bool {
        self.flops_per_sample.is_finite()
            && self.flops_per_sample >= 0.0
            && self.backward_mult.is_finite()
            && self.backward_mult >= 0.0
            && self.overhead_us.is_finite()
            && self.overhead_us >= 0.0
            && !self.name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerSpec {
        LayerSpec::new("block", LayerKind::Conv, 1_000_000, 2.0e9, 1 << 20)
    }

    #[test]
    fn param_and_grad_bytes_are_f32_sized() {
        let l = sample();
        assert_eq!(l.param_bytes(), 4_000_000);
        assert_eq!(l.grad_bytes(), l.param_bytes());
    }

    #[test]
    fn out_bytes_scale_with_batch() {
        let l = sample();
        assert_eq!(l.out_bytes(8), 8 << 20);
        assert_eq!(l.out_bytes(0), 0);
    }

    #[test]
    fn builder_style_setters() {
        let l = sample().with_overhead_us(10.0).with_backward_mult(1.5);
        assert_eq!(l.overhead_us, 10.0);
        assert_eq!(l.backward_mult, 1.5);
    }

    #[test]
    fn validity_checks() {
        assert!(sample().is_valid());
        let mut bad = sample();
        bad.flops_per_sample = f64::NAN;
        assert!(!bad.is_valid());
        let mut bad = sample();
        bad.name.clear();
        assert!(!bad.is_valid());
        let mut bad = sample();
        bad.backward_mult = -1.0;
        assert!(!bad.is_valid());
    }

    #[test]
    fn kind_display() {
        assert_eq!(LayerKind::Attention.to_string(), "attn");
        assert_eq!(LayerKind::Resample.to_string(), "resample");
    }
}
