//! Model validation errors.

use crate::ComponentId;
use std::error::Error;
use std::fmt;

/// Errors produced when validating a [`crate::ModelSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A component references a dependency that does not exist.
    DanglingDependency {
        /// The component holding the bad reference.
        component: ComponentId,
        /// The missing dependency.
        dep: ComponentId,
    },
    /// The component dependency graph contains a cycle.
    CyclicDependency,
    /// The model has no trainable backbone.
    NoBackbone,
    /// A component has no layers.
    EmptyComponent(ComponentId),
    /// A layer has invalid cost metadata (NaN / negative values).
    InvalidLayer {
        /// Owning component.
        component: ComponentId,
        /// Layer index within the component.
        layer: usize,
    },
    /// Self-conditioning probability outside `[0, 1]`.
    InvalidSelfCondProbability(f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DanglingDependency { component, dep } => {
                write!(
                    f,
                    "component {component} depends on missing component {dep}"
                )
            }
            ModelError::CyclicDependency => f.write_str("component dependency graph has a cycle"),
            ModelError::NoBackbone => f.write_str("model has no trainable backbone"),
            ModelError::EmptyComponent(c) => write!(f, "component {c} has no layers"),
            ModelError::InvalidLayer { component, layer } => {
                write!(
                    f,
                    "layer {layer} of component {component} has invalid cost metadata"
                )
            }
            ModelError::InvalidSelfCondProbability(p) => {
                write!(f, "self-conditioning probability {p} outside [0, 1]")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ModelError::DanglingDependency {
            component: ComponentId(1),
            dep: ComponentId(9),
        };
        assert_eq!(
            e.to_string(),
            "component c1 depends on missing component c9"
        );
        assert!(ModelError::NoBackbone.to_string().contains("backbone"));
        assert!(ModelError::InvalidSelfCondProbability(1.5)
            .to_string()
            .contains("1.5"));
    }
}
