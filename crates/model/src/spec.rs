//! Whole-model specification and validation.

use crate::{Component, ComponentId, LayerKind, ModelError, Role, StableHasher};
use serde::{Deserialize, Serialize};

/// Self-conditioning configuration (Chen et al., 2022).
///
/// When enabled, each training step runs an *extra* forward pass of the
/// backbone with probability `probability`, whose output is fed back as a
/// conditional input (the `Cf` edge in Fig. 10 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfConditioning {
    /// Probability that a given iteration performs the extra forward pass.
    /// The paper's reference value is 0.5.
    pub probability: f64,
}

impl SelfConditioning {
    /// Self-conditioning always on (probability 1.0) — used when a worst-case
    /// schedule bound is wanted.
    pub fn always() -> Self {
        SelfConditioning { probability: 1.0 }
    }
}

impl Default for SelfConditioning {
    fn default() -> Self {
        SelfConditioning { probability: 0.5 }
    }
}

/// A complete diffusion model: components, roles, dependencies and training
/// options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (e.g. `"stable-diffusion-v2.1"`).
    pub name: String,
    /// All components; [`ComponentId`]s index into this vector.
    pub components: Vec<Component>,
    /// Self-conditioning configuration, if the model trains with it.
    pub self_conditioning: Option<SelfConditioning>,
    /// Input resolution(s), informational only.
    pub input_shapes: Vec<(u32, u32)>,
}

impl ModelSpec {
    /// Creates a model spec; prefer [`ModelSpecBuilder`].
    pub fn new(name: impl Into<String>, components: Vec<Component>) -> Self {
        ModelSpec {
            name: name.into(),
            components,
            self_conditioning: None,
            input_shapes: Vec::new(),
        }
    }

    /// Component by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// Iterator over `(ComponentId, &Component)`.
    pub fn components_enumerated(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i), c))
    }

    /// Trainable backbone components, in declaration order.
    pub fn backbones(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components_enumerated()
            .filter(|(_, c)| c.role == Role::Backbone)
    }

    /// Frozen (non-trainable) components, in declaration order.
    pub fn frozen_components(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components_enumerated()
            .filter(|(_, c)| c.role == Role::Frozen)
    }

    /// Ids of the frozen components in a valid topological order of the
    /// dependency DAG restricted to frozen components.
    ///
    /// Bubble filling schedules frozen components in this order (§5).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicDependency`] if the frozen subgraph is
    /// cyclic.
    pub fn frozen_topological_order(&self) -> Result<Vec<ComponentId>, ModelError> {
        let frozen: Vec<ComponentId> = self.frozen_components().map(|(id, _)| id).collect();
        let in_frozen = |id: ComponentId| frozen.contains(&id);
        // Kahn's algorithm over the frozen-only subgraph.
        let mut indegree: Vec<usize> = frozen
            .iter()
            .map(|&id| {
                self.component(id)
                    .deps
                    .iter()
                    .filter(|&&d| in_frozen(d))
                    .count()
            })
            .collect();
        let mut order = Vec::with_capacity(frozen.len());
        let mut queue: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        while let Some(i) = queue.pop() {
            order.push(frozen[i]);
            for (j, &cand) in frozen.iter().enumerate() {
                if self.component(cand).deps.contains(&frozen[i]) {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        queue.push(j);
                    }
                }
            }
        }
        if order.len() != frozen.len() {
            return Err(ModelError::CyclicDependency);
        }
        order.sort_by_key(|id| {
            // Stable order: topological rank first (already guaranteed by
            // construction), break ties by declaration order for determinism.
            id.index()
        });
        // Re-run a simple topo sort preserving declaration order among ready
        // components, for deterministic output.
        let mut result = Vec::with_capacity(frozen.len());
        let mut done = vec![false; self.components.len()];
        while result.len() < frozen.len() {
            let mut progressed = false;
            for &id in &frozen {
                if done[id.index()] {
                    continue;
                }
                let ready = self
                    .component(id)
                    .deps
                    .iter()
                    .filter(|&&d| in_frozen(d))
                    .all(|&d| done[d.index()]);
                if ready {
                    done[id.index()] = true;
                    result.push(id);
                    progressed = true;
                }
            }
            if !progressed {
                return Err(ModelError::CyclicDependency);
            }
        }
        Ok(result)
    }

    /// Stable 64-bit content fingerprint of the whole spec.
    ///
    /// Two specs that are structurally identical (same names, roles,
    /// dependencies and per-layer cost numbers) fingerprint identically
    /// across processes and platforms; any planning-relevant edit changes
    /// the digest. `dpipe_serve` keys its plan cache on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dpipe_model::ModelSpec");
        h.write_str(&self.name);
        h.write_usize(self.components.len());
        for c in &self.components {
            h.write_str(&c.name);
            h.write_bytes(&[role_tag(c.role)]);
            h.write_usize(c.deps.len());
            for d in &c.deps {
                h.write_usize(d.index());
            }
            h.write_usize(c.layers.len());
            for l in &c.layers {
                h.write_str(&l.name);
                h.write_bytes(&[layer_kind_tag(l.kind)]);
                h.write_u64(l.param_count);
                h.write_f64(l.flops_per_sample);
                h.write_f64(l.backward_mult);
                h.write_u64(l.out_bytes_per_sample);
                h.write_f64(l.overhead_us);
            }
        }
        match self.self_conditioning {
            Some(sc) => {
                h.write_bool(true);
                h.write_f64(sc.probability);
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.input_shapes.len());
        for &(height, width) in &self.input_shapes {
            h.write_u32(height);
            h.write_u32(width);
        }
        h.finish()
    }

    /// Total trainable parameter count (all backbones).
    pub fn trainable_param_count(&self) -> u64 {
        self.backbones().map(|(_, c)| c.param_count()).sum()
    }

    /// Total frozen parameter count.
    pub fn frozen_param_count(&self) -> u64 {
        self.frozen_components().map(|(_, c)| c.param_count()).sum()
    }

    /// Total number of frozen layers across all frozen components
    /// (the x-axis of Fig. 5 in the paper).
    pub fn num_frozen_layers(&self) -> usize {
        self.frozen_components().map(|(_, c)| c.num_layers()).sum()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling or cyclic dependencies,
    /// missing backbone, empty components, invalid layer metadata, or an
    /// out-of-range self-conditioning probability.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.backbones().next().is_none() {
            return Err(ModelError::NoBackbone);
        }
        for (id, c) in self.components_enumerated() {
            if c.layers.is_empty() {
                return Err(ModelError::EmptyComponent(id));
            }
            for (li, l) in c.layers.iter().enumerate() {
                if !l.is_valid() {
                    return Err(ModelError::InvalidLayer {
                        component: id,
                        layer: li,
                    });
                }
            }
            for &d in &c.deps {
                if d.index() >= self.components.len() {
                    return Err(ModelError::DanglingDependency {
                        component: id,
                        dep: d,
                    });
                }
            }
        }
        // Cycle check over the full component graph.
        self.full_topological_order()?;
        if let Some(sc) = self.self_conditioning {
            if !(0.0..=1.0).contains(&sc.probability) || !sc.probability.is_finite() {
                return Err(ModelError::InvalidSelfCondProbability(sc.probability));
            }
        }
        Ok(())
    }

    /// Topological order over *all* components.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicDependency`] on cycles.
    pub fn full_topological_order(&self) -> Result<Vec<ComponentId>, ModelError> {
        let n = self.components.len();
        let mut done = vec![false; n];
        let mut result = Vec::with_capacity(n);
        while result.len() < n {
            let mut progressed = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let ready = self.components[i]
                    .deps
                    .iter()
                    .all(|d| d.index() < n && done[d.index()]);
                if ready {
                    done[i] = true;
                    result.push(ComponentId(i));
                    progressed = true;
                }
            }
            if !progressed {
                return Err(ModelError::CyclicDependency);
            }
        }
        Ok(result)
    }
}

/// Stable one-byte tag for [`Role`] (never reorder: fingerprints depend on it).
fn role_tag(role: Role) -> u8 {
    match role {
        Role::Backbone => 0,
        Role::Frozen => 1,
    }
}

/// Stable one-byte tag for [`LayerKind`] (never reorder: fingerprints depend
/// on it; append new kinds at the end).
fn layer_kind_tag(kind: LayerKind) -> u8 {
    match kind {
        LayerKind::Conv => 0,
        LayerKind::Attention => 1,
        LayerKind::Transformer => 2,
        LayerKind::Linear => 3,
        LayerKind::Embedding => 4,
        LayerKind::Norm => 5,
        LayerKind::Resample => 6,
    }
}

/// Builder for [`ModelSpec`].
///
/// # Example
///
/// ```
/// use dpipe_model::{ModelSpecBuilder, ComponentBuilder, LayerSpec, LayerKind, Role};
///
/// let model = ModelSpecBuilder::new("demo")
///     .component(
///         ComponentBuilder::new("encoder", Role::Frozen)
///             .layer(LayerSpec::new("e0", LayerKind::Conv, 10, 1e6, 64))
///             .build(),
///     )
///     .component(
///         ComponentBuilder::new("unet", Role::Backbone)
///             .layer(LayerSpec::new("b0", LayerKind::Conv, 10, 1e6, 64))
///             .build(),
///     )
///     .build();
/// assert!(model.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ModelSpecBuilder {
    spec: ModelSpec,
}

impl ModelSpecBuilder {
    /// Starts building a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelSpecBuilder {
            spec: ModelSpec::new(name, Vec::new()),
        }
    }

    /// Appends a component, returning its id through `Vec` ordering
    /// (first added component is `ComponentId(0)` and so on).
    pub fn component(mut self, component: Component) -> Self {
        self.spec.components.push(component);
        self
    }

    /// Appends a component and reports its id.
    pub fn push_component(&mut self, component: Component) -> ComponentId {
        self.spec.components.push(component);
        ComponentId(self.spec.components.len() - 1)
    }

    /// Enables self-conditioning.
    pub fn self_conditioning(mut self, sc: SelfConditioning) -> Self {
        self.spec.self_conditioning = Some(sc);
        self
    }

    /// Records an input shape (informational).
    pub fn input_shape(mut self, h: u32, w: u32) -> Self {
        self.spec.input_shapes.push((h, w));
        self
    }

    /// Finishes building.
    pub fn build(self) -> ModelSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentBuilder, LayerKind, LayerSpec};

    fn layer(name: &str) -> LayerSpec {
        LayerSpec::new(name, LayerKind::Conv, 10, 1e6, 64)
    }

    fn two_encoder_model() -> ModelSpec {
        let mut b = ModelSpecBuilder::new("m");
        let text = b.push_component(
            ComponentBuilder::new("text", Role::Frozen)
                .layer(layer("t0"))
                .build(),
        );
        let _vae = b.push_component(
            ComponentBuilder::new("vae", Role::Frozen)
                .layer(layer("v0"))
                .depends_on(text)
                .build(),
        );
        b.push_component(
            ComponentBuilder::new("unet", Role::Backbone)
                .layer(layer("u0"))
                .build(),
        );
        b.build()
    }

    #[test]
    fn validate_accepts_well_formed_model() {
        assert!(two_encoder_model().validate().is_ok());
    }

    #[test]
    fn validate_rejects_no_backbone() {
        let m = ModelSpecBuilder::new("m")
            .component(
                ComponentBuilder::new("e", Role::Frozen)
                    .layer(layer("x"))
                    .build(),
            )
            .build();
        assert_eq!(m.validate(), Err(ModelError::NoBackbone));
    }

    #[test]
    fn validate_rejects_empty_component() {
        let m = ModelSpecBuilder::new("m")
            .component(ComponentBuilder::new("b", Role::Backbone).build())
            .build();
        assert_eq!(
            m.validate(),
            Err(ModelError::EmptyComponent(ComponentId(0)))
        );
    }

    #[test]
    fn validate_rejects_dangling_dep() {
        let m = ModelSpecBuilder::new("m")
            .component(
                ComponentBuilder::new("b", Role::Backbone)
                    .layer(layer("x"))
                    .depends_on(ComponentId(5))
                    .build(),
            )
            .build();
        assert!(matches!(
            m.validate(),
            Err(ModelError::DanglingDependency { .. })
        ));
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut m = two_encoder_model();
        // text (c0) depends on vae (c1) while vae already depends on text.
        m.components[0].deps.push(ComponentId(1));
        assert_eq!(m.validate(), Err(ModelError::CyclicDependency));
    }

    #[test]
    fn validate_rejects_bad_self_cond_probability() {
        let mut m = two_encoder_model();
        m.self_conditioning = Some(SelfConditioning { probability: 1.5 });
        assert_eq!(
            m.validate(),
            Err(ModelError::InvalidSelfCondProbability(1.5))
        );
    }

    #[test]
    fn frozen_topo_order_respects_deps() {
        let m = two_encoder_model();
        let order = m.frozen_topological_order().unwrap();
        assert_eq!(order, vec![ComponentId(0), ComponentId(1)]);
    }

    #[test]
    fn counts() {
        let m = two_encoder_model();
        assert_eq!(m.trainable_param_count(), 10);
        assert_eq!(m.frozen_param_count(), 20);
        assert_eq!(m.num_frozen_layers(), 2);
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let m = two_encoder_model();
        assert_eq!(m.fingerprint(), m.fingerprint());
        assert_eq!(m.fingerprint(), m.clone().fingerprint());

        // Zoo models are pairwise distinct.
        let zoo_prints = [
            crate::zoo::stable_diffusion_v2_1().fingerprint(),
            crate::zoo::controlnet_v1_0().fingerprint(),
            crate::zoo::cdm_lsun().fingerprint(),
            crate::zoo::dit_xl_2().fingerprint(),
        ];
        for (i, a) in zoo_prints.iter().enumerate() {
            for b in zoo_prints.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }

        // Any planning-relevant edit changes the digest.
        let mut renamed = m.clone();
        renamed.name.push('!');
        assert_ne!(renamed.fingerprint(), m.fingerprint());
        let mut edited = m.clone();
        edited.components[0].layers[0].flops_per_sample *= 2.0;
        assert_ne!(edited.fingerprint(), m.fingerprint());
        let mut sc = m.clone();
        sc.self_conditioning = Some(SelfConditioning::default());
        assert_ne!(sc.fingerprint(), m.fingerprint());
    }

    #[test]
    fn self_conditioning_defaults_to_half() {
        assert_eq!(SelfConditioning::default().probability, 0.5);
        assert_eq!(SelfConditioning::always().probability, 1.0);
    }
}
