//! Structural descriptions of diffusion models for pipeline planning.
//!
//! DiffusionPipe's algorithms never look at weights: they consume the *shape*
//! of a model — which components exist, which are trainable (backbones) and
//! which are frozen (encoders), how components depend on each other, and the
//! per-layer cost metadata (FLOPs, parameter bytes, activation bytes) that the
//! profiler turns into execution times.
//!
//! The [`zoo`] module provides descriptions of the four models evaluated in
//! the paper (Stable Diffusion v2.1, ControlNet v1.0, CDM-LSUN and
//! CDM-ImageNet) plus small synthetic models used by tests and the execution
//! engine.
//!
//! # Example
//!
//! ```
//! use dpipe_model::zoo;
//!
//! let model = zoo::stable_diffusion_v2_1();
//! assert_eq!(model.backbones().count(), 1);
//! assert!(model.frozen_components().count() >= 2);
//! model.validate().unwrap();
//! ```

mod component;
mod error;
mod ids;
mod layer;
mod spec;
pub mod zoo;

pub use component::{Component, ComponentBuilder, Role};
pub use dpipe_stablehash::StableHasher;
pub use error::ModelError;
pub use ids::{ComponentId, LayerId};
pub use layer::{LayerKind, LayerSpec};
pub use spec::{ModelSpec, ModelSpecBuilder, SelfConditioning};
