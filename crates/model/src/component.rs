//! Model components: trainable backbones and frozen encoders.

use crate::{ComponentId, LayerId, LayerSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a component is pipelined-and-trained or frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Trainable backbone (e.g. U-Net): partitioned into pipeline stages,
    /// runs forward and backward, participates in gradient synchronisation.
    Backbone,
    /// Frozen component (e.g. text/image encoder): forward only, executed in
    /// pipeline bubbles (or ahead of the pipeline when bubbles run out).
    Frozen,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Backbone => f.write_str("backbone"),
            Role::Frozen => f.write_str("frozen"),
        }
    }
}

/// A linearly ordered group of layers with a single role.
///
/// Layers within a component are linearly dependent (layer `i+1` consumes
/// layer `i`'s output); components themselves form a DAG via [`Component::deps`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Human-readable name, e.g. `"unet"` or `"vae_encoder"`.
    pub name: String,
    /// Trainable or frozen.
    pub role: Role,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Components whose *final* output this component consumes.
    pub deps: Vec<ComponentId>,
}

impl Component {
    /// Creates a component; prefer [`ComponentBuilder`] for non-trivial ones.
    pub fn new(name: impl Into<String>, role: Role, layers: Vec<LayerSpec>) -> Self {
        Component {
            name: name.into(),
            role,
            layers,
            deps: Vec::new(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// True for [`Role::Backbone`].
    pub fn is_trainable(&self) -> bool {
        self.role == Role::Backbone
    }

    /// Total trainable parameter count across all layers.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count).sum()
    }

    /// Total parameter bytes (f32).
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes()).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn flops_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_per_sample).sum()
    }

    /// Layer spec by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer(&self, id: LayerId) -> &LayerSpec {
        &self.layers[id.index()]
    }

    /// Iterator over `(LayerId, &LayerSpec)` pairs in execution order.
    pub fn layers_enumerated(&self) -> impl Iterator<Item = (LayerId, &LayerSpec)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i), l))
    }

    /// Activation bytes produced by the component's last layer per sample
    /// (what downstream components consume).
    pub fn output_bytes_per_sample(&self) -> u64 {
        self.layers
            .last()
            .map(|l| l.out_bytes_per_sample)
            .unwrap_or(0)
    }
}

/// Builder for [`Component`].
///
/// # Example
///
/// ```
/// use dpipe_model::{ComponentBuilder, LayerKind, LayerSpec, Role};
///
/// let enc = ComponentBuilder::new("text_encoder", Role::Frozen)
///     .layer(LayerSpec::new("embed", LayerKind::Embedding, 1_000, 1e6, 1024))
///     .layer(LayerSpec::new("block0", LayerKind::Transformer, 10_000, 1e8, 2048))
///     .build();
/// assert_eq!(enc.num_layers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ComponentBuilder {
    component: Component,
}

impl ComponentBuilder {
    /// Starts building a component with the given name and role.
    pub fn new(name: impl Into<String>, role: Role) -> Self {
        ComponentBuilder {
            component: Component::new(name, role, Vec::new()),
        }
    }

    /// Appends a layer.
    pub fn layer(mut self, layer: LayerSpec) -> Self {
        self.component.layers.push(layer);
        self
    }

    /// Appends many layers.
    pub fn layers(mut self, layers: impl IntoIterator<Item = LayerSpec>) -> Self {
        self.component.layers.extend(layers);
        self
    }

    /// Declares a dependency on another component's final output.
    pub fn depends_on(mut self, dep: ComponentId) -> Self {
        self.component.deps.push(dep);
        self
    }

    /// Finishes building.
    pub fn build(self) -> Component {
        self.component
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn comp() -> Component {
        ComponentBuilder::new("enc", Role::Frozen)
            .layer(LayerSpec::new("a", LayerKind::Conv, 100, 1e6, 64))
            .layer(LayerSpec::new("b", LayerKind::Conv, 200, 2e6, 128))
            .build()
    }

    #[test]
    fn aggregates_sum_over_layers() {
        let c = comp();
        assert_eq!(c.param_count(), 300);
        assert_eq!(c.param_bytes(), 1200);
        assert_eq!(c.flops_per_sample(), 3e6);
        assert_eq!(c.output_bytes_per_sample(), 128);
    }

    #[test]
    fn role_predicates() {
        assert!(!comp().is_trainable());
        let b = Component::new("bb", Role::Backbone, vec![]);
        assert!(b.is_trainable());
        assert_eq!(b.output_bytes_per_sample(), 0);
    }

    #[test]
    fn builder_records_deps() {
        let c = ComponentBuilder::new("x", Role::Frozen)
            .depends_on(ComponentId(0))
            .depends_on(ComponentId(2))
            .build();
        assert_eq!(c.deps, vec![ComponentId(0), ComponentId(2)]);
    }

    #[test]
    fn layer_lookup_and_enumeration() {
        let c = comp();
        assert_eq!(c.layer(LayerId(1)).name, "b");
        let ids: Vec<_> = c.layers_enumerated().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Backbone.to_string(), "backbone");
        assert_eq!(Role::Frozen.to_string(), "frozen");
    }
}
