//! Typed identifiers for components and layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a component within a [`crate::ModelSpec`].
///
/// Components are stored in a `Vec`; a `ComponentId` is the index into that
/// vector. The newtype prevents accidentally mixing component indices with
/// layer indices or device ranks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ComponentId(pub usize);

/// Index of a layer within a [`crate::Component`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LayerId(pub usize);

impl ComponentId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl LayerId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<usize> for ComponentId {
    fn from(i: usize) -> Self {
        ComponentId(i)
    }
}

impl From<usize> for LayerId {
    fn from(i: usize) -> Self {
        LayerId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(ComponentId(3).to_string(), "c3");
        assert_eq!(LayerId(11).to_string(), "l11");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ComponentId(1) < ComponentId(2));
        assert!(LayerId(0) < LayerId(1));
    }

    #[test]
    fn conversions_round_trip() {
        let c: ComponentId = 7usize.into();
        assert_eq!(c.index(), 7);
        let l: LayerId = 9usize.into();
        assert_eq!(l.index(), 9);
    }
}
