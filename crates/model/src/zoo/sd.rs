//! Stable Diffusion v2.1 structural description.

use super::{layer_ms64, spread, validated};
use crate::{ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role, SelfConditioning};

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// OpenCLIP-H-style frozen text encoder: token embedding, 20 transformer
/// blocks and a final projection — 22 layers, all fast (sub-millisecond at
/// batch 64), matching indices 0–21 of Fig. 5a.
pub(crate) fn clip_text_encoder() -> ComponentBuilder {
    let mut b = ComponentBuilder::new("text_encoder", Role::Frozen).layer(layer_ms64(
        "tok_embed",
        LayerKind::Embedding,
        50_000_000,
        0.15,
        310 * KB,
    ));
    for (i, p) in spread(300_000_000, 20).into_iter().enumerate() {
        b = b.layer(layer_ms64(
            format!("text.block{i}"),
            LayerKind::Transformer,
            p,
            0.45,
            310 * KB,
        ));
    }
    b.layer(layer_ms64(
        "text_proj",
        LayerKind::Linear,
        1_000_000,
        0.12,
        4 * KB,
    ))
}

/// Frozen VAE encoder at 512×512: 20 layers with the heavy-tailed time
/// distribution of Fig. 5a — three extra-long layers (the full-resolution
/// residual blocks) followed by a body of moderate 2–30 ms layers.
pub(crate) fn vae_encoder(scale: f64) -> ComponentBuilder {
    // Forward milliseconds at batch 64 for each encoder layer, heaviest
    // first (the 512x512-resolution conv blocks dominate).
    const MS64: [f64; 20] = [
        400.0, 190.0, 95.0, 28.0, 25.0, 22.0, 20.0, 18.0, 15.0, 12.0, 10.0, 9.0, 8.0, 7.0, 6.0,
        5.0, 4.0, 3.0, 2.5, 2.0,
    ];
    // Output bytes per sample shrink as resolution drops; the final layer
    // emits the 64x64x4 latent.
    let mut b = ComponentBuilder::new("vae_encoder", Role::Frozen);
    let params = spread(34_000_000, 20);
    for (i, (&ms, p)) in MS64.iter().zip(params).enumerate() {
        let out = match i {
            0..=2 => 128 * MB,
            3..=8 => 32 * MB,
            9..=14 => 8 * MB,
            15..=18 => 2 * MB,
            _ => 64 * KB,
        };
        b = b.layer(layer_ms64(
            format!("vae.enc{i}"),
            LayerKind::Conv,
            p,
            ms * scale,
            out,
        ));
    }
    b
}

/// U-Net backbone block layout shared by SD-like models: `(name, ms64,
/// params, out_bytes)` per block.
pub(crate) fn unet_blocks(
    prefix: &str,
    ms64: &[f64],
    params: &[u64],
    out_bytes: &[u64],
) -> Vec<crate::LayerSpec> {
    assert_eq!(ms64.len(), params.len());
    assert_eq!(ms64.len(), out_bytes.len());
    ms64.iter()
        .zip(params)
        .zip(out_bytes)
        .enumerate()
        .map(|(i, ((&ms, &p), &o))| {
            layer_ms64(format!("{prefix}.block{i}"), LayerKind::Conv, p, ms, o)
                .with_overhead_us(680.0)
        })
        .collect()
}

/// Stable Diffusion v2.1: frozen CLIP text encoder + frozen VAE encoder +
/// one trainable U-Net backbone (~0.89 B parameters), trained with
/// self-conditioning (Table 5 of the paper).
pub fn stable_diffusion_v2_1() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("stable-diffusion-v2.1");
    let text = b.push_component(clip_text_encoder().build());
    let vae = b.push_component(vae_encoder(1.0).build());

    // 28 U-Net blocks: 12 down, 2 mid, 14 up. Per-level compute is roughly
    // balanced (standard U-Net channel doubling), params concentrate at low
    // resolution.
    let ms64: Vec<f64> = [
        vec![20.0; 3],
        vec![22.0; 3],
        vec![24.0; 3],
        vec![26.0; 3], // down
        vec![28.0; 2], // mid
        vec![26.0; 4],
        vec![24.0; 4],
        vec![22.0; 3],
        vec![20.0; 3], // up
    ]
    .concat();
    let params: Vec<u64> = [
        vec![8_000_000; 3],
        vec![20_000_000; 3],
        vec![40_000_000; 3],
        vec![50_000_000; 3],
        vec![45_000_000; 2],
        vec![50_000_000; 4],
        vec![40_000_000; 4],
        vec![20_000_000; 3],
        vec![8_000_000; 3],
    ]
    .concat();
    let out: Vec<u64> = [
        vec![5 * MB + 256 * KB; 3],
        vec![2 * MB + 640 * KB; 3],
        vec![MB + 320 * KB; 3],
        vec![344 * KB; 3],
        vec![344 * KB; 2],
        vec![344 * KB; 4],
        vec![MB + 320 * KB; 4],
        vec![2 * MB + 640 * KB; 3],
        vec![5 * MB + 256 * KB; 3],
    ]
    .concat();
    let unet = ComponentBuilder::new("unet", Role::Backbone)
        .layers(unet_blocks("unet", &ms64, &params, &out))
        .depends_on(text)
        .depends_on(vae)
        .build();
    b.push_component(unet);

    validated(
        b.self_conditioning(SelfConditioning::default())
            .input_shape(512, 512)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unet_block_count_and_params() {
        let m = stable_diffusion_v2_1();
        let (_, unet) = m.backbones().next().unwrap();
        assert_eq!(unet.num_layers(), 28);
        let p = unet.param_count();
        assert!((850_000_000..950_000_000).contains(&p), "{p}");
    }

    #[test]
    fn vae_has_extra_long_layers() {
        let m = stable_diffusion_v2_1();
        let vae = m
            .frozen_components()
            .find(|(_, c)| c.name == "vae_encoder")
            .unwrap()
            .1;
        // The heaviest frozen layer is ~25x the median one — the Fig. 5
        // heavy tail that motivates partial-batch layers.
        let mut flops: Vec<f64> = vae.layers.iter().map(|l| l.flops_per_sample).collect();
        flops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = flops[flops.len() / 2];
        let max = *flops.last().unwrap();
        assert!(max / median > 20.0, "max/median = {}", max / median);
    }

    #[test]
    fn text_encoder_layers_are_fast() {
        let m = stable_diffusion_v2_1();
        let text = m
            .frozen_components()
            .find(|(_, c)| c.name == "text_encoder")
            .unwrap()
            .1;
        assert_eq!(text.num_layers(), 22);
        for l in &text.layers {
            // < 1 ms at batch 64 under the default device.
            assert!(l.flops_per_sample * 64.0 / 1e14 < 1e-3);
        }
    }

    #[test]
    fn unet_depends_on_both_encoders() {
        let m = stable_diffusion_v2_1();
        let (_, unet) = m.backbones().next().unwrap();
        assert_eq!(unet.deps.len(), 2);
    }
}
