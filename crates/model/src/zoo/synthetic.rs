//! Synthetic models for unit tests, property tests and the execution engine.

use super::layer_ms64;
use crate::{
    Component, ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role, SelfConditioning,
};

const KB: u64 = 1 << 10;

/// A synthetic backbone with `layers` equally sized blocks.
///
/// Each block takes `ms64_per_layer` milliseconds at batch 64 on the default
/// device and holds `params_per_layer` parameters.
pub fn synthetic_backbone(
    name: &str,
    layers: usize,
    params_per_layer: u64,
    ms64_per_layer: f64,
) -> Component {
    let mut b = ComponentBuilder::new(name, Role::Backbone);
    for i in 0..layers {
        b = b.layer(layer_ms64(
            format!("{name}.block{i}"),
            LayerKind::Conv,
            params_per_layer,
            ms64_per_layer,
            256 * KB,
        ));
    }
    b.build()
}

/// A synthetic single-backbone model with one frozen encoder.
///
/// `frozen_ms64` lists the frozen layer forward times (at batch 64); the
/// backbone has `backbone_layers` uniform blocks of `backbone_ms64_per_layer`
/// milliseconds each.
pub fn synthetic_model(
    backbone_layers: usize,
    backbone_ms64_per_layer: f64,
    frozen_ms64: &[f64],
    self_cond: bool,
) -> ModelSpec {
    let mut b = ModelSpecBuilder::new("synthetic");
    let mut enc = ComponentBuilder::new("encoder", Role::Frozen);
    for (i, &ms) in frozen_ms64.iter().enumerate() {
        enc = enc.layer(layer_ms64(
            format!("enc.layer{i}"),
            LayerKind::Conv,
            1_000_000,
            ms,
            64 * KB,
        ));
    }
    let enc = b.push_component(enc.build());
    let mut bb = synthetic_backbone("bb", backbone_layers, 10_000_000, backbone_ms64_per_layer);
    bb.deps.push(enc);
    b.push_component(bb);
    let b = if self_cond {
        b.self_conditioning(SelfConditioning::default())
    } else {
        b
    };
    b.input_shape(64, 64).build()
}

/// The smallest interesting model: 4 backbone blocks, 3 frozen layers.
/// Used across the workspace's unit tests.
pub fn tiny_model() -> ModelSpec {
    super::validated(synthetic_model(4, 10.0, &[4.0, 2.0, 1.0], false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_model_shape() {
        let m = synthetic_model(6, 5.0, &[1.0, 2.0], true);
        assert_eq!(m.backbones().count(), 1);
        assert_eq!(m.num_frozen_layers(), 2);
        assert!(m.self_conditioning.is_some());
        m.validate().unwrap();
    }

    #[test]
    fn tiny_model_is_valid() {
        tiny_model().validate().unwrap();
        assert_eq!(tiny_model().backbones().next().unwrap().1.num_layers(), 4);
    }

    #[test]
    fn synthetic_backbone_uniform() {
        let bb = synthetic_backbone("x", 5, 100, 2.0);
        assert_eq!(bb.num_layers(), 5);
        assert_eq!(bb.param_count(), 500);
    }
}
