//! ControlNet v1.0 structural description.

use super::sd::{clip_text_encoder, unet_blocks, vae_encoder};
use super::{layer_ms64, spread, validated};
use crate::{ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role, SelfConditioning};

const MB: u64 = 1 << 20;

/// ControlNet v1.0: the trainable part is the control branch (a copy of the
/// U-Net encoder with zero-convs, plus the decoder it feeds); the frozen part
/// is much larger than Stable Diffusion's — text encoder, VAE encoder, the
/// condition ("hint") encoder, and the locked U-Net encoder+mid blocks.
/// This is why its non-trainable/trainable ratio reaches ~89% (Table 1).
pub fn controlnet_v1_0() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("controlnet-v1.0");
    let text = b.push_component(clip_text_encoder().build());
    let vae = b.push_component(vae_encoder(1.0).build());

    // Condition (canny-edge / pose) hint encoder: 8 small convolutions
    // operating on the 512x512 hint image.
    let hint_ms = [14.0, 12.0, 10.0, 8.0, 6.0, 4.0, 3.0, 3.0];
    let mut hint = ComponentBuilder::new("hint_encoder", Role::Frozen);
    for (i, (&ms, p)) in hint_ms.iter().zip(spread(12_000_000, 8)).enumerate() {
        hint = hint.layer(layer_ms64(
            format!("hint.conv{i}"),
            LayerKind::Conv,
            p,
            ms,
            4 * MB,
        ));
    }
    let hint = b.push_component(hint.build());

    // Locked (frozen) Stable Diffusion U-Net encoder + mid: 14 blocks.
    let locked_ms = [
        30.0, 30.0, 30.0, 30.0, 28.0, 28.0, 28.0, 28.0, 25.0, 25.0, 25.0, 22.0, 22.0, 22.0,
    ];
    let mut locked = ComponentBuilder::new("locked_unet_encoder", Role::Frozen);
    for (i, (&ms, p)) in locked_ms.iter().zip(spread(430_000_000, 14)).enumerate() {
        locked = locked.layer(layer_ms64(
            format!("locked.block{i}"),
            LayerKind::Conv,
            p,
            ms,
            2 * MB,
        ));
    }
    let locked = b.push_component(
        // The locked encoder consumes the VAE latent and the hint features.
        {
            let mut c = locked.build();
            c.deps = vec![vae, hint, text];
            c
        },
    );

    // Trainable control branch + the decoder it drives: 26 blocks, ~0.76 B
    // synchronised parameters (the branch copy plus the decoder half whose
    // gradients flow during ControlNet training).
    let ms64: Vec<f64> = [vec![20.0; 8], vec![18.0; 10], vec![17.0; 8]].concat();
    let params: Vec<u64> = spread(760_000_000, 26);
    let out: Vec<u64> = [vec![2 * MB; 8], vec![MB + 512 * 1024; 10], vec![5 * MB; 8]].concat();
    let branch = ComponentBuilder::new("control_branch", Role::Backbone)
        .layers(unet_blocks("ctrl", &ms64, &params, &out))
        .depends_on(locked)
        .depends_on(text)
        .build();
    b.push_component(branch);

    validated(
        b.self_conditioning(SelfConditioning::default())
            .input_shape(512, 512)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_frozen_components() {
        let m = controlnet_v1_0();
        assert_eq!(m.frozen_components().count(), 4);
        assert_eq!(m.backbones().count(), 1);
    }

    #[test]
    fn frozen_part_is_heavier_than_sd() {
        let cn = controlnet_v1_0();
        let sd = super::super::stable_diffusion_v2_1();
        let cn_frozen: f64 = cn
            .frozen_components()
            .map(|(_, c)| c.flops_per_sample())
            .sum();
        let sd_frozen: f64 = sd
            .frozen_components()
            .map(|(_, c)| c.flops_per_sample())
            .sum();
        assert!(cn_frozen > 1.3 * sd_frozen);
    }

    #[test]
    fn frozen_topo_order_puts_locked_unet_last() {
        let m = controlnet_v1_0();
        let order = m.frozen_topological_order().unwrap();
        let locked = m
            .frozen_components()
            .find(|(_, c)| c.name == "locked_unet_encoder")
            .unwrap()
            .0;
        assert_eq!(*order.last().unwrap(), locked);
    }
}
