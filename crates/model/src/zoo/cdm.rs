//! Cascaded diffusion models (Ho et al., 2022).

use super::sd::unet_blocks;
use super::{layer_ms64, spread, validated};
use crate::{ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role};

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

fn cdm_backbone(
    name: &str,
    blocks: usize,
    total_params: u64,
    total_ms64: f64,
    out_bytes: u64,
) -> crate::Component {
    let ms64: Vec<f64> = {
        // Slight mid-heavy profile so partitioning is non-trivial.
        (0..blocks)
            .map(|i| {
                let center = (blocks as f64 - 1.0) / 2.0;

                1.0 + 0.3 * (1.0 - ((i as f64 - center).abs() / center).min(1.0))
            })
            .collect()
    };
    let wsum: f64 = ms64.iter().sum();
    let ms64: Vec<f64> = ms64.iter().map(|w| w / wsum * total_ms64).collect();
    let params = spread(total_params, blocks);
    let out = vec![out_bytes; blocks];
    ComponentBuilder::new(name, Role::Backbone)
        .layers(unet_blocks(name, &ms64, &params, &out))
        .build()
}

/// CDM-LSUN: a 64×64 base backbone cascaded with a 64→128 super-resolution
/// backbone. Both are class-conditional, so the non-trainable part is tiny —
/// a small low-resolution conditioning stack — which is why bubble filling
/// brings little benefit on CDMs (Fig. 13c discussion).
pub fn cdm_lsun() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("cdm-lsun");
    // Tiny frozen conditioning stack (downsampling + class embedding).
    let cond = ComponentBuilder::new("lowres_cond", Role::Frozen)
        .layer(layer_ms64("cond.down", LayerKind::Resample, 0, 2.0, MB))
        .layer(layer_ms64(
            "cond.embed",
            LayerKind::Embedding,
            2_000_000,
            1.5,
            256 * KB,
        ))
        .layer(layer_ms64(
            "cond.proj",
            LayerKind::Linear,
            1_000_000,
            1.0,
            256 * KB,
        ))
        .build();
    let cond = b.push_component(cond);

    let base = cdm_backbone("base64", 16, 300_000_000, 120.0, 512 * KB);
    let mut base = base;
    base.deps.push(cond);
    b.push_component(base);

    let sr = cdm_backbone("sr128", 18, 390_000_000, 180.0, 2 * MB);
    let mut sr = sr;
    sr.deps.push(cond);
    b.push_component(sr);

    validated(b.input_shape(64, 64).input_shape(128, 128).build())
}

/// CDM-ImageNet: following the paper's evaluation we describe only the
/// second and third backbones of the cascade (training all three exceeds
/// device memory on the paper's testbed).
pub fn cdm_imagenet() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("cdm-imagenet");
    let cond = ComponentBuilder::new("lowres_cond", Role::Frozen)
        .layer(layer_ms64("cond.down", LayerKind::Resample, 0, 2.5, MB))
        .layer(layer_ms64(
            "cond.embed",
            LayerKind::Embedding,
            3_000_000,
            2.0,
            256 * KB,
        ))
        .build();
    let cond = b.push_component(cond);

    let mut mid = cdm_backbone("sr64_128", 18, 400_000_000, 260.0, 2 * MB);
    mid.deps.push(cond);
    b.push_component(mid);

    let mut hi = cdm_backbone("sr128_256", 20, 550_000_000, 420.0, 8 * MB);
    hi.deps.push(cond);
    b.push_component(hi);

    validated(b.input_shape(64, 64).input_shape(128, 128).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsun_backbones_are_similar_size() {
        let m = cdm_lsun();
        let sizes: Vec<u64> = m.backbones().map(|(_, c)| c.param_count()).collect();
        assert_eq!(sizes.len(), 2);
        let ratio = sizes[1] as f64 / sizes[0] as f64;
        assert!((0.5..=2.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn frozen_part_is_tiny() {
        let m = cdm_lsun();
        let frozen: f64 = m
            .frozen_components()
            .map(|(_, c)| c.flops_per_sample())
            .sum();
        let trainable: f64 = m.backbones().map(|(_, c)| c.flops_per_sample()).sum();
        assert!(frozen / trainable < 0.05, "{}", frozen / trainable);
    }

    #[test]
    fn imagenet_third_backbone_is_heaviest() {
        let m = cdm_imagenet();
        let flops: Vec<f64> = m.backbones().map(|(_, c)| c.flops_per_sample()).collect();
        assert!(flops[1] > flops[0]);
    }

    #[test]
    fn backbone_block_profile_is_mid_heavy() {
        let m = cdm_lsun();
        let (_, base) = m.backbones().next().unwrap();
        let first = base.layers.first().unwrap().flops_per_sample;
        let mid = base.layers[base.num_layers() / 2].flops_per_sample;
        assert!(mid > first);
    }
}
