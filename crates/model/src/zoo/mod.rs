//! Model zoo: structural descriptions of the diffusion models evaluated in
//! the paper, plus synthetic models for tests.
//!
//! # Calibration
//!
//! The FLOP/byte numbers here are calibrated so that, under the default
//! device model of `dpipe_profile` (an A100-like device with an effective
//! sustained throughput of 1e14 FLOP/s), the *shapes* reported by the paper
//! hold:
//!
//! * Table 1 — non-trainable forward time / trainable forward+backward time:
//!   ~38→44% for Stable Diffusion v2.1 and ~76→89% for ControlNet v1.0 as the
//!   batch grows from 8 to 64;
//! * Fig. 5 — frozen-layer time distribution: many sub-millisecond text
//!   encoder layers, a body of 1–30 ms VAE layers, and a few extra-long
//!   (>100 ms, up to ~400 ms at batch 64) VAE layers;
//! * Fig. 6 — layer time scales near-linearly with batch size, so halving or
//!   quartering the batch brings the extra-long layers under the longest
//!   pipeline bubble.
//!
//! Absolute wall-clock values are a simulation, not an A100 measurement; see
//! `DESIGN.md` for the substitution rationale.

mod cdm;
mod controlnet;
mod dit;
mod sd;
mod sdxl;
mod synthetic;

pub use cdm::{cdm_imagenet, cdm_lsun};
pub use controlnet::controlnet_v1_0;
pub use dit::dit_xl_2;
pub use sd::stable_diffusion_v2_1;
pub use sdxl::{imagen_base, sdxl_base};
pub use synthetic::{synthetic_backbone, synthetic_model, tiny_model};

use crate::{LayerKind, LayerSpec, ModelSpec};

/// Short names of the paper-evaluated zoo models, in `dpipe models` order.
/// [`by_name`] resolves each of them (and the models' full names).
pub const NAMES: [&str; 7] = [
    "sd",
    "controlnet",
    "cdm-lsun",
    "cdm-imagenet",
    "dit",
    "sdxl",
    "imagen",
];

/// Looks a zoo model up by its short CLI/spec name or its full model name.
/// This is the single registry behind `dpipe plan --model`, `model=` serve
/// request lines and `PlanSpec` `{"model":{"zoo":...}}` references.
pub fn by_name(name: &str) -> Option<ModelSpec> {
    Some(match name {
        "sd" | "stable-diffusion" | "stable-diffusion-v2.1" => stable_diffusion_v2_1(),
        "controlnet" | "controlnet-v1.0" => controlnet_v1_0(),
        "cdm-lsun" => cdm_lsun(),
        "cdm-imagenet" => cdm_imagenet(),
        "dit" | "dit-xl-2" => dit_xl_2(),
        "sdxl" | "sdxl-base" => sdxl_base(),
        "imagen" | "imagen-base" => imagen_base(),
        _ => return None,
    })
}

/// FLOPs that take one millisecond at the default device peak of 1e14 FLOP/s.
pub(crate) const FLOPS_PER_MS: f64 = 1.0e11;

/// Debug-asserts a zoo spec passes [`ModelSpec::validate`], so a structural
/// mistake in a zoo constructor fails at test time (tests build with debug
/// assertions) instead of surfacing later inside a caller's planning run.
/// Release builds return the spec untouched. (Parameterised synthetic
/// builders are exempt: their validity depends on caller arguments.)
pub(crate) fn validated(spec: ModelSpec) -> ModelSpec {
    debug_assert!(
        spec.validate().is_ok(),
        "zoo model `{}` failed validation: {:?}",
        spec.name,
        spec.validate().err()
    );
    spec
}

/// Builds a layer whose forward pass takes roughly `ms_at_64` milliseconds
/// for a 64-sample batch on the default device (ignoring the fixed overhead,
/// which is set separately).
pub(crate) fn layer_ms64(
    name: impl Into<String>,
    kind: LayerKind,
    param_count: u64,
    ms_at_64: f64,
    out_bytes_per_sample: u64,
) -> LayerSpec {
    let flops_per_sample = ms_at_64 * FLOPS_PER_MS / 64.0;
    LayerSpec::new(
        name,
        kind,
        param_count,
        flops_per_sample,
        out_bytes_per_sample,
    )
    .with_overhead_us(100.0)
}

/// Evenly spreads `total` into `n` parts that still sum to `total`.
pub(crate) fn spread(total: u64, n: usize) -> Vec<u64> {
    let base = total / n as u64;
    let rem = (total % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zoo_models_validate() {
        // Constructors also run `validated()` under debug assertions; this
        // checks the release-mode contract through the public API.
        for m in [
            stable_diffusion_v2_1(),
            controlnet_v1_0(),
            cdm_lsun(),
            cdm_imagenet(),
            dit_xl_2(),
            sdxl_base(),
            imagen_base(),
            tiny_model(),
        ] {
            let result = m.validate();
            assert!(result.is_ok(), "{}: {:?}", m.name, result.err());
        }
    }

    #[test]
    fn by_name_resolves_every_listed_model_and_full_names() {
        for name in NAMES {
            let m = by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            // The full model name resolves to the same spec.
            let full = by_name(&m.name).unwrap_or_else(|| panic!("{} must resolve", m.name));
            assert_eq!(m.fingerprint(), full.fingerprint(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn spread_sums_to_total() {
        let parts = spread(100, 7);
        assert_eq!(parts.iter().sum::<u64>(), 100);
        assert_eq!(parts.len(), 7);
        assert!(parts.iter().all(|&p| p == 14 || p == 15));
    }

    #[test]
    fn layer_ms64_flops_match_target() {
        let l = layer_ms64("x", LayerKind::Conv, 0, 400.0, 0);
        // 400 ms at batch 64 => 400e-3 * 1e14 / 64 flops per sample.
        let expected = 400.0e-3 * 1.0e14 / 64.0;
        assert!((l.flops_per_sample - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn sd_has_single_backbone_and_self_conditioning() {
        let m = stable_diffusion_v2_1();
        assert_eq!(m.backbones().count(), 1);
        assert!(m.self_conditioning.is_some());
    }

    #[test]
    fn cdms_have_multiple_backbones_without_self_conditioning() {
        assert_eq!(cdm_lsun().backbones().count(), 2);
        assert_eq!(cdm_imagenet().backbones().count(), 2);
        assert!(cdm_lsun().self_conditioning.is_none());
    }

    #[test]
    fn frozen_layer_counts_match_paper_figure5() {
        // Fig. 5a: SD v2.1 has ~42 frozen layers; Fig. 5b: ControlNet ~60+.
        let sd = stable_diffusion_v2_1();
        assert!(
            (40..=44).contains(&sd.num_frozen_layers()),
            "{}",
            sd.num_frozen_layers()
        );
        let cn = controlnet_v1_0();
        assert!(
            (60..=70).contains(&cn.num_frozen_layers()),
            "{}",
            cn.num_frozen_layers()
        );
    }

    #[test]
    fn trainable_param_counts_are_model_scale() {
        // SD v2.1 U-Net is ~0.87B parameters.
        let sd = stable_diffusion_v2_1();
        let p = sd.trainable_param_count();
        assert!((700_000_000..=1_000_000_000).contains(&p), "{p}");
    }
}
