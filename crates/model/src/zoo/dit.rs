//! DiT-XL/2: transformer-backbone diffusion model (extension target the
//! paper's conclusion calls out).

use super::sd::{clip_text_encoder, vae_encoder};
use super::{spread, validated};
use crate::{ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role};

const KB: u64 = 1 << 10;

/// DiT-XL/2 at 256×256: frozen CLIP text encoder and VAE encoder (scaled for
/// the lower resolution) plus a 28-layer transformer backbone (~0.68 B
/// parameters). Demonstrates that the planner handles transformer backbones,
/// whose per-layer times are uniform (unlike the U-Net's resolution ladder).
pub fn dit_xl_2() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("dit-xl-2");
    let text = b.push_component(clip_text_encoder().build());
    // 256x256 inputs: the VAE is ~4x cheaper than at 512x512.
    let vae = b.push_component(vae_encoder(0.25).build());

    let layers = 28usize;
    let params = spread(675_000_000, layers);
    let mut bb = ComponentBuilder::new("dit", Role::Backbone);
    for (i, p) in params.into_iter().enumerate() {
        bb = bb.layer(
            super::layer_ms64(
                format!("dit.layer{i}"),
                LayerKind::Transformer,
                p,
                5.25,
                1152 * KB,
            )
            .with_overhead_us(300.0),
        );
    }
    let mut bb = bb.build();
    bb.deps = vec![text, vae];
    b.push_component(bb);

    validated(b.input_shape(256, 256).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dit_layers_are_uniform() {
        let m = dit_xl_2();
        let (_, dit) = m.backbones().next().unwrap();
        assert_eq!(dit.num_layers(), 28);
        let f0 = dit.layers[0].flops_per_sample;
        for l in &dit.layers {
            assert!((l.flops_per_sample - f0).abs() / f0 < 1e-9);
        }
    }

    #[test]
    fn vae_is_scaled_down() {
        let dit = dit_xl_2();
        let sd = super::super::stable_diffusion_v2_1();
        let dvae = dit
            .frozen_components()
            .find(|(_, c)| c.name == "vae_encoder")
            .unwrap()
            .1
            .flops_per_sample();
        let svae = sd
            .frozen_components()
            .find(|(_, c)| c.name == "vae_encoder")
            .unwrap()
            .1
            .flops_per_sample();
        assert!((dvae / svae - 0.25).abs() < 1e-9);
    }
}
