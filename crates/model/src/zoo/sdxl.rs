//! SDXL and Imagen-style structural descriptions (the larger-backbone trend
//! the paper's introduction motivates).

use super::sd::{unet_blocks, vae_encoder};
use super::{layer_ms64, spread, validated};
use crate::{ComponentBuilder, LayerKind, ModelSpec, ModelSpecBuilder, Role, SelfConditioning};

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// SDXL-base-like model: a ~2.6 B-parameter U-Net with two frozen text
/// encoders (CLIP-L + OpenCLIP-bigG) and the frozen VAE. The backbone is
/// ~3x Stable Diffusion v2.1's, stressing stage partitioning and memory.
pub fn sdxl_base() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("sdxl-base");
    // CLIP-L text encoder: 12 fast transformer blocks.
    let mut clip_l = ComponentBuilder::new("text_encoder_l", Role::Frozen);
    for (i, p) in spread(123_000_000, 12).into_iter().enumerate() {
        clip_l = clip_l.layer(layer_ms64(
            format!("clipl.block{i}"),
            LayerKind::Transformer,
            p,
            0.35,
            310 * KB,
        ));
    }
    let clip_l = b.push_component(clip_l.build());
    // OpenCLIP-bigG: 32 heavier blocks.
    let mut big_g = ComponentBuilder::new("text_encoder_bigg", Role::Frozen);
    for (i, p) in spread(694_000_000, 32).into_iter().enumerate() {
        big_g = big_g.layer(layer_ms64(
            format!("bigg.block{i}"),
            LayerKind::Transformer,
            p,
            1.1,
            512 * KB,
        ));
    }
    let big_g = b.push_component(big_g.build());
    let vae = b.push_component(vae_encoder(1.0).build());

    // SDXL U-Net: 36 blocks, heavier mid/low-res attention.
    let ms64: Vec<f64> = [
        vec![26.0; 4],
        vec![32.0; 6],
        vec![44.0; 6],
        vec![50.0; 4], // down + mid
        vec![44.0; 8],
        vec![32.0; 5],
        vec![26.0; 3], // up
    ]
    .concat();
    let params = spread(2_600_000_000, 36);
    let out: Vec<u64> = vec![3 * MB; 36];
    let mut unet = ComponentBuilder::new("unet_xl", Role::Backbone)
        .layers(unet_blocks("xl", &ms64, &params, &out))
        .build();
    unet.deps = vec![clip_l, big_g, vae];
    b.push_component(unet);

    validated(
        b.self_conditioning(SelfConditioning::default())
            .input_shape(1024, 1024)
            .build(),
    )
}

/// Imagen-style base model: a 2 B-parameter 64×64 backbone conditioned on a
/// frozen T5-XXL text encoder whose forward time rivals the backbone's —
/// the extreme bubble-filling opportunity.
pub fn imagen_base() -> ModelSpec {
    let mut b = ModelSpecBuilder::new("imagen-base");
    // T5-XXL encoder: 24 blocks, ~4.7 B params, heavy per-block time.
    let mut t5 = ComponentBuilder::new("t5_xxl", Role::Frozen);
    for (i, p) in spread(4_700_000_000, 24).into_iter().enumerate() {
        t5 = t5.layer(layer_ms64(
            format!("t5.block{i}"),
            LayerKind::Transformer,
            p,
            28.0,
            2 * MB,
        ));
    }
    let t5 = b.push_component(t5.build());

    let ms64: Vec<f64> = (0..24)
        .map(|i| {
            let center = 11.5f64;
            16.0 * (1.0 + 0.4 * (1.0 - ((i as f64 - center).abs() / center)))
        })
        .collect();
    let params = spread(2_000_000_000, 24);
    let out: Vec<u64> = vec![MB; 24];
    let mut backbone = ComponentBuilder::new("efficient_unet", Role::Backbone)
        .layers(unet_blocks("imagen", &ms64, &params, &out))
        .build();
    backbone.deps = vec![t5];
    b.push_component(backbone);

    validated(b.input_shape(64, 64).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdxl_is_much_bigger_than_sd() {
        let xl = sdxl_base();
        let sd = super::super::stable_diffusion_v2_1();
        assert!(xl.trainable_param_count() > 2 * sd.trainable_param_count());
        assert_eq!(xl.frozen_components().count(), 3);
        xl.validate().unwrap();
    }

    #[test]
    fn imagen_frozen_part_rivals_backbone() {
        let m = imagen_base();
        m.validate().unwrap();
        let frozen: f64 = m
            .frozen_components()
            .map(|(_, c)| c.flops_per_sample())
            .sum();
        let trainable: f64 = m.backbones().map(|(_, c)| c.flops_per_sample()).sum();
        // T5-XXL forward ~ half the backbone's fwd+bwd (ratio ~0.5).
        let ratio = frozen / (3.0 * trainable);
        assert!((0.3..0.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn imagen_frozen_params_dominate() {
        let m = imagen_base();
        assert!(m.frozen_param_count() > 2 * m.trainable_param_count());
    }
}
