//! Threaded pipeline execution: devices are threads, channels are the
//! interconnect.

use crate::data::SyntheticTask;
use crate::program::{EngineConfig, EngineInstr};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dpipe_tensor::{mse_grad_scaled, Matrix, Mlp, OptimizerState};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Configuration inconsistent with the task (bad stage split, zero
    /// micro-batches, batch not divisible by groups, …).
    BadConfig(String),
    /// A device or coordinator thread failed mid-run (disconnected peer,
    /// protocol violation, or a contained panic). The run's partial
    /// results are discarded.
    Worker(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadConfig(msg) => write!(f, "bad engine config: {msg}"),
            EngineError::Worker(msg) => write!(f, "engine worker failed: {msg}"),
        }
    }
}

impl Error for EngineError {}

/// Why one device thread stopped. Mapped into [`EngineError::Worker`]
/// (with the device's group/stage coordinates) when the run is joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceError {
    /// A peer's end of a channel closed mid-iteration: that peer failed
    /// first; this device shuts down cleanly instead of cascading.
    Disconnected(&'static str),
    /// The instruction stream referenced wiring or in-flight state this
    /// device does not hold — a program/wiring construction bug.
    Protocol(&'static str),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Disconnected(what) => write!(f, "{what} channel disconnected"),
            DeviceError::Protocol(what) => write!(f, "protocol violation: expected {what}"),
        }
    }
}

/// Best-effort readable payload from a joined panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Global loss per iteration.
    pub losses: Vec<f32>,
    /// Final backbone parameters (group 0, stages concatenated in order).
    pub final_params: Vec<f32>,
}

/// The multi-threaded pipeline execution engine.
#[derive(Debug, Default)]
pub struct PipelineEngine;

/// Channels wiring one device.
struct Wiring {
    act_in: Option<Receiver<Matrix>>,
    act_out: Option<Sender<Matrix>>,
    grad_in: Option<Receiver<Matrix>>,
    grad_out: Option<Sender<Matrix>>,
    /// Self-conditioning feedback: last stage -> stage 0 (Fig. 10's Cf).
    feedback_in: Option<Receiver<Matrix>>,
    feedback_out: Option<Sender<Matrix>>,
    /// To the all-reduce coordinator: (group, grads).
    reduce_tx: Sender<(usize, Vec<f32>)>,
    /// Summed gradients back from the coordinator. Always `Some` by
    /// construction; `Option` so a wiring bug surfaces as a typed
    /// protocol error on the device instead of a panic in `train`.
    reduced_rx: Option<Receiver<Vec<f32>>>,
    /// Loss reporting (last stage): (iteration, squared-error sum).
    loss_tx: Sender<(usize, f32)>,
}

impl PipelineEngine {
    /// Trains the task for `iterations` steps under the given pipeline/data
    /// parallel configuration, returning losses and final parameters.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadConfig`] for inconsistent configurations.
    pub fn train(
        task: &SyntheticTask,
        cfg: &EngineConfig,
        iterations: usize,
    ) -> Result<TrainStats, EngineError> {
        let s_count = cfg.stage_layers.len();
        let g_count = cfg.dp_groups;
        if s_count == 0 || cfg.micro_batches == 0 || g_count == 0 {
            return Err(EngineError::BadConfig(
                "zero stages, micro-batches or groups".into(),
            ));
        }
        if !task.batch.is_multiple_of(g_count) {
            return Err(EngineError::BadConfig(format!(
                "batch {} not divisible by {} groups",
                task.batch, g_count
            )));
        }
        let blocks: usize = cfg.stage_layers.iter().sum();
        // Build per-group stage replicas (identical weights).
        let mut stages_per_group: Vec<Vec<Mlp>> = Vec::with_capacity(g_count);
        for _ in 0..g_count {
            let backbone = task.build_backbone(blocks);
            let raw_counts: Vec<usize> = cfg.stage_layers.iter().map(|&b| b * 2).collect();
            stages_per_group.push(backbone.split(&raw_counts));
        }
        let programs =
            crate::program::generate_program_sc(s_count, cfg.micro_batches, task.self_cond);

        // Wiring.
        let mut act_txs: HashMap<(usize, usize), Sender<Matrix>> = HashMap::new();
        let mut act_rxs: HashMap<(usize, usize), Receiver<Matrix>> = HashMap::new();
        let mut grad_txs: HashMap<(usize, usize), Sender<Matrix>> = HashMap::new();
        let mut grad_rxs: HashMap<(usize, usize), Receiver<Matrix>> = HashMap::new();
        let mut fb_txs: HashMap<usize, Sender<Matrix>> = HashMap::new();
        let mut fb_rxs: HashMap<usize, Receiver<Matrix>> = HashMap::new();
        for g in 0..g_count {
            for s in 0..s_count.saturating_sub(1) {
                let (tx, rx) = unbounded();
                act_txs.insert((g, s), tx);
                act_rxs.insert((g, s + 1), rx);
                let (tx, rx) = unbounded();
                grad_txs.insert((g, s + 1), tx);
                grad_rxs.insert((g, s), rx);
            }
            if task.self_cond && s_count > 1 {
                let (tx, rx) = unbounded();
                fb_txs.insert(g, tx);
                fb_rxs.insert(g, rx);
            }
        }
        // All-reduce coordinators, one per stage.
        let mut reduce_txs: Vec<Sender<(usize, Vec<f32>)>> = Vec::new();
        let mut reduce_rxs: Vec<Receiver<(usize, Vec<f32>)>> = Vec::new();
        let mut reduced_txs: HashMap<(usize, usize), Sender<Vec<f32>>> = HashMap::new();
        let mut reduced_rxs: HashMap<(usize, usize), Receiver<Vec<f32>>> = HashMap::new();
        for s in 0..s_count {
            let (tx, rx) = unbounded();
            reduce_txs.push(tx);
            reduce_rxs.push(rx);
            for g in 0..g_count {
                let (tx, rx) = unbounded();
                reduced_txs.insert((g, s), tx);
                reduced_rxs.insert((g, s), rx);
            }
        }
        let (loss_tx, loss_rx) = unbounded::<(usize, f32)>();

        let mut result_stages: Vec<Option<Mlp>> = Vec::new();
        let mut worker_error: Option<EngineError> = None;
        std::thread::scope(|scope| {
            // Coordinator threads.
            for s in 0..s_count {
                let rx = reduce_rxs[s].clone();
                let back: Vec<Sender<Vec<f32>>> =
                    (0..g_count).map(|g| reduced_txs[&(g, s)].clone()).collect();
                scope.spawn(move || {
                    for _ in 0..iterations {
                        let mut sum: Option<Vec<f32>> = None;
                        for _ in 0..g_count {
                            // A closed channel means a device failed; exit
                            // cleanly so its error (not a cascade of
                            // panics) reaches the caller.
                            let grads = match rx.recv() {
                                Ok((_, grads)) => grads,
                                Err(_) => return,
                            };
                            sum = Some(match sum {
                                None => grads,
                                Some(mut acc) => {
                                    for (a, g) in acc.iter_mut().zip(&grads) {
                                        *a += g;
                                    }
                                    acc
                                }
                            });
                        }
                        let Some(sum) = sum else { return };
                        for tx in &back {
                            // Best-effort fan-out: keep serving surviving
                            // groups even if one receiver is gone.
                            let _ = tx.send(sum.clone());
                        }
                    }
                });
            }

            // Device threads.
            let mut handles = Vec::new();
            for (g, group_stages) in stages_per_group.into_iter().enumerate() {
                for (s, stage) in group_stages.into_iter().enumerate() {
                    let wiring = Wiring {
                        act_in: act_rxs.remove(&(g, s)),
                        act_out: act_txs.remove(&(g, s)),
                        grad_in: grad_rxs.remove(&(g, s)),
                        grad_out: grad_txs.remove(&(g, s)),
                        feedback_in: if s == 0 { fb_rxs.remove(&g) } else { None },
                        feedback_out: if s == s_count - 1 {
                            fb_txs.remove(&g)
                        } else {
                            None
                        },
                        reduce_tx: reduce_txs[s].clone(),
                        // Every (g, s) receiver was inserted by the wiring
                        // loop above; a vacancy is a construction bug the
                        // device reports as a protocol error.
                        reduced_rx: reduced_rxs.remove(&(g, s)),
                        loss_tx: loss_tx.clone(),
                    };
                    let program = programs[s].clone();
                    let frozen = if s == 0 {
                        Some(task.build_frozen())
                    } else {
                        None
                    };
                    let handle = scope.spawn(move || {
                        run_device(
                            task, cfg, g, s, s_count, stage, frozen, &program, wiring, iterations,
                        )
                    });
                    handles.push(((g, s), handle));
                }
            }
            drop(loss_tx);

            // Collect stages back (group 0 in stage order), folding any
            // thread failure into the first worker error.
            let mut collected: HashMap<(usize, usize), Mlp> = HashMap::new();
            for ((g, s), h) in handles {
                match h.join() {
                    Ok(Ok(stage)) => {
                        collected.insert((g, s), stage);
                    }
                    Ok(Err(e)) => {
                        if worker_error.is_none() {
                            worker_error = Some(EngineError::Worker(format!(
                                "device (group {g}, stage {s}): {e}"
                            )));
                        }
                    }
                    Err(payload) => {
                        if worker_error.is_none() {
                            worker_error = Some(EngineError::Worker(format!(
                                "device (group {g}, stage {s}) panicked: {}",
                                panic_message(payload.as_ref())
                            )));
                        }
                    }
                }
            }
            result_stages = (0..s_count).map(|s| collected.remove(&(0, s))).collect();
        });
        if let Some(err) = worker_error {
            return Err(err);
        }

        // Aggregate losses.
        let elems = (task.batch * task.dim) as f32;
        let mut loss_acc = vec![0.0f32; iterations];
        for (iter, sq) in loss_rx.try_iter() {
            loss_acc[iter] += sq;
        }
        let losses = loss_acc.into_iter().map(|s| s / elems).collect();
        let mut final_params = Vec::new();
        for (s, stage) in result_stages.into_iter().enumerate() {
            match stage {
                Some(stage) => final_params.extend(stage.params()),
                None => {
                    return Err(EngineError::Worker(format!(
                        "stage {s} of group 0 returned no result"
                    )))
                }
            }
        }
        Ok(TrainStats {
            losses,
            final_params,
        })
    }
}

/// One simulated device: interprets its instruction stream for every
/// iteration, then returns its stage (with final weights). Any missing
/// wiring/state or disconnected peer stops the device with a typed
/// error instead of a panic, so one failure can't cascade.
#[allow(clippy::too_many_arguments)]
fn run_device(
    task: &SyntheticTask,
    cfg: &EngineConfig,
    group: usize,
    stage_idx: usize,
    num_stages: usize,
    mut stage: Mlp,
    frozen: Option<Mlp>,
    program: &[EngineInstr],
    wiring: Wiring,
    iterations: usize,
) -> Result<Mlp, DeviceError> {
    let shard_rows = task.batch / cfg.dp_groups;
    let global_elems = task.batch * task.dim;
    let mut optimizer = OptimizerState::new(cfg.effective_optimizer(), stage.params().len());
    let shard = |m: &Matrix| {
        let rows: Vec<f32> =
            m.data()[group * shard_rows * m.cols()..(group + 1) * shard_rows * m.cols()].to_vec();
        Matrix::from_vec(shard_rows, m.cols(), rows)
    };

    // Cross-iteration state: encoded inputs for the *current* iteration.
    let mut enc_next: Option<Matrix> = None;

    for iter in 0..iterations {
        stage.zero_grads();
        // Stage 0 prepares its micro-batch inputs from the frozen encoder
        // (prefetched last iteration, or computed now on iteration 0).
        let mut micro_inputs: Vec<Matrix> = Vec::new();
        if stage_idx == 0 {
            let frozen_net = frozen
                .as_ref()
                .ok_or(DeviceError::Protocol("stage 0 holds the frozen part"))?;
            let encoded = enc_next
                .take()
                .unwrap_or_else(|| frozen_net.forward_inference(&shard(&task.batch_for(iter).0)));
            micro_inputs = encoded.split_rows(cfg.micro_batches);
        }
        // Last stage prepares targets.
        let mut micro_targets: Vec<Matrix> = Vec::new();
        if stage_idx == num_stages - 1 {
            let (_, y) = task.batch_for(iter);
            micro_targets = shard(&y).split_rows(cfg.micro_batches);
        }

        // Per-micro-batch in-flight state.
        let mut inputs: HashMap<usize, Matrix> = HashMap::new(); // stage inputs
        let mut caches: HashMap<usize, Vec<Matrix>> = HashMap::new();
        let mut outputs: HashMap<usize, Matrix> = HashMap::new();
        let mut grads_out: HashMap<usize, Matrix> = HashMap::new(); // dL/d(stage output)
        let mut grads_in: HashMap<usize, Matrix> = HashMap::new(); // dL/d(stage input)
                                                                   // Self-conditioning outputs received back on stage 0.
        let mut sc_feedback: HashMap<usize, Matrix> = HashMap::new();

        for instr in program {
            match instr {
                EngineInstr::LoadMicroBatch { mb } => {
                    let enc = &micro_inputs[*mb];
                    // In the main phase (after RecvScFeedback) the pass is
                    // conditioned on the detached SC output.
                    let x = match sc_feedback.get(mb) {
                        Some(sc) => enc + &sc.scale(SyntheticTask::SC_MIX),
                        None => enc.clone(),
                    };
                    inputs.insert(*mb, x);
                }
                EngineInstr::RecvActivation { mb } => {
                    let m = wiring
                        .act_in
                        .as_ref()
                        .ok_or(DeviceError::Protocol("non-first stage has act_in"))?
                        .recv()
                        .map_err(|_| DeviceError::Disconnected("activation"))?;
                    inputs.insert(*mb, m);
                }
                EngineInstr::StageForward { mb } => {
                    let x = inputs
                        .get(mb)
                        .ok_or(DeviceError::Protocol("input present before forward"))?;
                    let (y, cache) = stage.forward_cached(x);
                    caches.insert(*mb, cache);
                    outputs.insert(*mb, y);
                }
                EngineInstr::SendActivation { mb } => {
                    let y = outputs
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("output present before send"))?;
                    wiring
                        .act_out
                        .as_ref()
                        .ok_or(DeviceError::Protocol("non-last stage has act_out"))?
                        .send(y)
                        .map_err(|_| DeviceError::Disconnected("activation"))?;
                }
                EngineInstr::ComputeLossGrad { mb } => {
                    let pred = outputs
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("prediction present"))?;
                    let target = &micro_targets[*mb];
                    let sq: f32 = pred
                        .data()
                        .iter()
                        .zip(target.data())
                        .map(|(p, t)| (p - t) * (p - t))
                        .sum();
                    wiring
                        .loss_tx
                        .send((iter, sq))
                        .map_err(|_| DeviceError::Disconnected("loss"))?;
                    grads_out.insert(*mb, mse_grad_scaled(&pred, target, global_elems));
                }
                EngineInstr::RecvGradient { mb } => {
                    let m = wiring
                        .grad_in
                        .as_ref()
                        .ok_or(DeviceError::Protocol("non-last stage has grad_in"))?
                        .recv()
                        .map_err(|_| DeviceError::Disconnected("gradient"))?;
                    grads_out.insert(*mb, m);
                }
                EngineInstr::StageBackward { mb } => {
                    let cache = caches
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("cache present before backward"))?;
                    let g = grads_out
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("output grad present"))?;
                    let gin = stage.backward_cached(&cache, &g);
                    grads_in.insert(*mb, gin);
                    inputs.remove(mb);
                }
                EngineInstr::SendGradient { mb } => {
                    let g = grads_in
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("input grad present"))?;
                    wiring
                        .grad_out
                        .as_ref()
                        .ok_or(DeviceError::Protocol("non-first stage has grad_out"))?
                        .send(g)
                        .map_err(|_| DeviceError::Disconnected("gradient"))?;
                }
                EngineInstr::AllReduceGrads => {
                    wiring
                        .reduce_tx
                        .send((group, stage.grads()))
                        .map_err(|_| DeviceError::Disconnected("reduce"))?;
                    let summed = wiring
                        .reduced_rx
                        .as_ref()
                        .ok_or(DeviceError::Protocol("reduced channel wired"))?
                        .recv()
                        .map_err(|_| DeviceError::Disconnected("reduced"))?;
                    stage.set_grads(&summed);
                }
                EngineInstr::OptimizerStep => {
                    optimizer.step(&mut stage);
                }
                EngineInstr::FrozenForwardNext => {
                    let frozen_net = frozen
                        .as_ref()
                        .ok_or(DeviceError::Protocol("stage 0 holds the frozen part"))?;
                    let (x_next, _) = task.batch_for(iter + 1);
                    enc_next = Some(frozen_net.forward_inference(&shard(&x_next)));
                }
                EngineInstr::ScForward { mb } => {
                    // Detached forward: no cache, no gradients.
                    let x = inputs
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("input present before sc forward"))?;
                    outputs.insert(*mb, stage.forward_inference(&x));
                }
                EngineInstr::SendScFeedback { mb } => {
                    let y = outputs
                        .remove(mb)
                        .ok_or(DeviceError::Protocol("sc output present"))?;
                    match &wiring.feedback_out {
                        Some(tx) => tx
                            .send(y)
                            .map_err(|_| DeviceError::Disconnected("feedback"))?,
                        // Single-stage pipelines keep the feedback local.
                        None => {
                            sc_feedback.insert(*mb, y);
                        }
                    }
                }
                EngineInstr::RecvScFeedback { mb } => {
                    if let Some(rx) = &wiring.feedback_in {
                        let fb = rx
                            .recv()
                            .map_err(|_| DeviceError::Disconnected("feedback"))?;
                        sc_feedback.insert(*mb, fb);
                    }
                    // else: single stage, already stored by SendScFeedback.
                }
            }
        }
    }
    Ok(stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceTrainer;

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn pipeline_matches_reference_two_stages() {
        let task = SyntheticTask::new(2, 8, 16, 42);
        let cfg = EngineConfig {
            stage_layers: vec![2, 2],
            micro_batches: 4,
            dp_groups: 1,
            lr: 0.05,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 5).unwrap();
        let mut reference = ReferenceTrainer::new(&task, 4, 4, 0.05);
        let ref_losses = reference.train(&task, 5);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-4, "loss {a} vs {b}");
        }
        let diff = max_diff(&stats.final_params, &reference.params());
        assert!(diff < 1e-4, "params diverged by {diff}");
    }

    #[test]
    fn pipeline_matches_reference_four_stages() {
        let task = SyntheticTask::new(1, 6, 8, 7);
        let cfg = EngineConfig {
            stage_layers: vec![1, 1, 1, 1],
            micro_batches: 2,
            dp_groups: 1,
            lr: 0.02,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 4).unwrap();
        let mut reference = ReferenceTrainer::new(&task, 4, 2, 0.02);
        reference.train(&task, 4);
        let diff = max_diff(&stats.final_params, &reference.params());
        assert!(diff < 1e-4, "params diverged by {diff}");
    }

    #[test]
    fn data_parallel_groups_match_reference() {
        let task = SyntheticTask::new(1, 6, 16, 9);
        let cfg = EngineConfig {
            stage_layers: vec![1, 1],
            micro_batches: 2,
            dp_groups: 2,
            lr: 0.02,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 4).unwrap();
        // Reference: full batch with 4 micro-batches (2 groups x 2 micros =
        // same partition of the batch).
        let mut reference = ReferenceTrainer::new(&task, 2, 4, 0.02);
        let ref_losses = reference.train(&task, 4);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-3, "loss {a} vs {b}");
        }
        let diff = max_diff(&stats.final_params, &reference.params());
        assert!(diff < 1e-3, "params diverged by {diff}");
    }

    #[test]
    fn cross_iteration_prefetch_changes_nothing() {
        // The frozen encoder is deterministic, so prefetching its outputs
        // one iteration early must be invisible in the training trajectory;
        // this is the paper's §3.2 equivalence argument. Compare two runs:
        // stages=1 (prefetch exercised trivially) and the reference.
        let task = SyntheticTask::new(3, 8, 8, 5);
        let cfg = EngineConfig {
            stage_layers: vec![2],
            micro_batches: 2,
            dp_groups: 1,
            lr: 0.03,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 6).unwrap();
        let mut reference = ReferenceTrainer::new(&task, 2, 2, 0.03);
        let ref_losses = reference.train(&task, 6);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn losses_decrease_over_training() {
        let task = SyntheticTask::new(1, 8, 16, 3);
        let cfg = EngineConfig {
            stage_layers: vec![1, 1],
            micro_batches: 4,
            dp_groups: 1,
            lr: 1.0,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 200).unwrap();
        let head: f32 = stats.losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = stats.losses[stats.losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < 0.5 * head, "head {head} tail {tail}");
    }

    #[test]
    fn self_conditioning_pipeline_matches_reference() {
        // The SC pass flows down the pipeline, its output feeds back to
        // stage 0, and the conditioned main pass must reproduce the
        // single-device double-forward exactly (Fig. 10 semantics).
        let task = SyntheticTask::new(1, 8, 16, 13).with_self_conditioning();
        let cfg = EngineConfig {
            stage_layers: vec![1, 1],
            micro_batches: 4,
            dp_groups: 1,
            lr: 0.05,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 5).unwrap();
        let mut reference = ReferenceTrainer::new(&task, 2, 4, 0.05);
        let ref_losses = reference.train(&task, 5);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-4, "loss {a} vs {b}");
        }
        let diff = max_diff(&stats.final_params, &reference.params());
        assert!(diff < 1e-4, "params diverged by {diff}");
    }

    #[test]
    fn self_conditioning_changes_the_trajectory() {
        // Sanity: SC is not a no-op.
        let plain = SyntheticTask::new(1, 8, 16, 13);
        let sc = SyntheticTask::new(1, 8, 16, 13).with_self_conditioning();
        let cfg = EngineConfig {
            stage_layers: vec![2],
            micro_batches: 2,
            dp_groups: 1,
            lr: 0.05,
            optimizer: None,
        };
        let a = PipelineEngine::train(&plain, &cfg, 3).unwrap();
        let b = PipelineEngine::train(&sc, &cfg, 3).unwrap();
        assert_ne!(a.final_params, b.final_params);
    }

    #[test]
    fn adam_pipeline_matches_adam_reference() {
        use dpipe_tensor::Optimizer;
        let task = SyntheticTask::new(1, 8, 16, 21);
        let cfg = EngineConfig {
            stage_layers: vec![2, 2],
            micro_batches: 4,
            dp_groups: 1,
            lr: 0.0,
            optimizer: Some(Optimizer::adam(0.01)),
        };
        let stats = PipelineEngine::train(&task, &cfg, 5).unwrap();
        let mut reference = ReferenceTrainer::with_optimizer(&task, 4, 4, Optimizer::adam(0.01));
        let ref_losses = reference.train(&task, 5);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-4, "loss {a} vs {b}");
        }
        let diff = max_diff(&stats.final_params, &reference.params());
        assert!(diff < 1e-3, "params diverged by {diff}");
    }

    #[test]
    fn bad_configs_rejected() {
        let task = SyntheticTask::new(1, 4, 9, 1);
        let cfg = EngineConfig {
            stage_layers: vec![1],
            micro_batches: 1,
            dp_groups: 2, // 9 % 2 != 0
            lr: 0.1,
            optimizer: None,
        };
        assert!(matches!(
            PipelineEngine::train(&task, &cfg, 1),
            Err(EngineError::BadConfig(_))
        ));
        let cfg2 = EngineConfig {
            stage_layers: vec![],
            micro_batches: 1,
            dp_groups: 1,
            lr: 0.1,
            optimizer: None,
        };
        assert!(PipelineEngine::train(&task, &cfg2, 1).is_err());
    }
}
