//! Single-device reference trainer: the ground truth for equivalence tests.

use crate::data::SyntheticTask;
use dpipe_tensor::{mse_grad_scaled, mse_loss, Matrix, Mlp, Optimizer, OptimizerState};

/// Trains the task's backbone on one device with plain micro-batched
/// gradient accumulation (mathematically: synchronous full-batch SGD),
/// computing the frozen encoder inline every iteration.
pub struct ReferenceTrainer {
    frozen: Mlp,
    backbone: Mlp,
    optimizer: OptimizerState,
    micro_batches: usize,
}

impl ReferenceTrainer {
    /// Builds the reference from the same task/backbone shape as the
    /// pipeline engine, training with SGD.
    pub fn new(
        task: &SyntheticTask,
        backbone_blocks: usize,
        micro_batches: usize,
        lr: f32,
    ) -> Self {
        Self::with_optimizer(task, backbone_blocks, micro_batches, Optimizer::Sgd { lr })
    }

    /// Builds the reference with an explicit optimiser.
    pub fn with_optimizer(
        task: &SyntheticTask,
        backbone_blocks: usize,
        micro_batches: usize,
        optimizer: Optimizer,
    ) -> Self {
        let backbone = task.build_backbone(backbone_blocks);
        let optimizer = OptimizerState::new(optimizer, backbone.params().len());
        ReferenceTrainer {
            frozen: task.build_frozen(),
            backbone,
            optimizer,
            micro_batches,
        }
    }

    /// Runs `iterations` training steps, returning the per-iteration losses.
    /// With self-conditioning, a detached full forward produces the
    /// conditioning signal mixed into the main pass input (Fig. 10).
    pub fn train(&mut self, task: &SyntheticTask, iterations: usize) -> Vec<f32> {
        let mut losses = Vec::with_capacity(iterations);
        for iter in 0..iterations {
            let (x, y) = task.batch_for(iter);
            let mut encoded = self.frozen.forward_inference(&x);
            if task.self_cond {
                let p1 = self.backbone.forward_inference(&encoded);
                encoded = &encoded + &p1.scale(SyntheticTask::SC_MIX);
            }
            let xs = encoded.split_rows(self.micro_batches);
            let ys = y.split_rows(self.micro_batches);
            let global_elems = y.rows() * y.cols();
            self.backbone.zero_grads();
            let mut preds = Vec::with_capacity(self.micro_batches);
            for (xm, ym) in xs.iter().zip(&ys) {
                let (pred, cache) = self.backbone.forward_cached(xm);
                let g = mse_grad_scaled(&pred, ym, global_elems);
                self.backbone.backward_cached(&cache, &g);
                preds.push(pred);
            }
            let pred_full = Matrix::vstack(&preds);
            losses.push(mse_loss(&pred_full, &y));
            self.optimizer.step(&mut self.backbone);
        }
        losses
    }

    /// Final backbone parameters.
    pub fn params(&self) -> Vec<f32> {
        self.backbone.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_learns() {
        let task = SyntheticTask::new(1, 8, 16, 3);
        let mut r = ReferenceTrainer::new(&task, 2, 4, 1.0);
        let losses = r.train(&task, 200);
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < 0.5 * head, "head {head} tail {tail}");
    }

    #[test]
    fn micro_batch_count_does_not_change_math() {
        let task = SyntheticTask::new(1, 8, 16, 3);
        let mut a = ReferenceTrainer::new(&task, 2, 1, 0.05);
        let mut b = ReferenceTrainer::new(&task, 2, 4, 0.05);
        let la = a.train(&task, 5);
        let lb = b.train(&task, 5);
        for (x, y) in la.iter().zip(&lb) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        let diff: f32 = a
            .params()
            .iter()
            .zip(b.params())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-4, "params diverged by {diff}");
    }
}
