//! Pipeline instruction generation (paper Fig. 7, step 6).

use serde::{Deserialize, Serialize};

/// Engine configuration for one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Raw layers per pipeline stage (must sum to the backbone layer count;
    /// one device per stage per group).
    pub stage_layers: Vec<usize>,
    /// Number of micro-batches `M`.
    pub micro_batches: usize,
    /// Data-parallel pipeline groups.
    pub dp_groups: usize,
    /// SGD learning rate (used when `optimizer` is `None`).
    pub lr: f32,
    /// Optimiser override; `None` means SGD at `lr`.
    #[serde(skip)]
    pub optimizer: Option<dpipe_tensor::Optimizer>,
}

impl EngineConfig {
    /// The effective optimiser for this run.
    pub fn effective_optimizer(&self) -> dpipe_tensor::Optimizer {
        self.optimizer
            .unwrap_or(dpipe_tensor::Optimizer::Sgd { lr: self.lr })
    }
}

/// One back-end pipeline instruction. Mirrors the paper's instruction set:
/// load micro-batch data, trainable stage forward/backward, non-trainable
/// stage forward, send/receive, synchronisation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineInstr {
    /// Load micro-batch `mb` of the (already encoded) input onto the device.
    LoadMicroBatch {
        /// Micro-batch index.
        mb: usize,
    },
    /// Receive the forward activation of micro-batch `mb` from the previous
    /// stage.
    RecvActivation {
        /// Micro-batch index.
        mb: usize,
    },
    /// Run this stage's forward for micro-batch `mb`.
    StageForward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Send the forward activation of `mb` to the next stage.
    SendActivation {
        /// Micro-batch index.
        mb: usize,
    },
    /// Compute the loss gradient for `mb` (last stage only).
    ComputeLossGrad {
        /// Micro-batch index.
        mb: usize,
    },
    /// Receive the output gradient of `mb` from the next stage.
    RecvGradient {
        /// Micro-batch index.
        mb: usize,
    },
    /// Run this stage's backward for micro-batch `mb`.
    StageBackward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Send the input gradient of `mb` to the previous stage.
    SendGradient {
        /// Micro-batch index.
        mb: usize,
    },
    /// All-reduce this stage's gradients across data-parallel groups
    /// (pipeline flush `F` in the paper's figures).
    AllReduceGrads,
    /// Apply the optimiser step.
    OptimizerStep,
    /// Run the frozen (non-trainable) part forward for the *next*
    /// iteration's batch — cross-iteration bubble filling (§3.2). Only
    /// emitted on stage 0, whose warm-up/cool-down idle time hosts it.
    FrozenForwardNext,
    /// Self-conditioning forward (detached, no gradient caching) for `mb`.
    ScForward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Send the SC pass output of `mb` back to stage 0 (the `Cf` feedback
    /// edge of Fig. 10). Last stage only.
    SendScFeedback {
        /// Micro-batch index.
        mb: usize,
    },
    /// Receive the SC output of `mb` and mix it into the main pass input.
    /// Stage 0 only.
    RecvScFeedback {
        /// Micro-batch index.
        mb: usize,
    },
}

/// Generates the per-stage instruction stream for one training iteration
/// using FIFO-1F1B ordering (warmup forwards, steady 1F1B, cooldown
/// backwards), ending with gradient sync and the optimiser step, plus the
/// cross-iteration frozen prefetch on stage 0.
pub fn generate_program(num_stages: usize, micro_batches: usize) -> Vec<Vec<EngineInstr>> {
    generate_program_sc(num_stages, micro_batches, false)
}

/// [`generate_program`] with optional self-conditioning: every micro-batch
/// first makes a detached forward pass through all stages; the last stage
/// feeds the output back to stage 0 (Fig. 10's `Cf`), which mixes it into
/// the main pass input.
pub fn generate_program_sc(
    num_stages: usize,
    micro_batches: usize,
    self_cond: bool,
) -> Vec<Vec<EngineInstr>> {
    let mut programs = Vec::with_capacity(num_stages);
    for s in 0..num_stages {
        let mut prog = Vec::new();
        if self_cond {
            // SC phase: pipeline every micro-batch forward (detached), the
            // last stage returning the output to stage 0.
            for mb in 0..micro_batches {
                if s == 0 {
                    prog.push(EngineInstr::LoadMicroBatch { mb });
                } else {
                    prog.push(EngineInstr::RecvActivation { mb });
                }
                prog.push(EngineInstr::ScForward { mb });
                if s < num_stages - 1 {
                    prog.push(EngineInstr::SendActivation { mb });
                } else {
                    prog.push(EngineInstr::SendScFeedback { mb });
                }
            }
            if s == 0 {
                for mb in 0..micro_batches {
                    prog.push(EngineInstr::RecvScFeedback { mb });
                }
            }
        }
        let warmup = micro_batches.min(num_stages - 1 - s);
        let fwd = |prog: &mut Vec<EngineInstr>, mb: usize| {
            if s == 0 {
                prog.push(EngineInstr::LoadMicroBatch { mb });
            } else {
                prog.push(EngineInstr::RecvActivation { mb });
            }
            prog.push(EngineInstr::StageForward { mb });
            if s < num_stages - 1 {
                prog.push(EngineInstr::SendActivation { mb });
            }
        };
        let bwd = |prog: &mut Vec<EngineInstr>, mb: usize| {
            if s == num_stages - 1 {
                prog.push(EngineInstr::ComputeLossGrad { mb });
            } else {
                prog.push(EngineInstr::RecvGradient { mb });
            }
            prog.push(EngineInstr::StageBackward { mb });
            if s > 0 {
                prog.push(EngineInstr::SendGradient { mb });
            }
        };
        for m in 0..warmup {
            fwd(&mut prog, m);
        }
        for k in 0..(micro_batches - warmup) {
            fwd(&mut prog, warmup + k);
            bwd(&mut prog, k);
        }
        for m in (micro_batches - warmup)..micro_batches {
            bwd(&mut prog, m);
        }
        prog.push(EngineInstr::AllReduceGrads);
        prog.push(EngineInstr::OptimizerStep);
        if s == 0 {
            // Cross-iteration: stage 0 prefetches the next iteration's
            // frozen outputs (in wall-clock terms this fills its cooldown
            // bubble; numerically it just runs ahead of time).
            prog.push(EngineInstr::FrozenForwardNext);
        }
        programs.push(prog);
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(prog: &[EngineInstr], pred: impl Fn(&EngineInstr) -> bool) -> usize {
        prog.iter().filter(|i| pred(i)).count()
    }

    #[test]
    fn every_stage_runs_every_micro_batch() {
        let progs = generate_program(4, 6);
        for prog in &progs {
            assert_eq!(
                count(prog, |i| matches!(i, EngineInstr::StageForward { .. })),
                6
            );
            assert_eq!(
                count(prog, |i| matches!(i, EngineInstr::StageBackward { .. })),
                6
            );
        }
    }

    #[test]
    fn sends_match_recvs_between_adjacent_stages() {
        let progs = generate_program(3, 4);
        let sends: Vec<usize> = progs
            .iter()
            .map(|p| count(p, |i| matches!(i, EngineInstr::SendActivation { .. })))
            .collect();
        let recvs: Vec<usize> = progs
            .iter()
            .map(|p| count(p, |i| matches!(i, EngineInstr::RecvActivation { .. })))
            .collect();
        assert_eq!(sends, vec![4, 4, 0]);
        assert_eq!(recvs, vec![0, 4, 4]);
        let gsends: Vec<usize> = progs
            .iter()
            .map(|p| count(p, |i| matches!(i, EngineInstr::SendGradient { .. })))
            .collect();
        assert_eq!(gsends, vec![0, 4, 4]);
    }

    #[test]
    fn warmup_depth_matches_1f1b() {
        let progs = generate_program(4, 8);
        // Stage 0: 3 forwards before its first backward.
        let first_bwd = progs[0]
            .iter()
            .position(|i| matches!(i, EngineInstr::StageBackward { .. }))
            .unwrap();
        let fwds_before = progs[0][..first_bwd]
            .iter()
            .filter(|i| matches!(i, EngineInstr::StageForward { .. }))
            .count();
        assert_eq!(fwds_before, 4); // 3 warmup + 1 steady-state forward
                                    // Last stage alternates from the start.
        let last = progs.last().unwrap();
        let first_bwd_last = last
            .iter()
            .position(|i| matches!(i, EngineInstr::StageBackward { .. }))
            .unwrap();
        let fwds_before_last = last[..first_bwd_last]
            .iter()
            .filter(|i| matches!(i, EngineInstr::StageForward { .. }))
            .count();
        assert_eq!(fwds_before_last, 1);
    }

    #[test]
    fn sync_step_and_prefetch_tail() {
        let progs = generate_program(2, 2);
        for (s, prog) in progs.iter().enumerate() {
            let n = prog.len();
            if s == 0 {
                assert_eq!(prog[n - 3], EngineInstr::AllReduceGrads);
                assert_eq!(prog[n - 2], EngineInstr::OptimizerStep);
                assert_eq!(prog[n - 1], EngineInstr::FrozenForwardNext);
            } else {
                assert_eq!(prog[n - 2], EngineInstr::AllReduceGrads);
                assert_eq!(prog[n - 1], EngineInstr::OptimizerStep);
            }
        }
    }

    #[test]
    fn single_stage_degenerates_to_gradient_accumulation() {
        let progs = generate_program(1, 3);
        assert_eq!(progs.len(), 1);
        let p = &progs[0];
        assert!(p.iter().all(|i| !matches!(
            i,
            EngineInstr::SendActivation { .. } | EngineInstr::RecvActivation { .. }
        )));
        assert_eq!(
            count(p, |i| matches!(i, EngineInstr::ComputeLossGrad { .. })),
            3
        );
    }
}
