//! Back-end execution engine (paper Fig. 7, right half).
//!
//! Generates per-device pipeline instruction streams from a stage layout and
//! executes them on *threads as simulated devices* with channels as the
//! interconnect, running real `dpipe_tensor` math. This provides the
//! strongest form of validation available without GPUs: the claim of §3.2 —
//! that DiffusionPipe's cross-iteration pipelining (frozen part of iteration
//! `t+1` computed during iteration `t`, 1F1B micro-batching, per-stage
//! gradient all-reduce) is **mathematically equivalent** to synchronous
//! data-parallel training — is checked numerically against a single-device
//! reference trainer.
//!
//! The engine supports pipeline stages (one device per stage) combined with
//! data-parallel groups (each group a full pipeline replica); intra-group
//! stage replication is a planning-level concept that folds into the same
//! all-reduce and is not separately materialised here.
//!
//! # Example
//!
//! ```
//! use dpipe_engine::{EngineConfig, PipelineEngine, SyntheticTask};
//!
//! let task = SyntheticTask::new(2, 8, 16, 42); // frozen blocks, dim, batch, seed
//! let cfg = EngineConfig {
//!     stage_layers: vec![2, 2],
//!     micro_batches: 4,
//!     dp_groups: 1,
//!     lr: 0.05,
//!     optimizer: None,
//! };
//! let stats = PipelineEngine::train(&task, &cfg, 3).unwrap();
//! assert_eq!(stats.losses.len(), 3);
//! ```

mod data;
mod exec;
mod program;
mod reference;

pub use data::SyntheticTask;
pub use exec::{EngineError, PipelineEngine, TrainStats};
pub use program::{generate_program, EngineConfig, EngineInstr};
pub use reference::ReferenceTrainer;
