//! Synthetic training task: frozen encoder + trainable backbone + data.

use dpipe_tensor::{Matrix, Mlp};

/// A self-contained training task mirroring a diffusion model's structure:
/// a frozen encoder whose outputs feed a trainable backbone, plus a
/// deterministic synthetic dataset.
pub struct SyntheticTask {
    /// Frozen encoder (never updated).
    pub frozen_blocks: usize,
    /// Hidden width.
    pub dim: usize,
    /// Global batch size per iteration.
    pub batch: usize,
    /// Seed for weights and data.
    pub seed: u64,
    /// Train with self-conditioning: an extra detached forward pass whose
    /// output conditions the main pass (paper §2.1 / Fig. 10).
    pub self_cond: bool,
}

impl SyntheticTask {
    /// Creates a task description (self-conditioning off).
    pub fn new(frozen_blocks: usize, dim: usize, batch: usize, seed: u64) -> Self {
        SyntheticTask {
            frozen_blocks,
            dim,
            batch,
            seed,
            self_cond: false,
        }
    }

    /// Enables self-conditioning.
    pub fn with_self_conditioning(mut self) -> Self {
        self.self_cond = true;
        self
    }

    /// The conditioning mix: the main pass input is
    /// `encoded + SC_MIX * first_pass_output` (first pass detached).
    pub const SC_MIX: f32 = 0.5;

    /// The frozen encoder (same weights every call).
    pub fn build_frozen(&self) -> Mlp {
        Mlp::uniform(
            self.frozen_blocks,
            self.dim,
            self.seed.wrapping_mul(31).wrapping_add(5),
        )
    }

    /// A fresh backbone with `blocks` Linear+SiLU blocks (same weights every
    /// call — both the engine and the reference start identically).
    pub fn build_backbone(&self, blocks: usize) -> Mlp {
        Mlp::uniform(blocks, self.dim, self.seed)
    }

    /// Raw input and regression target for iteration `iter`. The target is
    /// a fixed function of the input (`y = 0.1·x`) so the task is learnable
    /// and losses trend downward across iterations.
    pub fn batch_for(&self, iter: usize) -> (Matrix, Matrix) {
        let x = Matrix::randn(self.batch, self.dim, self.seed ^ ((iter as u64) << 1));
        let y = x.scale(0.1);
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        let t = SyntheticTask::new(1, 4, 8, 7);
        assert_eq!(t.build_backbone(2).params(), t.build_backbone(2).params());
        assert_eq!(t.build_frozen().params(), t.build_frozen().params());
        let (x1, _) = t.batch_for(3);
        let (x2, _) = t.batch_for(3);
        assert_eq!(x1, x2);
    }

    #[test]
    fn different_iterations_differ() {
        let t = SyntheticTask::new(1, 4, 8, 7);
        let (x1, y1) = t.batch_for(0);
        let (x2, y2) = t.batch_for(1);
        assert_ne!(x1, x2);
        assert_ne!(y1, y2);
        assert!(y1.max_abs_diff(&x1.scale(0.1)) < 1e-7);
    }

    #[test]
    fn frozen_and_backbone_have_distinct_weights() {
        let t = SyntheticTask::new(2, 4, 8, 7);
        assert_ne!(t.build_frozen().params(), t.build_backbone(2).params());
    }
}
