//! Migration soundness: the re-layouts the degraded-mode planner proposes
//! after a node drop (fewer stages, fewer data-parallel replicas) are pure
//! re-decompositions — they compute the same training math as the layout
//! they replace. If this holds, a `MigrationDiff` can be applied to a live
//! job without changing what the job learns.

use dpipe_engine::{EngineConfig, PipelineEngine, SyntheticTask};

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn config(stage_layers: Vec<usize>, micro_batches: usize, dp_groups: usize) -> EngineConfig {
    EngineConfig {
        stage_layers,
        micro_batches,
        dp_groups,
        lr: 0.03,
        optimizer: None,
    }
}

/// Trains the same task under two configurations and asserts the losses
/// and final parameters agree to float tolerance.
fn assert_equivalent(task: &SyntheticTask, before: EngineConfig, after: EngineConfig) {
    let old = PipelineEngine::train(task, &before, 3).expect("pre-migration layout trains");
    let new = PipelineEngine::train(task, &after, 3).expect("post-migration layout trains");
    for (a, b) in old.losses.iter().zip(&new.losses) {
        assert!(
            (a - b).abs() < 5e-4,
            "losses diverged ({a} vs {b}) between {before:?} and {after:?}"
        );
    }
    let diff = max_diff(&old.final_params, &new.final_params);
    assert!(
        diff < 5e-4,
        "params diverged by {diff} between {before:?} and {after:?}"
    );
}

/// Stage consolidation: a 4-stage pipeline squeezed onto fewer surviving
/// devices as [1,1,2] or all the way down to a single stage.
#[test]
fn consolidating_stages_preserves_training() {
    let task = SyntheticTask::new(1, 6, 16, 11);
    assert_equivalent(
        &task,
        config(vec![1, 1, 1, 1], 2, 1),
        config(vec![1, 1, 2], 2, 1),
    );
    assert_equivalent(&task, config(vec![1, 1, 1, 1], 2, 1), config(vec![4], 2, 1));
}

/// Losing a data-parallel replica: two groups collapse to one, with the
/// micro-batch count doubled so the gradient partition is unchanged.
#[test]
fn collapsing_a_dp_group_preserves_training() {
    let task = SyntheticTask::new(1, 6, 16, 23);
    assert_equivalent(&task, config(vec![2, 2], 2, 2), config(vec![2, 2], 4, 1));
}

/// The combined event the simulator's node-drop path produces: fewer
/// replicas *and* a different stage split at once.
#[test]
fn simultaneous_regroup_and_resplit_preserves_training() {
    let task = SyntheticTask::new(1, 6, 16, 37).with_self_conditioning();
    assert_equivalent(&task, config(vec![1, 3], 2, 2), config(vec![2, 2], 4, 1));
}
