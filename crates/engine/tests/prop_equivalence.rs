//! Property test: *every* pipeline/data-parallel decomposition trains
//! identically to the single-device reference (the paper's §3.2 equivalence
//! claim, quantified over random configurations).

use dpipe_engine::{EngineConfig, PipelineEngine, ReferenceTrainer, SyntheticTask};
use proptest::prelude::*;

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_decomposition_matches_reference(
        // Random stage split of 4 blocks into 1..=4 stages.
        split_idx in 0usize..8,
        micro_pow in 0u32..3,
        two_groups in any::<bool>(),
        self_cond in any::<bool>(),
        seed in 0u64..100,
    ) {
        let splits: [&[usize]; 8] = [
            &[4], &[2, 2], &[1, 3], &[3, 1], &[1, 1, 2], &[2, 1, 1], &[1, 2, 1], &[1, 1, 1, 1],
        ];
        let stage_layers = splits[split_idx].to_vec();
        let micro = 1usize << micro_pow;
        let groups = if two_groups { 2 } else { 1 };
        let mut task = SyntheticTask::new(1, 6, 16, seed);
        if self_cond {
            task = task.with_self_conditioning();
        }
        let cfg = EngineConfig {
            stage_layers,
            micro_batches: micro,
            dp_groups: groups,
            lr: 0.03,
            optimizer: None,
        };
        let stats = PipelineEngine::train(&task, &cfg, 3).unwrap();
        // Reference with matching micro-batch partition: groups x micros.
        let mut reference = ReferenceTrainer::new(&task, 4, groups * micro, 0.03);
        let ref_losses = reference.train(&task, 3);
        for (a, b) in stats.losses.iter().zip(&ref_losses) {
            prop_assert!((a - b).abs() < 5e-4, "loss {a} vs {b}");
        }
        let diff = max_diff(&stats.final_params, &reference.params());
        prop_assert!(diff < 5e-4, "params diverged by {diff} for cfg {cfg:?}");
    }
}
