//! Shared helpers for the table/figure harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6); `cargo bench` additionally times the algorithmic
//! kernels themselves. See `EXPERIMENTS.md` for the recorded outputs.

use dpipe_cluster::ClusterSpec;
use dpipe_model::ModelSpec;
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};

/// Profiles `model` for `batch` on `cluster` with the default device model.
pub fn profile(model: &ModelSpec, cluster: &ClusterSpec, batch: u32) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like())
        .with_world_size(cluster.world_size())
        .profile(model, batch)
        .0
}

/// Formats a throughput cell, marking OOM.
pub fn cell(throughput: f64, oom: bool) -> String {
    if oom {
        "OOM".to_owned()
    } else {
        format!("{throughput:.1}")
    }
}

/// Prints a markdown-style header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(13 * cols.len()));
}

/// Prints a row of preformatted cells.
pub fn row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats() {
        assert_eq!(cell(12.345, false), "12.3");
        assert_eq!(cell(12.3, true), "OOM");
    }
}
