//! `plan_bench` — the planner fast-path benchmark harness.
//!
//! Times, on three zoo models (SD v2.1, DiT-XL/2, SDXL) at the paper's
//! 64-GPU shape:
//!
//! 1. **cold single-config DP** — one `partition_single` call, fast path
//!    (including its own `CostPrefix` build) vs the naive reference DP;
//! 2. **full plan calls** — `Planner::plan` sequential and parallel vs
//!    `Planner::plan_reference` (the pre-optimisation loop), asserting the
//!    plans are byte-identical;
//! 3. **warm-cache serve throughput** — repeated `plan_one` calls against
//!    a `PlanService` once the plan is cached.
//!
//! Also runs a **heterogeneous scenario**: a mixed A100/H100 fleet planned
//! fast vs reference (byte-identity gated like the homogeneous models) with
//! its serve-cache fingerprint checked against the homogeneous cluster's.
//!
//! Every scenario is loaded from a committed declarative spec file under
//! `examples/specs/` (the same files `dpipe plan --spec` executes), so the
//! bench inputs are reviewable data, not code.
//!
//! Writes a machine-readable `BENCH_plan.json` (see README "Performance"
//! for the schema) and exits non-zero if any fast/reference plan pair
//! diverges, so CI can use it as a golden regression gate.
//!
//! ```text
//! plan_bench [--quick] [--out PATH] [--workers N]
//! ```
//!
//! `--workers` pins the parallel-plan worker count (default: all cores).
//! When it resolves to 1 the "parallel" figures would just duplicate the
//! sequential timings, so they are reported as `null` instead — CI pins
//! `--workers 2` to keep the parallel numbers meaningful.

use diffusionpipe_core::Planner;
use dpipe_cluster::DataParallelLayout;
use dpipe_partition::{DpStats, PartitionConfig, Partitioner};
use dpipe_profile::{DeviceModel, Profiler};
use dpipe_serve::json::JsonValue;
use dpipe_serve::{PlanRequest, PlanService, ServiceConfig};
use dpipe_spec::PlanSpec;
use std::process::ExitCode;
use std::time::Instant;

/// Directory of the committed scenario specs, relative to this crate.
const SPEC_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");

/// Loads one committed scenario spec and resolves it to a request. The
/// bench is a correctness gate, so a broken scenario file must fail loudly.
fn load_scenario(file: &str) -> PlanRequest {
    let path = format!("{SPEC_DIR}/{file}");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading scenario spec {path} failed: {e}"));
    let spec = PlanSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("parsing scenario spec {path} failed: {e}"));
    spec.validate()
        .unwrap_or_else(|e| panic!("scenario spec {path} is invalid: {e}"));
    PlanRequest::from_spec(spec)
        .unwrap_or_else(|e| panic!("resolving scenario spec {path} failed: {e}"))
}

/// Minimum wall time over `reps` runs of `f`.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

struct ModelReport {
    name: &'static str,
    gpus: usize,
    batch: u32,
    dp_fast_s: f64,
    dp_reference_s: f64,
    /// The cold benchmark config's own DP counters.
    dp_stats: DpStats,
    /// Aggregate DP counters over every config of one full plan call.
    plan_dp_stats: DpStats,
    plan_reference_s: f64,
    plan_fast_s: f64,
    /// `None` when the run has a single worker: a "parallel" timing with
    /// one worker is just the sequential timing again, so it is reported
    /// as `null` rather than pretending to be a parallel speedup.
    plan_parallel_s: Option<f64>,
    parallel_workers: usize,
    plan_id: String,
    plans_per_s_warm: f64,
    warm_hit_rate: f64,
    mismatch: Option<String>,
}

/// `Some(num)` → JSON number, `None` → `null`.
fn opt_num(v: Option<f64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::Num)
}

impl ModelReport {
    fn speedup_seq(&self) -> f64 {
        self.plan_reference_s / self.plan_fast_s.max(1e-12)
    }

    fn speedup_parallel(&self) -> Option<f64> {
        self.plan_parallel_s
            .map(|p| self.plan_reference_s / p.max(1e-12))
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("model".to_owned(), JsonValue::Str(self.name.to_owned())),
            ("gpus".to_owned(), JsonValue::UInt(self.gpus as u64)),
            (
                "global_batch".to_owned(),
                JsonValue::UInt(u64::from(self.batch)),
            ),
            (
                "cold_dp".to_owned(),
                JsonValue::Object(vec![
                    ("fast_s".to_owned(), JsonValue::Num(self.dp_fast_s)),
                    (
                        "reference_s".to_owned(),
                        JsonValue::Num(self.dp_reference_s),
                    ),
                    (
                        "speedup".to_owned(),
                        JsonValue::Num(self.dp_reference_s / self.dp_fast_s.max(1e-12)),
                    ),
                    (
                        "candidates".to_owned(),
                        JsonValue::UInt(self.dp_stats.candidates),
                    ),
                    ("pruned".to_owned(), JsonValue::UInt(self.dp_stats.pruned)),
                    (
                        "prune_rate".to_owned(),
                        JsonValue::Num(self.dp_stats.prune_rate()),
                    ),
                ]),
            ),
            (
                "full_plan".to_owned(),
                JsonValue::Object(vec![
                    (
                        "reference_s".to_owned(),
                        JsonValue::Num(self.plan_reference_s),
                    ),
                    ("fast_s".to_owned(), JsonValue::Num(self.plan_fast_s)),
                    ("parallel_s".to_owned(), opt_num(self.plan_parallel_s)),
                    (
                        "parallel_workers".to_owned(),
                        JsonValue::UInt(self.parallel_workers as u64),
                    ),
                    ("speedup".to_owned(), JsonValue::Num(self.speedup_seq())),
                    (
                        "speedup_parallel".to_owned(),
                        opt_num(self.speedup_parallel()),
                    ),
                    (
                        "plans_per_s".to_owned(),
                        opt_num(self.plan_parallel_s.map(|p| 1.0 / p.max(1e-12))),
                    ),
                    (
                        "candidates".to_owned(),
                        JsonValue::UInt(self.plan_dp_stats.candidates),
                    ),
                    (
                        "pruned".to_owned(),
                        JsonValue::UInt(self.plan_dp_stats.pruned),
                    ),
                    (
                        "prune_rate".to_owned(),
                        JsonValue::Num(self.plan_dp_stats.prune_rate()),
                    ),
                    ("plan_id".to_owned(), JsonValue::Str(self.plan_id.clone())),
                ]),
            ),
            (
                "serve_warm".to_owned(),
                JsonValue::Object(vec![
                    (
                        "plans_per_s".to_owned(),
                        JsonValue::Num(self.plans_per_s_warm),
                    ),
                    ("hit_rate".to_owned(), JsonValue::Num(self.warm_hit_rate)),
                ]),
            ),
            (
                "byte_identical".to_owned(),
                JsonValue::Bool(self.mismatch.is_none()),
            ),
        ])
    }
}

fn bench_model(
    name: &'static str,
    request: &PlanRequest,
    reps: usize,
    warm_iters: usize,
    parallel_workers: usize,
) -> ModelReport {
    let model = request.model().clone();
    let cluster = request.cluster().clone();
    let gpus = cluster.world_size();
    let batch = request.global_batch();
    let backbone = model.backbones().next().expect("zoo model has backbone").0;

    // 1. Cold single-config DP at the widest uniform shape (S=8, M=8).
    let (db, _) = Profiler::new(DeviceModel::a100_like())
        .with_world_size(cluster.world_size())
        .profile(&model, batch);
    let layout = DataParallelLayout::new(&cluster, gpus).expect("cluster-wide layout");
    let part = Partitioner::new(&db, &cluster, &layout);
    let cfg = PartitionConfig::new(8, 8, batch as f64);
    let (dp_fast_s, _) = time_min(reps, || {
        part.partition_single(backbone, &cfg).expect("feasible cfg")
    });
    let (dp_reference_s, _) = time_min(reps, || {
        part.partition_single_reference(backbone, &cfg)
            .expect("feasible cfg")
    });
    // This one config's own DP counters (the full plan call's aggregate
    // counters are reported separately under `full_plan`).
    let mut dp_stats = DpStats::default();
    let prefixes = part.build_prefixes(backbone, &cfg);
    part.partition_single_with(backbone, &cfg, &prefixes, &mut dp_stats)
        .expect("feasible cfg");

    // 2. Full plan calls: reference vs fast (sequential and, with >= 2
    //    workers, parallel — a 1-worker "parallel" run would only repeat
    //    the sequential timing, so it is skipped and reported as null).
    let planner = Planner::new(model.clone(), cluster.clone());
    let (plan_reference_s, reference) = time_min(reps, || planner.plan_reference(batch).unwrap());
    let (plan_fast_s, (fast, stats)) = time_min(reps, || planner.plan_with_stats(batch).unwrap());
    let (plan_parallel_s, parallel) = if parallel_workers >= 2 {
        let parallel_planner =
            Planner::new(model.clone(), cluster.clone()).with_parallelism(parallel_workers);
        let (secs, plan) = time_min(reps, || parallel_planner.plan(batch).unwrap());
        (Some(secs), Some(plan))
    } else {
        (None, None)
    };

    let mut mismatch = None;
    if fast.summary() != reference.summary() {
        mismatch = Some(format!(
            "sequential fast plan diverged:\n  fast: {}\n  ref : {}",
            fast.summary(),
            reference.summary()
        ));
    } else if let Some(parallel) = &parallel {
        if parallel.summary() != reference.summary() {
            mismatch = Some(format!(
                "parallel fast plan diverged:\n  par: {}\n  ref: {}",
                parallel.summary(),
                reference.summary()
            ));
        }
    }

    // 3. Warm-cache serve throughput.
    let service = PlanService::new(ServiceConfig::with_workers(parallel_workers.max(1)));
    let cold = service.plan_one(request.clone());
    assert!(cold.outcome.is_ok(), "cold serve plan failed");
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..warm_iters {
        let resp = service.plan_one(request.clone());
        hits += usize::from(resp.cache_hit);
    }
    let warm_elapsed = t0.elapsed().as_secs_f64();

    ModelReport {
        name,
        gpus,
        batch,
        dp_fast_s,
        dp_reference_s,
        dp_stats,
        plan_dp_stats: stats.dp,
        plan_reference_s,
        plan_fast_s,
        plan_parallel_s,
        parallel_workers,
        plan_id: format!("{:016x}", fast.fingerprint()),
        plans_per_s_warm: warm_iters as f64 / warm_elapsed.max(1e-12),
        warm_hit_rate: hits as f64 / warm_iters.max(1) as f64,
        mismatch,
    }
}

/// The heterogeneous scenario: SD v2.1 on a mixed A100/H100 fleet, fast vs
/// reference (byte-identity gated) plus a serve-fingerprint cross-check
/// against the homogeneous cluster of the same shape.
struct HeteroReport {
    classes: String,
    plan_fast_s: f64,
    plan_reference_s: f64,
    plan_id: String,
    /// The serve-cache key of the mixed request differs from the
    /// homogeneous request's (a hard requirement: a heterogeneous cluster
    /// must never hit a homogeneous cache entry).
    fingerprint_differs: bool,
    mismatch: Option<String>,
}

impl HeteroReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "model".to_owned(),
                JsonValue::Str("stable-diffusion-v2.1".to_owned()),
            ),
            ("classes".to_owned(), JsonValue::Str(self.classes.clone())),
            ("fast_s".to_owned(), JsonValue::Num(self.plan_fast_s)),
            (
                "reference_s".to_owned(),
                JsonValue::Num(self.plan_reference_s),
            ),
            (
                "speedup".to_owned(),
                JsonValue::Num(self.plan_reference_s / self.plan_fast_s.max(1e-12)),
            ),
            ("plan_id".to_owned(), JsonValue::Str(self.plan_id.clone())),
            (
                "fingerprint_differs".to_owned(),
                JsonValue::Bool(self.fingerprint_differs),
            ),
            (
                "byte_identical".to_owned(),
                JsonValue::Bool(self.mismatch.is_none()),
            ),
        ])
    }
}

/// Run-length class label of a mixed cluster, e.g. `a100:4,h100:4`.
fn class_label(request: &PlanRequest) -> String {
    dpipe_spec::cluster_label(request.cluster())
}

/// The disabled-tracing overhead guard: cold full-plan time with no
/// collector at all (`Tracer::off()`, the default) vs an allocated
/// collector whose enabled flag is off — the state a server with tracing
/// compiled in but not requested runs in. The delta must sit within noise;
/// it is reported, and warned about above 10%, but never fails the run
/// (wall-clock noise on shared CI boxes would make a hard gate flaky).
struct TraceOverheadReport {
    model: &'static str,
    baseline_s: f64,
    disabled_collector_s: f64,
}

impl TraceOverheadReport {
    fn overhead_frac(&self) -> f64 {
        (self.disabled_collector_s - self.baseline_s) / self.baseline_s.max(1e-12)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("model".to_owned(), JsonValue::Str(self.model.to_owned())),
            ("baseline_s".to_owned(), JsonValue::Num(self.baseline_s)),
            (
                "disabled_collector_s".to_owned(),
                JsonValue::Num(self.disabled_collector_s),
            ),
            (
                "overhead_pct".to_owned(),
                JsonValue::Num(self.overhead_frac() * 100.0),
            ),
        ])
    }
}

fn bench_trace_overhead(
    name: &'static str,
    reps: usize,
    request: &PlanRequest,
) -> TraceOverheadReport {
    let batch = request.global_batch();
    let baseline = Planner::new(request.model().clone(), request.cluster().clone());
    let (baseline_s, _) = time_min(reps, || baseline.plan(batch).unwrap());
    let tracer = diffusionpipe_core::Tracer::new();
    tracer.set_enabled(false);
    let instrumented =
        Planner::new(request.model().clone(), request.cluster().clone()).with_tracer(tracer);
    let (disabled_collector_s, _) = time_min(reps, || instrumented.plan(batch).unwrap());
    TraceOverheadReport {
        model: name,
        baseline_s,
        disabled_collector_s,
    }
}

fn bench_hetero(reps: usize, mixed: &PlanRequest, homo: &PlanRequest) -> HeteroReport {
    let batch = mixed.global_batch();
    let planner = Planner::new(mixed.model().clone(), mixed.cluster().clone());
    let (plan_fast_s, fast) = time_min(reps, || planner.plan(batch).unwrap());
    let (plan_reference_s, reference) = time_min(reps, || planner.plan_reference(batch).unwrap());
    let mismatch = (fast.summary() != reference.summary()).then(|| {
        format!(
            "hetero fast plan diverged:\n  fast: {}\n  ref : {}",
            fast.summary(),
            reference.summary()
        )
    });
    HeteroReport {
        classes: class_label(mixed),
        plan_fast_s,
        plan_reference_s,
        plan_id: format!("{:016x}", fast.fingerprint()),
        fingerprint_differs: mixed.fingerprint() != homo.fingerprint(),
        mismatch,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_plan.json".to_owned());
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // An unparseable --workers must fail loudly: silently falling back to
    // all cores would un-pin the parallel figures CI relies on.
    let parallel_workers: usize = match args.iter().position(|a| a == "--workers") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => n.max(1),
            _ => {
                eprintln!("--workers requires a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => default_workers,
    };
    let (reps, warm_iters) = if quick { (1, 40) } else { (3, 200) };

    // Scenarios are committed spec files — the same documents
    // `dpipe plan --spec` executes.
    let models: Vec<(&'static str, PlanRequest)> = vec![
        ("stable-diffusion-v2.1", load_scenario("sd_64gpu_b256.json")),
        ("dit-xl-2", load_scenario("dit_64gpu_b256.json")),
        ("sdxl-base", load_scenario("sdxl_64gpu_b256.json")),
    ];

    let mut reports = Vec::new();
    let mut failed = false;
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10} {:>10} {:>9} {:>10} {:>8}",
        "model",
        "ref dp ms",
        "fast dp",
        "prune",
        "ref plan",
        "fast plan",
        "speedup",
        "warm p/s",
        "ident"
    );
    for (name, request) in &models {
        let r = bench_model(name, request, reps, warm_iters, parallel_workers);
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>8.0}% {:>10.1} {:>10.1} {:>8.1}x {:>10.0} {:>8}",
            r.name,
            r.dp_reference_s * 1e3,
            r.dp_fast_s * 1e3,
            r.dp_stats.prune_rate() * 100.0,
            r.plan_reference_s * 1e3,
            r.plan_fast_s * 1e3,
            r.speedup_seq(),
            r.plans_per_s_warm,
            if r.mismatch.is_none() { "yes" } else { "NO" },
        );
        if let Some(m) = &r.mismatch {
            eprintln!("golden mismatch for {}:\n{m}", r.name);
            failed = true;
        }
        reports.push(r);
    }

    let mixed_request = load_scenario("sd_mixed_a100_h100_b256.json");
    let hetero = bench_hetero(reps, &mixed_request, &models[0].1);
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10.1} {:>10.1} {:>8.1}x {:>10} {:>8}",
        format!("sd-mixed[{}]", hetero.classes),
        "-",
        "-",
        "-",
        hetero.plan_reference_s * 1e3,
        hetero.plan_fast_s * 1e3,
        hetero.plan_reference_s / hetero.plan_fast_s.max(1e-12),
        "-",
        if hetero.mismatch.is_none() {
            "yes"
        } else {
            "NO"
        },
    );
    if let Some(m) = &hetero.mismatch {
        eprintln!("golden mismatch for heterogeneous scenario:\n{m}");
        failed = true;
    }
    if !hetero.fingerprint_differs {
        eprintln!("heterogeneous request fingerprint collides with the homogeneous one");
        failed = true;
    }

    let trace_overhead = bench_trace_overhead("stable-diffusion-v2.1", reps, &models[0].1);
    println!(
        "\ntrace overhead (collector allocated, disabled): {:.1} ms vs {:.1} ms baseline \
         ({:+.1}%)",
        trace_overhead.disabled_collector_s * 1e3,
        trace_overhead.baseline_s * 1e3,
        trace_overhead.overhead_frac() * 100.0,
    );
    if trace_overhead.overhead_frac() > 0.10 {
        eprintln!(
            "warning: disabled-tracing overhead {:.1}% exceeds the 10% noise budget",
            trace_overhead.overhead_frac() * 100.0
        );
    }

    let headline = reports
        .iter()
        .find(|r| r.name == "sdxl-base")
        .expect("sdxl benched");
    let doc = JsonValue::Object(vec![
        (
            "benchmark".to_owned(),
            JsonValue::Str("plan_bench".to_owned()),
        ),
        ("quick".to_owned(), JsonValue::Bool(quick)),
        (
            "headline".to_owned(),
            JsonValue::Object(vec![
                ("model".to_owned(), JsonValue::Str(headline.name.to_owned())),
                ("speedup".to_owned(), JsonValue::Num(headline.speedup_seq())),
                (
                    "speedup_parallel".to_owned(),
                    opt_num(headline.speedup_parallel()),
                ),
                ("target_speedup".to_owned(), JsonValue::Num(5.0)),
            ]),
        ),
        (
            "models".to_owned(),
            JsonValue::Array(reports.iter().map(ModelReport::to_json).collect()),
        ),
        ("hetero".to_owned(), hetero.to_json()),
        ("trace_overhead".to_owned(), trace_overhead.to_json()),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{doc}\n")) {
        eprintln!("writing {out_path} failed: {e}");
        return ExitCode::FAILURE;
    }
    match headline.speedup_parallel() {
        Some(par) => println!(
            "\nheadline: {} full-plan speedup {:.1}x sequential / {:.1}x with {} workers -> {}",
            headline.name,
            headline.speedup_seq(),
            par,
            headline.parallel_workers,
            out_path
        ),
        None => println!(
            "\nheadline: {} full-plan speedup {:.1}x sequential (parallel skipped: 1 worker) -> {}",
            headline.name,
            headline.speedup_seq(),
            out_path
        ),
    }
    if failed {
        eprintln!("plan equivalence golden check FAILED");
        return ExitCode::from(2);
    }
    if headline.speedup_seq() < 5.0 {
        eprintln!(
            "warning: headline sequential speedup {:.1}x below the 5x target",
            headline.speedup_seq()
        );
    }
    ExitCode::SUCCESS
}
