//! Fig. 5: execution time of every non-trainable (frozen) layer at batch 64.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig5`

use dpipe_bench::profile;
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

/// Renders a crude log-scale dot for a value in milliseconds.
fn bar(ms: f64) -> String {
    let pos = ((ms.log10() + 1.0) * 12.0).clamp(0.0, 60.0) as usize;
    let mut s = " ".repeat(pos);
    s.push('*');
    s
}

fn main() {
    let cluster = ClusterSpec::single_node(1);
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "(a) Stable Diffusion v2.1"),
        (zoo::controlnet_v1_0(), "(b) ControlNet v1.0"),
    ] {
        println!("\nFig. 5 {name}: frozen layer times at batch 64 (log scale 0.1ms .. 1s)");
        let db = profile(&model, &cluster, 64);
        let mut index = 0usize;
        for (cid, comp) in model.frozen_components() {
            for (lid, layer) in comp.layers_enumerated() {
                let ms = db.fwd_time(cid, lid, 64.0) * 1e3;
                println!(
                    "{index:>3} {:<24} {:>9.2} ms |{}",
                    format!("{}/{}", comp.name, layer.name),
                    ms,
                    bar(ms)
                );
                index += 1;
            }
        }
    }
    println!("\npaper: many sub-ms text-encoder layers (indices 0-21), moderate 1-30ms");
    println!("VAE layers, and a few extra-long (>100ms, up to ~400ms) layers");
}
