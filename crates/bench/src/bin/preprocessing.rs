//! §6.4: pre-processing overhead — profiling, partitioning and bubble
//! filling costs of the offline planning pass.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin preprocessing`

use diffusionpipe_core::Planner;
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

fn main() {
    println!("§6.4: pre-processing overhead\n");
    println!(
        "{:<14} {:>6} {:>6} {:>18} {:>16} {:>12}",
        "model", "gpus", "batch", "profiling (sim s)", "partition (s)", "fill (s)"
    );
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        for machines in [2usize, 8] {
            let cluster = ClusterSpec::p4de(machines);
            let world = cluster.world_size();
            let batch = 32 * world as u32;
            let plan = Planner::new(model.clone(), cluster.clone())
                .plan(batch)
                .unwrap();
            println!(
                "{:<14} {:>6} {:>6} {:>18.1} {:>16.3} {:>12.3}",
                name,
                world,
                batch,
                plan.preprocessing.profiling_seconds,
                plan.preprocessing.partition_seconds,
                plan.preprocessing.fill_seconds
            );
        }
    }
    println!("\npaper: profiling ~55 s (SD v2.1, 2 machines, batch 512, parallel),");
    println!("partitioning ~0.5 s, bubble filling < 1 s — all one-off offline costs");
}
