//! Fig. 6: execution time of the top-3 longest frozen layers versus batch
//! size, compared to the longest pipeline bubble at 4 micro-batches for 2–4
//! stages (batch 64, FIFO-1F1B).
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig6`

use dpipe_bench::profile;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::{zoo, LayerId};
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_schedule::{ScheduleBuilder, ScheduleKind};

fn main() {
    for (mut model, name) in [
        (zoo::stable_diffusion_v2_1(), "(a) Stable Diffusion v2.1"),
        (zoo::controlnet_v1_0(), "(b) ControlNet v1.0"),
    ] {
        model.self_conditioning = None;
        println!("\nFig. 6 {name}");
        let cluster = ClusterSpec::single_node(4);
        let db = profile(&model, &cluster, 64);

        // Top-3 frozen layers by time at batch 64.
        let mut layers: Vec<(String, dpipe_model::ComponentId, LayerId, f64)> = model
            .frozen_components()
            .flat_map(|(cid, comp)| {
                comp.layers_enumerated()
                    .map(move |(lid, l)| (l.name.clone(), cid, lid, 0.0))
            })
            .collect();
        for e in &mut layers {
            e.3 = db.fwd_time(e.1, e.2, 64.0);
        }
        layers.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap());
        println!("top-3 frozen layer times (ms) by batch size:");
        print!("{:<20}", "layer \\ batch");
        let batches = [4.0, 8.0, 16.0, 32.0, 48.0, 64.0];
        for b in batches {
            print!("{b:>9}");
        }
        println!();
        for (lname, cid, lid, _) in layers.iter().take(3) {
            print!("{lname:<20}");
            for b in batches {
                print!("{:>9.0}", db.fwd_time(*cid, *lid, b) * 1e3);
            }
            println!();
        }

        // Longest bubble for 2-4 stages at 4 micro-batches, batch 64.
        println!("\nlongest pipeline bubble at M=4, batch 64 (ms):");
        let bb = model.backbones().next().unwrap().0;
        for stages in [2usize, 3, 4] {
            let cluster = ClusterSpec::single_node(stages);
            let db = profile(&model, &cluster, 64);
            let layout = DataParallelLayout::new(&cluster, stages).unwrap();
            let plan = Partitioner::new(&db, &cluster, &layout)
                .partition_single(bb, &PartitionConfig::new(stages, 4, 64.0))
                .unwrap();
            let sched = ScheduleBuilder::new(&db, &cluster, &layout)
                .build_single(&plan, ScheduleKind::Fifo1F1B)
                .unwrap();
            let longest = sched
                .bubbles(0.0)
                .iter()
                .map(|b| b.duration())
                .fold(0.0, f64::max);
            println!("  {stages} stages: {:.0} ms", longest * 1e3);
        }
    }
    println!("\npaper: top layers ~400ms at batch 64, dropping under the longest bubble");
    println!("(~100-200ms) once the batch shrinks to ~16 — motivating partial-batch layers");
}
