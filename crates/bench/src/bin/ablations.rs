//! Design-choice ablations beyond the paper's Fig. 15 (the DESIGN.md §3
//! list): cross-iteration overlap, bidirectional vs. separate-device CDM
//! training, DP partitioning vs. equal split, and the minimum-bubble
//! threshold.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin ablations`

use dpipe_bench::profile;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_fill::{FillConfig, Filler};
use dpipe_model::zoo;
use dpipe_partition::{PartitionConfig, PartitionPlan, Partitioner, StagePlan};
use dpipe_schedule::{ScheduleBuilder, ScheduleKind};
use dpipe_sim::CombinedIteration;

/// Ablation 1 — cross-iteration overlap: the same pipeline plan with the
/// frozen part (a) filled into bubbles cross-iteration vs. (b) run serially
/// before the pipeline (Fig. 9 top vs. bottom).
fn cross_iteration_overlap() {
    println!("\n[1] cross-iteration overlap (ControlNet, 8 GPUs, batch 384)");
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let db = profile(&model, &cluster, 384);
    let layout = DataParallelLayout::new(&cluster, 2).unwrap();
    let bb = model.backbones().next().unwrap().0;
    let plan = Partitioner::new(&db, &cluster, &layout)
        .partition_single(bb, &PartitionConfig::new(2, 1, 96.0))
        .unwrap();
    let sched = ScheduleBuilder::new(&db, &cluster, &layout)
        .build_single(&plan, ScheduleKind::Fifo1F1B)
        .unwrap();
    let bubbles = sched.bubbles(0.010);
    let filler = Filler::new(&db, FillConfig::default());
    let fill = filler.fill(&bubbles, sched.group_batch, 2).unwrap();
    let overlapped = CombinedIteration::new(&sched, &bubbles, &fill);
    let serial_tail = filler.baseline_frozen_time(sched.group_batch, 2);
    let serial = CombinedIteration::without_filling(&sched, serial_tail);
    println!(
        "  cross-iteration fill : {:>7.1} samples/s (iter {:.0} ms)",
        overlapped.cluster_throughput(4),
        overlapped.iteration_time() * 1e3
    );
    println!(
        "  serial frozen part   : {:>7.1} samples/s (iter {:.0} ms)",
        serial.cluster_throughput(4),
        serial.iteration_time() * 1e3
    );
}

/// Ablation 2 — bidirectional CDM pipelines on all devices vs. one
/// unidirectional pipeline per backbone on half the devices each.
fn bidirectional_vs_separate() {
    println!("\n[2] CDM-LSUN: bidirectional (shared devices) vs separate pipelines");
    let model = zoo::cdm_lsun();
    let cluster = ClusterSpec::single_node(8);
    let batch = 256u32;
    let db = profile(&model, &cluster, batch);
    let mut bbs = model.backbones().map(|(id, _)| id);
    let b0 = bbs.next().unwrap();
    let b1 = bbs.next().unwrap();

    // Bidirectional on all 8 devices (one group).
    let layout8 = DataParallelLayout::new(&cluster, 8).unwrap();
    let part = Partitioner::new(&db, &cluster, &layout8);
    let bi = part
        .partition_bidirectional(b0, b1, &PartitionConfig::new(4, 4, batch as f64))
        .unwrap();
    let bi_sched = ScheduleBuilder::new(&db, &cluster, &layout8)
        .build_bidirectional(&bi)
        .unwrap();
    let bi_throughput = bi_sched.group_batch / bi_sched.iteration_time();

    // Separate: each backbone on 4 devices, both running concurrently.
    let cluster4 = ClusterSpec::single_node(4);
    let db4 = profile(&model, &cluster4, batch);
    let layout4 = DataParallelLayout::new(&cluster4, 4).unwrap();
    let part4 = Partitioner::new(&db4, &cluster4, &layout4);
    let mut worst = 0.0f64;
    for b in [b0, b1] {
        let p = part4
            .partition_single(b, &PartitionConfig::new(4, 4, batch as f64))
            .unwrap();
        let s = ScheduleBuilder::new(&db4, &cluster4, &layout4)
            .build_single(&p, ScheduleKind::Fifo1F1B)
            .unwrap();
        worst = worst.max(s.iteration_time());
    }
    let sep_throughput = 2.0 * batch as f64 / worst;
    println!("  bidirectional shared : {bi_throughput:>7.1} samples/s");
    println!("  separate device halves: {sep_throughput:>6.1} samples/s");
}

/// Ablation 3 — the §4 DP partitioner vs. an equal-layer split at the same
/// (S, M). SD's U-Net has nearly uniform blocks where equal split is
/// already fine; skewing the first blocks (as in higher-resolution front
/// ends) is where the DP earns its keep.
fn partition_quality() {
    // 8 micro-batches: enough pipelining depth that stage balance governs
    // the makespan (at tiny M a front-loaded bottleneck can paradoxically
    // win because other stages drain inside its busy time).
    println!("\n[3] partition quality (skewed SD v2.1, 4 stages, 8 micro-batches)");
    let mut model = zoo::stable_diffusion_v2_1();
    model.self_conditioning = None;
    {
        let bb = model
            .components
            .iter_mut()
            .find(|c| c.is_trainable())
            .unwrap();
        for l in bb.layers.iter_mut().take(6) {
            l.flops_per_sample *= 2.5;
        }
    }
    let cluster = ClusterSpec::single_node(4);
    let db = profile(&model, &cluster, 64);
    let layout = DataParallelLayout::new(&cluster, 4).unwrap();
    let bb = model.backbones().next().unwrap().0;
    let builder = ScheduleBuilder::new(&db, &cluster, &layout);

    let dp_plan = Partitioner::new(&db, &cluster, &layout)
        .partition_single(bb, &PartitionConfig::new(4, 8, 64.0))
        .unwrap();
    let dp_sched = builder
        .build_single(&dp_plan, ScheduleKind::Fifo1F1B)
        .unwrap();

    // Equal split: 7 layers per stage.
    let layers = model.component(bb).num_layers();
    let per = layers / 4;
    let equal_plan = PartitionPlan {
        stages: (0..4)
            .map(|s| StagePlan {
                component: bb,
                layers: s * per..(s + 1) * per,
                replication: 1,
                device_offsets: vec![s],
            })
            .collect(),
        num_micro_batches: 8,
        micro_batch: 8.0,
        t0: 0.0,
        t_sync_gap: 0.0,
        t_max: 0.0,
    };
    let eq_sched = builder
        .build_single(&equal_plan, ScheduleKind::Fifo1F1B)
        .unwrap();
    println!(
        "  DP partitioner  : makespan {:.0} ms  (layer cuts {:?})",
        dp_sched.compute_end() * 1e3,
        dp_plan
            .stages
            .iter()
            .map(|s| s.layers.clone())
            .collect::<Vec<_>>()
    );
    println!(
        "  equal split     : makespan {:.0} ms",
        eq_sched.compute_end() * 1e3
    );
}

/// Ablation 4 — minimum-bubble threshold sweep (the paper uses 10 ms).
fn bubble_threshold() {
    println!("\n[4] minimum-bubble threshold (ControlNet, 8 GPUs, batch 384)");
    let model = zoo::controlnet_v1_0();
    let cluster = ClusterSpec::single_node(8);
    let db = profile(&model, &cluster, 384);
    let layout = DataParallelLayout::new(&cluster, 2).unwrap();
    let bb = model.backbones().next().unwrap().0;
    let plan = Partitioner::new(&db, &cluster, &layout)
        .partition_single(bb, &PartitionConfig::new(2, 2, 96.0))
        .unwrap();
    let sched = ScheduleBuilder::new(&db, &cluster, &layout)
        .build_single(&plan, ScheduleKind::Fifo1F1B)
        .unwrap();
    for min_ms in [1.0, 10.0, 50.0, 100.0] {
        let bubbles = sched.bubbles(min_ms * 1e-3);
        // The setup cost grows with smaller thresholds in practice; the
        // default config charges it per item either way.
        let fill = Filler::new(
            &db,
            FillConfig {
                min_bubble_seconds: min_ms * 1e-3,
                ..FillConfig::default()
            },
        )
        .fill(&bubbles, sched.group_batch, 2)
        .unwrap();
        let combined = CombinedIteration::new(&sched, &bubbles, &fill);
        println!(
            "  threshold {min_ms:>5.0} ms: {} bubbles considered, fill ratio {:>5.1}%, iter {:.0} ms",
            bubbles.len(),
            fill.fill_ratio() * 100.0,
            combined.iteration_time() * 1e3
        );
    }
}

fn main() {
    println!("DiffusionPipe design-choice ablations (DESIGN.md §3)");
    cross_iteration_overlap();
    bidirectional_vs_separate();
    partition_quality();
    bubble_threshold();
}
