//! Fig. 13: training throughput (samples/second) across cluster scales and
//! batch sizes, DiffusionPipe vs all baselines.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig13 [sd|controlnet|cdm-lsun|cdm-imagenet|all]`
//!
//! Single-backbone models sweep the paper's per-scale batch ladder in both
//! the vanilla and self-conditioning cases; CDMs compare against the
//! DeepSpeed(-ZeRO-3)-S/-P modes.

use diffusionpipe_core::Planner;
use dpipe_baselines::{cdm_data_parallel, ddp, gpipe, spp, zero3, CdmMode};
use dpipe_bench::{cell, profile};
use dpipe_cluster::ClusterSpec;
use dpipe_model::{zoo, ModelSpec};
use dpipe_partition::SearchSpace;

/// Batch ladder per world size: the paper scales {8, 16, 32, 48}x world for
/// single-backbone models (64..3072 across 8..64 GPUs).
fn batches(world: usize) -> Vec<u32> {
    [8u32, 16, 32, 48]
        .iter()
        .map(|m| m * world as u32)
        .collect()
}

fn single_backbone(model: &ModelSpec, label: &str) {
    for self_cond in [false, true] {
        let mut model = model.clone();
        if !self_cond {
            model.self_conditioning = None;
        }
        let case = if self_cond {
            "self-conditioning"
        } else {
            "vanilla case"
        };
        for machines in [1usize, 2, 4, 8] {
            let cluster = ClusterSpec::p4de(machines);
            let world = cluster.world_size();
            println!("\n=== Fig. 13 {label}: {world} GPUs, {case} (samples/s) ===");
            println!(
                "{:>7} {:>13} {:>10} {:>10} {:>10} {:>10}",
                "batch", "diffusionpipe", "spp", "gpipe", "deepspeed", "zero3"
            );
            for batch in batches(world) {
                let plan = Planner::new(model.clone(), cluster.clone()).plan(batch);
                let db = profile(&model, &cluster, batch);
                let bb = model.backbones().next().expect("backbone").0;
                let r_spp = spp(&db, &cluster, bb, batch, &SearchSpace::default());
                let r_gpipe = gpipe(&db, &cluster, bb, batch, 2, 4);
                let r_ddp = ddp(&db, &cluster, batch);
                let r_z3 = zero3(&db, &cluster, batch);
                println!(
                    "{:>7} {:>13} {:>10} {:>10} {:>10} {:>10}",
                    batch,
                    plan.map(|p| cell(p.throughput, false))
                        .unwrap_or_else(|_| "OOM".into()),
                    r_spp
                        .map(|r| cell(r.throughput, r.oom))
                        .unwrap_or_else(|e| e.chars().take(6).collect()),
                    r_gpipe
                        .map(|r| cell(r.throughput, r.oom))
                        .unwrap_or_else(|e| e.chars().take(6).collect()),
                    cell(r_ddp.throughput, r_ddp.oom),
                    cell(r_z3.throughput, r_z3.oom),
                );
            }
        }
    }
}

fn cdm(model: &ModelSpec, label: &str) {
    for machines in [1usize, 2, 4, 8] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        println!("\n=== Fig. 13 {label}: {world} GPUs (samples/s, batch per backbone) ===");
        println!(
            "{:>7} {:>13} {:>12} {:>12} {:>12} {:>12}",
            "batch", "diffusionpipe", "ds-s", "ds-p", "zero3-s", "zero3-p"
        );
        for mult in [16u32, 32, 48, 64] {
            let batch = mult * world as u32;
            let plan = Planner::new(model.clone(), cluster.clone()).plan(batch);
            let db = profile(model, &cluster, batch);
            let rows = [
                cdm_data_parallel(&db, &cluster, batch, CdmMode::Sequential, false),
                cdm_data_parallel(&db, &cluster, batch, CdmMode::Parallel, false),
                cdm_data_parallel(&db, &cluster, batch, CdmMode::Sequential, true),
                cdm_data_parallel(&db, &cluster, batch, CdmMode::Parallel, true),
            ];
            println!(
                "{:>7} {:>13} {:>12} {:>12} {:>12} {:>12}",
                batch,
                plan.map(|p| cell(p.throughput, false))
                    .unwrap_or_else(|_| "OOM".into()),
                cell(rows[0].throughput, rows[0].oom),
                cell(rows[1].throughput, rows[1].oom),
                cell(rows[2].throughput, rows[2].oom),
                cell(rows[3].throughput, rows[3].oom),
            );
        }
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    if matches!(which.as_str(), "sd" | "all") {
        single_backbone(&zoo::stable_diffusion_v2_1(), "(a) Stable Diffusion v2.1");
    }
    if matches!(which.as_str(), "controlnet" | "all") {
        single_backbone(&zoo::controlnet_v1_0(), "(b) ControlNet v1.0");
    }
    if matches!(which.as_str(), "cdm-lsun" | "all") {
        cdm(&zoo::cdm_lsun(), "(c) CDM-LSUN");
    }
    if matches!(which.as_str(), "cdm-imagenet" | "all") {
        cdm(&zoo::cdm_imagenet(), "(d) CDM-ImageNet");
    }
    println!("\npaper headlines: up to 1.41x over pipeline baselines, up to 1.28x over");
    println!("data parallel at scale; CDMs comparable to DeepSpeed-P with lower memory");
}
