//! Fig. 15: ablation study on 8 GPUs — DiffusionPipe with the partial-batch
//! layer design disabled, and with bubble filling disabled entirely.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig15`

use diffusionpipe_core::{Planner, PlannerOptions};
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

fn main() {
    println!("Fig. 15: ablation on 8 GPUs (samples/s)\n");
    println!(
        "{:<14} {:>6} {:>15} {:>18} {:>16}",
        "model", "batch", "diffusionpipe", "partial disabled", "fill disabled"
    );
    let cluster = ClusterSpec::single_node(8);
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        for batch in [256u32, 384] {
            let full = Planner::new(model.clone(), cluster.clone())
                .plan(batch)
                .unwrap();
            let no_partial = Planner::new(model.clone(), cluster.clone())
                .with_options(PlannerOptions {
                    bubble_filling: true,
                    partial_batch: false,
                })
                .plan(batch)
                .unwrap();
            let no_fill = Planner::new(model.clone(), cluster.clone())
                .with_options(PlannerOptions {
                    bubble_filling: false,
                    partial_batch: false,
                })
                .plan(batch)
                .unwrap();
            println!(
                "{:<14} {:>6} {:>15.1} {:>18.1} {:>16.1}",
                name, batch, full.throughput, no_partial.throughput, no_fill.throughput
            );
        }
    }
    println!("\npaper (controlnet@256): partial-batch off -10.9%, filling off -17.6%;");
    println!("at batch 384 partial-batch-off collapses toward filling-off (the extra-long");
    println!("frozen layer blocks every layer behind it)");
}
