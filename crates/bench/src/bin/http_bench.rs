//! `http_bench` — closed-loop load generator for the HTTP planning
//! frontend (`dpipe serve --listen`).
//!
//! Starts an in-process [`HttpServer`] on an ephemeral port and drives it
//! with N concurrent persistent connections through two phases:
//!
//! 1. **cold** — every request is a distinct spec (unique global batch), so
//!    each one planned from scratch: the worst case for the service;
//! 2. **warm mix** — requests cycle over a small seeded spec set with a
//!    fresh cold spec mixed in every eighth request: the steady state of a
//!    control plane asking mostly-repeated questions.
//!
//! Latency is measured *client-side* (connect-to-last-byte per request), so
//! the reported p50/p99 include the wire and any queueing, not just plan
//! time. A 503 shed is retried in place with bounded exponential backoff
//! (10/20/40 ms, three attempts) the way a well-behaved control-plane
//! client would; only a request still shed after the last attempt counts
//! as `shed_503`. Every response must be well-formed: 200s and shed 503s
//! are counted, anything else (or a transport error, or a panic) fails the
//! run. Writes a machine-readable `BENCH_serve.json`.
//!
//! ```text
//! http_bench [--quick] [--out PATH] [--connections N]
//! ```

use dpipe_http::{HttpClient, HttpServer, ServerConfig};
use dpipe_serve::json::{parse, JsonValue};
use dpipe_spec::PlanSpec;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const SPEC_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");

/// The template scenario all request bodies derive from.
fn template_spec() -> PlanSpec {
    let path = format!("{SPEC_DIR}/sd_8gpu_b256.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading scenario spec {path} failed: {e}"));
    PlanSpec::from_json(&text)
        .unwrap_or_else(|e| panic!("parsing scenario spec {path} failed: {e}"))
}

/// A spec body with a distinct global batch (distinct fingerprint).
fn spec_body(template: &PlanSpec, batch: u32) -> String {
    let mut spec = template.clone();
    spec.global_batch = batch;
    spec.to_json()
}

/// How many times a shed request is retried before giving up, and the
/// backoff before attempt k (1-based): `RETRY_BASE_MS << k` milliseconds.
const MAX_RETRIES: u32 = 3;
const RETRY_BASE_MS: u64 = 5;

/// One phase's client-side tally.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    shed: u64,
    errors: u64,
    /// 503 responses that were retried (each retry attempt counts once).
    retries: u64,
    /// Requests that ended 200 only after at least one 503 retry.
    recovered: u64,
    /// Total wall time spent sleeping in retry backoff.
    backoff_ms: u64,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.latencies_us.extend(other.latencies_us);
        self.ok += other.ok;
        self.shed += other.shed;
        self.errors += other.errors;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.backoff_ms += other.backoff_ms;
    }

    fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] as f64 / 1_000.0
    }

    fn to_json(&self, elapsed_s: f64) -> JsonValue {
        let requests = self.latencies_us.len() as u64;
        JsonValue::Object(vec![
            ("requests".to_owned(), JsonValue::UInt(requests)),
            ("ok_200".to_owned(), JsonValue::UInt(self.ok)),
            ("shed_503".to_owned(), JsonValue::UInt(self.shed)),
            ("errors".to_owned(), JsonValue::UInt(self.errors)),
            ("retries_503".to_owned(), JsonValue::UInt(self.retries)),
            (
                "recovered_after_retry".to_owned(),
                JsonValue::UInt(self.recovered),
            ),
            (
                "retry_backoff_ms".to_owned(),
                JsonValue::UInt(self.backoff_ms),
            ),
            ("elapsed_s".to_owned(), JsonValue::Num(elapsed_s)),
            (
                "plans_per_s".to_owned(),
                JsonValue::Num(self.ok as f64 / elapsed_s.max(1e-9)),
            ),
            ("p50_ms".to_owned(), JsonValue::Num(self.quantile_ms(0.50))),
            ("p90_ms".to_owned(), JsonValue::Num(self.quantile_ms(0.90))),
            ("p99_ms".to_owned(), JsonValue::Num(self.quantile_ms(0.99))),
        ])
    }
}

/// Runs one phase: `connections` threads, each with its own persistent
/// connection, each sending the bodies `bodies_for(thread, i)` yields for
/// `per_conn` iterations. Returns the merged tally and the wall time.
fn run_phase(
    addr: std::net::SocketAddr,
    connections: usize,
    per_conn: usize,
    bodies_for: impl Fn(usize, usize) -> String + Send + Sync + 'static,
) -> (Tally, f64) {
    let bodies_for = Arc::new(bodies_for);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|t| {
            let bodies_for = Arc::clone(&bodies_for);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let mut client = HttpClient::connect(addr).expect("connect");
                'requests: for i in 0..per_conn {
                    let body = bodies_for(t, i);
                    let start = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        match client.request("POST", "/plan", body.as_bytes()) {
                            Ok(response) => match response.status {
                                200 => {
                                    if attempt > 0 {
                                        tally.recovered += 1;
                                    }
                                    tally.ok += 1;
                                }
                                // Shed load is a *correct* answer under
                                // pressure: back off briefly and retry in
                                // place, a bounded number of times.
                                503 if attempt < MAX_RETRIES => {
                                    attempt += 1;
                                    tally.retries += 1;
                                    let pause = RETRY_BASE_MS << attempt;
                                    tally.backoff_ms += pause;
                                    std::thread::sleep(std::time::Duration::from_millis(pause));
                                    continue;
                                }
                                503 => tally.shed += 1,
                                _ => tally.errors += 1,
                            },
                            Err(_) => {
                                // A dropped or broken connection is exactly
                                // what load shedding must prevent.
                                tally.errors += 1;
                                match HttpClient::connect(addr) {
                                    Ok(c) => client = c,
                                    Err(_) => break 'requests,
                                }
                            }
                        }
                        break;
                    }
                    // Latency is per *request*, retries and backoff
                    // included: the time the caller actually waited.
                    tally
                        .latencies_us
                        .push(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
                tally
            })
        })
        .collect();
    let mut tally = Tally::default();
    for handle in handles {
        match handle.join() {
            Ok(t) => tally.merge(t),
            Err(_) => tally.errors += 1,
        }
    }
    (tally, t0.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let connections: usize = match args.iter().position(|a| a == "--connections") {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => n.max(1),
            _ => {
                eprintln!("--connections requires a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => 8,
    };
    let (cold_per_conn, warm_per_conn) = if quick { (6, 40) } else { (24, 250) };

    let server = HttpServer::start(ServerConfig::default()).expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let template = Arc::new(template_spec());
    println!(
        "http_bench: {connections} connections against http://{addr} \
         (cold {cold_per_conn}/conn, warm {warm_per_conn}/conn)\n"
    );

    // Phase 1: all-cold — thread t's i-th request is globally unique.
    let cold_template = Arc::clone(&template);
    let (cold, cold_s) = run_phase(addr, connections, cold_per_conn, move |t, i| {
        spec_body(&cold_template, 64 + 8 * (t * cold_per_conn + i) as u32)
    });

    // Phase 2: warm mix — a seeded 8-spec working set, with a fresh cold
    // spec every 8th request. The fresh batches sit on a different residue
    // (68 + 8k) than the cold phase's (64 + 8k), so they are genuinely
    // unplanned, while staying small enough to be feasible on 8 GPUs.
    let warm_set: Vec<String> = (0..8)
        .map(|k| spec_body(&template, 64 + 8 * k as u32))
        .collect();
    let fresh_per_conn = warm_per_conn / 8 + 1;
    let warm_template = Arc::clone(&template);
    let (warm, warm_s) = run_phase(addr, connections, warm_per_conn, move |t, i| {
        if i % 8 == 7 {
            spec_body(&warm_template, 68 + 8 * (t * fresh_per_conn + i / 8) as u32)
        } else {
            warm_set[(t + i) % warm_set.len()].clone()
        }
    });

    // Server-side view, straight off /metrics.
    let metrics_doc = HttpClient::connect(addr)
        .and_then(|mut c| c.request("GET", "/metrics", b""))
        .map_err(|e| e.to_string())
        .and_then(|r| parse(&r.text()).map_err(|e| e.to_string()))
        .unwrap_or(JsonValue::Null);

    for (name, tally, secs) in [("cold", &cold, cold_s), ("warm mix", &warm, warm_s)] {
        println!(
            "{:<9} {:>6} requests {:>8.1} plans/s  p50 {:>7.2} ms  p90 {:>7.2} ms  \
             p99 {:>7.2} ms  ({} shed, {} retried, {} errors)",
            name,
            tally.latencies_us.len(),
            tally.ok as f64 / secs.max(1e-9),
            tally.quantile_ms(0.50),
            tally.quantile_ms(0.90),
            tally.quantile_ms(0.99),
            tally.shed,
            tally.retries,
            tally.errors,
        );
    }

    let errors = cold.errors + warm.errors;
    let doc = JsonValue::Object(vec![
        (
            "benchmark".to_owned(),
            JsonValue::Str("http_bench".to_owned()),
        ),
        ("quick".to_owned(), JsonValue::Bool(quick)),
        (
            "connections".to_owned(),
            JsonValue::UInt(connections as u64),
        ),
        ("cold".to_owned(), cold.to_json(cold_s)),
        ("warm_mix".to_owned(), warm.to_json(warm_s)),
        (
            "shed_503_total".to_owned(),
            JsonValue::UInt(cold.shed + warm.shed),
        ),
        (
            "retries_503_total".to_owned(),
            JsonValue::UInt(cold.retries + warm.retries),
        ),
        (
            "retry_max_attempts".to_owned(),
            JsonValue::UInt(u64::from(MAX_RETRIES)),
        ),
        ("errors_total".to_owned(), JsonValue::UInt(errors)),
        ("server_metrics".to_owned(), metrics_doc),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{doc}\n")) {
        eprintln!("writing {out_path} failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "\nwarm-mix sustained {:.1} plans/s over {connections} connections -> {out_path}",
        warm.ok as f64 / warm_s.max(1e-9)
    );
    if errors > 0 {
        eprintln!("{errors} request(s) failed with a non-200/503 response or transport error");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
