//! Table 2: proportion of parameter synchronisation in DDP iteration time
//! at local batch 8, versus cluster size.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin table2`

use dpipe_baselines::ddp;
use dpipe_bench::{header, profile, row};
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

fn main() {
    println!("Table 2: synchronisation share of DDP iteration time (local batch 8)\n");
    header(&["model", "8 gpus", "16 gpus", "32 gpus", "64 gpus"]);
    for (mut model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        // Table 2 measures the vanilla training loop.
        model.self_conditioning = None;
        let mut cells = vec![name.to_owned()];
        for machines in [1usize, 2, 4, 8] {
            let cluster = ClusterSpec::p4de(machines);
            let global = 8 * cluster.world_size() as u32;
            let db = profile(&model, &cluster, 8);
            let r = ddp(&db, &cluster, global);
            cells.push(format!("{:.1}%", r.sync_fraction * 100.0));
        }
        row(&cells);
    }
    println!("\npaper: sd 5.2/19.3/36.1/38.1%, controlnet 6.9/22.7/39.1/40.1%");
}
