//! Planning-service throughput harness: cold plans/sec, parallel speedup
//! and warm cache hit rate at 1/2/4/8 workers over an 8-point sweep grid.
//!
//! Run with: `cargo run --release -p dpipe_bench --bin serve_bench`
//!
//! The speedup column measures wall-clock scaling of the worker pool, so it
//! is bounded by the host's available parallelism (printed first): on a
//! multi-core host 4 workers clear 2× easily; on a single hardware thread
//! no thread pool can.

use dpipe_model::zoo;
use dpipe_serve::{PlanService, ServiceConfig, SweepGrid, SweepReport};
use std::time::Instant;

fn all_ok_and_identical(cold: &SweepReport, warm: &SweepReport) -> bool {
    cold.points.len() == warm.points.len()
        && cold
            .points
            .iter()
            .zip(&warm.points)
            .all(|(c, w)| match (&c.outcome, &w.outcome) {
                (Ok(cp), Ok(wp)) => cp.summary() == wp.summary(),
                (Err(ce), Err(we)) => ce == we,
                _ => false,
            })
}

fn main() {
    let grid = SweepGrid::new(
        vec![zoo::stable_diffusion_v2_1(), zoo::dit_xl_2()],
        vec![4, 8],
        vec![64, 128],
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "planning-service bench: {}-point grid, host parallelism {}\n",
        grid.len(),
        cores
    );
    println!(
        "{:>7} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "workers", "cold (s)", "plans/s", "speedup", "warm hits", "identical"
    );

    let mut one_worker_cold = None;
    for workers in [1usize, 2, 4, 8] {
        let service = PlanService::new(ServiceConfig {
            workers,
            cache_shards: 16,
            ..ServiceConfig::default()
        });

        let t0 = Instant::now();
        let cold = grid.run(&service).expect("static grid resolves");
        let cold_s = t0.elapsed().as_secs_f64();
        let warm = grid.run(&service).expect("static grid resolves");
        let stats = service.cache_stats();

        let baseline = *one_worker_cold.get_or_insert(cold_s);
        println!(
            "{:>7} {:>10.3} {:>10.1} {:>8.2}x {:>9.0}% {:>10}",
            workers,
            cold_s,
            grid.len() as f64 / cold_s.max(1e-9),
            baseline / cold_s.max(1e-9),
            warm.cache_hit_rate() * 100.0,
            if all_ok_and_identical(&cold, &warm) {
                "yes"
            } else {
                "NO"
            }
        );
        assert_eq!(stats.misses, grid.len() as u64);
        assert_eq!(stats.hits, grid.len() as u64);
    }
}
