//! Table 1: ratio of the frozen (non-trainable) part's forward time to the
//! trainable part's forward+backward time, per batch size.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin table1`

use dpipe_bench::{header, profile, row};
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;

fn main() {
    println!("Table 1: non-trainable / trainable time ratio on the A100-like device\n");
    header(&["model", "b=8", "b=16", "b=32", "b=64"]);
    let cluster = ClusterSpec::single_node(1);
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        let db = profile(&model, &cluster, 64);
        let mut cells = vec![name.to_owned()];
        for b in [8.0, 16.0, 32.0, 64.0] {
            let r = db.total_frozen_fwd_time(b) / db.total_trainable_fwd_bwd_time(b);
            cells.push(format!("{:.0}%", r * 100.0));
        }
        row(&cells);
    }
    println!("\npaper: sd 38/41/43/44%, controlnet 76/81/86/89%");
}
