//! Fig. 4: pipeline bubble ratio (upper) and the ratio of bubble time to
//! non-trainable execution time (lower) for FIFO-1F1B at batch 64, across
//! stage counts 2–4 and micro-batch counts 1–4.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig4`

use dpipe_bench::profile;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_fill::{FillConfig, Filler};
use dpipe_model::zoo;
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_schedule::{Bubble, ScheduleBuilder, ScheduleKind};

fn main() {
    for (mut model, name) in [
        (zoo::stable_diffusion_v2_1(), "(a) Stable Diffusion v2.1"),
        (zoo::controlnet_v1_0(), "(b) ControlNet v1.0"),
    ] {
        // Fig. 4 profiles the models without self-conditioning.
        model.self_conditioning = None;
        println!(
            "\nFig. 4 {name}: bubble%% of iteration (upper) / bubble vs non-trainable time (lower)"
        );
        println!("batch 64, FIFO-1F1B; rows = stages, cols = micro-batches\n");
        print!("{:>8}", "S\\M");
        for m in 1..=4 {
            print!("{m:>16}");
        }
        println!();
        let batch = 64u32;
        for stages in [4usize, 3, 2] {
            // One pipeline group spanning `stages` devices (r = 1), as in the
            // paper's profiling setup.
            let cluster = ClusterSpec::single_node(stages);
            let db = profile(&model, &cluster, batch);
            let layout = DataParallelLayout::new(&cluster, stages).unwrap();
            let part = Partitioner::new(&db, &cluster, &layout);
            let bb = db.model().backbones().next().unwrap().0;
            print!("{stages:>8}");
            for micro in 1..=4 {
                let cfg = PartitionConfig::new(stages, micro, batch as f64);
                let plan = part.partition_single(bb, &cfg).unwrap();
                let sched = ScheduleBuilder::new(&db, &cluster, &layout)
                    .build_single(&plan, ScheduleKind::Fifo1F1B)
                    .unwrap();
                // Iteration = non-trainable (data parallel, before pipeline)
                // + pipeline, as in the paper's Fig. 4 measurement.
                let filler = Filler::new(&db, FillConfig::default());
                let frozen = filler.baseline_frozen_time(batch as f64, stages);
                let iter = frozen + sched.iteration_time();
                let idle: f64 = sched.bubbles(0.0).iter().map(Bubble::device_seconds).sum();
                let upper = idle / (iter * stages as f64);
                let lower = idle / (frozen * stages as f64);
                print!("{:>8.1}%{:>6.0}%", upper * 100.0, lower * 100.0);
            }
            println!();
        }
    }
    println!(
        "\npaper fig4a (upper-left, S=4 M=1): 67.6% / 684%; (lower-right, S=2 M=4): 14.8% / 57%"
    );
}
