//! Fig. 14: pipeline bubble ratio on 8 GPUs — DiffusionPipe vs GPipe vs SPP.
//!
//! Run with: `cargo run --release -p dpipe-bench --bin fig14`

use diffusionpipe_core::Planner;
use dpipe_baselines::{gpipe, spp};
use dpipe_bench::profile;
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;
use dpipe_partition::SearchSpace;

fn main() {
    println!("Fig. 14: pipeline bubble ratio on 8 GPUs (% of iteration device-time)\n");
    println!(
        "{:<14} {:>6} {:>15} {:>8} {:>8}",
        "model", "batch", "diffusionpipe", "gpipe", "spp"
    );
    let cluster = ClusterSpec::single_node(8);
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd-v2.1"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        for batch in [256u32, 384] {
            let plan = Planner::new(model.clone(), cluster.clone())
                .plan(batch)
                .unwrap();
            let db = profile(&model, &cluster, batch);
            let bb = model.backbones().next().unwrap().0;
            let g = gpipe(&db, &cluster, bb, batch, 2, 4).unwrap();
            let s = spp(&db, &cluster, bb, batch, &SearchSpace::default()).unwrap();
            println!(
                "{:<14} {:>6} {:>14.1}% {:>7.1}% {:>7.1}%",
                name,
                batch,
                plan.bubble_ratio * 100.0,
                g.bubble_ratio * 100.0,
                s.bubble_ratio * 100.0
            );
        }
    }
    println!("\npaper: DiffusionPipe < 5%, GPipe/SPP in the 15-40% range");
}
