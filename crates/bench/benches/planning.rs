//! Criterion benches for the end-to-end planner (§6.4 pre-processing
//! overhead: the paper reports partitioning ~0.5 s and filling < 1 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffusionpipe_core::Planner;
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;
use dpipe_profile::{DeviceModel, Profiler};

fn bench_end_to_end_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for machines in [1usize, 4] {
        let cluster = ClusterSpec::p4de(machines);
        let batch = 32 * cluster.world_size() as u32;
        group.bench_with_input(BenchmarkId::new("sd", machines * 8), &machines, |b, &_m| {
            let planner = Planner::new(zoo::stable_diffusion_v2_1(), cluster.clone());
            b.iter(|| planner.plan(batch).unwrap())
        });
    }
    group.finish();
}

fn bench_profiling_pass(c: &mut Criterion) {
    c.bench_function("profile_sd_batch64", |b| {
        let model = zoo::stable_diffusion_v2_1();
        b.iter(|| {
            Profiler::new(DeviceModel::a100_like())
                .with_world_size(8)
                .profile(&model, 64)
        })
    });
}

criterion_group!(benches, bench_end_to_end_plan, bench_profiling_pass);
criterion_main!(benches);
