//! Criterion benches for the back-end substrate: tensor kernels and the
//! threaded pipeline engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpipe_engine::{EngineConfig, PipelineEngine, SyntheticTask};
use dpipe_tensor::{Layer, Linear, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Matrix::randn(n, n, 1);
        let b = Matrix::randn(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

fn bench_linear_fwd_bwd(c: &mut Criterion) {
    let mut layer = Linear::new(128, 128, 3);
    let x = Matrix::randn(32, 128, 4);
    c.bench_function("linear_fwd_bwd_32x128", |b| {
        b.iter(|| {
            let y = layer.forward(&x);
            layer.backward(&y)
        })
    });
}

fn bench_pipeline_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_iteration");
    group.sample_size(10);
    for (stages, groups) in [(2usize, 1usize), (4, 1), (2, 2)] {
        let task = SyntheticTask::new(1, 32, 32, 7);
        let cfg = EngineConfig {
            stage_layers: vec![1; stages],
            micro_batches: 4,
            dp_groups: groups,
            lr: 0.01,
            optimizer: None,
        };
        group.bench_with_input(
            BenchmarkId::new("train_3_iters", format!("s{stages}g{groups}")),
            &cfg,
            |b, cfg| b.iter(|| PipelineEngine::train(&task, cfg, 3).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_linear_fwd_bwd,
    bench_pipeline_engine
);
criterion_main!(benches);
