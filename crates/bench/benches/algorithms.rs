//! Criterion benches for the algorithmic kernels: the partitioning DP
//! (§4), FFC candidate enumeration and bubble filling (§5), and schedule
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_fill::{FillConfig, Filler};
use dpipe_model::zoo;
use dpipe_partition::{PartitionConfig, Partitioner};
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};
use dpipe_schedule::{ScheduleBuilder, ScheduleKind};

fn db(model: dpipe_model::ModelSpec, batch: u32) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like())
        .profile(&model, batch)
        .0
}

fn bench_partition_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_dp");
    let database = db(zoo::stable_diffusion_v2_1(), 64);
    let cluster = ClusterSpec::single_node(8);
    let bb = database.model().backbones().next().unwrap().0;
    for stages in [2usize, 4, 8] {
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        group.bench_with_input(BenchmarkId::new("uniform", stages), &stages, |b, &s| {
            let part = Partitioner::new(&database, &cluster, &layout);
            b.iter(|| {
                part.partition_single(bb, &PartitionConfig::new(s, 4, 64.0))
                    .unwrap()
            })
        });
    }
    // Non-uniform replication explores the full (l, s, d) state space.
    let layout = DataParallelLayout::new(&cluster, 8).unwrap();
    group.bench_function("nonuniform_s4_d8", |b| {
        let part = Partitioner::new(&database, &cluster, &layout);
        b.iter(|| {
            part.partition_single(bb, &PartitionConfig::new(4, 4, 64.0).with_nonuniform())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_bidirectional_dp(c: &mut Criterion) {
    let database = db(zoo::cdm_lsun(), 128);
    let cluster = ClusterSpec::single_node(8);
    let layout = DataParallelLayout::new(&cluster, 8).unwrap();
    let mut bbs = database.model().backbones().map(|(id, _)| id);
    let b0 = bbs.next().unwrap();
    let b1 = bbs.next().unwrap();
    c.bench_function("bidirectional_dp_s4", |b| {
        let part = Partitioner::new(&database, &cluster, &layout);
        b.iter(|| {
            part.partition_bidirectional(b0, b1, &PartitionConfig::new(4, 4, 128.0))
                .unwrap()
        })
    });
}

fn bench_schedule_sim(c: &mut Criterion) {
    let database = db(zoo::stable_diffusion_v2_1(), 64);
    let cluster = ClusterSpec::single_node(8);
    let layout = DataParallelLayout::new(&cluster, 8).unwrap();
    let bb = database.model().backbones().next().unwrap().0;
    let part = Partitioner::new(&database, &cluster, &layout);
    let plan = part
        .partition_single(bb, &PartitionConfig::new(4, 8, 64.0))
        .unwrap();
    c.bench_function("schedule_1f1b_s4_m8", |b| {
        let builder = ScheduleBuilder::new(&database, &cluster, &layout);
        b.iter(|| builder.build_single(&plan, ScheduleKind::Fifo1F1B).unwrap())
    });
}

fn bench_bubble_filling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bubble_filling");
    for (model, name) in [
        (zoo::stable_diffusion_v2_1(), "sd"),
        (zoo::controlnet_v1_0(), "controlnet"),
    ] {
        let database = db(model, 256);
        let cluster = ClusterSpec::single_node(8);
        let layout = DataParallelLayout::new(&cluster, 8).unwrap();
        let bb = database.model().backbones().next().unwrap().0;
        let part = Partitioner::new(&database, &cluster, &layout);
        let plan = part
            .partition_single(bb, &PartitionConfig::new(2, 2, 256.0))
            .unwrap();
        let sched = ScheduleBuilder::new(&database, &cluster, &layout)
            .build_single(&plan, ScheduleKind::Fifo1F1B)
            .unwrap();
        let bubbles = sched.bubbles(0.010);
        group.bench_function(name, |b| {
            let filler = Filler::new(&database, FillConfig::default());
            b.iter(|| filler.fill(&bubbles, sched.group_batch, 8).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_dp,
    bench_bidirectional_dp,
    bench_schedule_sim,
    bench_bubble_filling
);
criterion_main!(benches);
