//! Pipeline-parallel baselines: GPipe and SPP (no bubble filling).

use crate::memory::MemoryModel;
use crate::report::BaselineReport;
use dpipe_cluster::{ClusterSpec, DataParallelLayout};
use dpipe_model::ComponentId;
use dpipe_partition::{
    enumerate_configs, PartitionConfig, PartitionPlan, Partitioner, SearchSpace, StagePlan,
};
use dpipe_profile::ProfileDb;
use dpipe_schedule::{PipelineSchedule, ScheduleBuilder, ScheduleKind};

/// Packages a backbone-only pipeline schedule (Fig. 9 top) into a report:
/// the frozen part runs data-parallel before the pipeline, and no bubble is
/// filled.
fn report_from_schedule(
    name: &str,
    db: &ProfileDb,
    cluster: &ClusterSpec,
    schedule: &PipelineSchedule,
    plan: &PartitionPlan,
    layout: &DataParallelLayout,
    global_batch: u32,
) -> BaselineReport {
    let group_devices = layout.group_size;
    // Frozen part: data-parallel over the whole group before pipelining.
    let frozen_local = schedule.group_batch / group_devices as f64;
    let frozen: f64 = db.total_frozen_fwd_time(frozen_local);
    let pipeline_time = schedule.iteration_time();
    let iteration = frozen + pipeline_time;
    let idle: f64 = schedule
        .bubbles(0.0)
        .iter()
        .map(|b| b.duration() * b.devices as f64)
        .sum();
    let bubble_ratio = idle / (iteration * group_devices as f64);

    let mm = MemoryModel::new(db.model());
    let s_count = plan.stages.len();
    let peak = plan
        .stages
        .iter()
        .enumerate()
        .map(|(s, st): (usize, &StagePlan)| {
            let in_flight = plan.num_micro_batches.min(s_count - s).max(1);
            mm.pipeline_stage_peak(
                st.component,
                st.layers.clone(),
                st.local_batch(plan.micro_batch),
                in_flight,
            )
        })
        .max()
        .unwrap_or(0);
    let sync_exposed = (schedule.sync_end() - schedule.compute_end()).max(0.0);
    BaselineReport {
        name: name.to_owned(),
        iteration_time: iteration,
        throughput: global_batch as f64 / iteration,
        bubble_ratio,
        peak_memory_bytes: 0,
        oom: false,
        sync_fraction: sync_exposed / iteration,
    }
    .with_memory(peak, cluster.device_memory_bytes)
}

/// GPipe: equal-layer split, all-forwards-then-all-backwards schedule. The
/// paper evaluates 2 stages × 4 micro-batches; stages are not replicated
/// within a group (`D = stages`), data parallelism uses the remaining
/// devices.
///
/// # Errors
///
/// Returns a descriptive string if the configuration cannot be laid out.
pub fn gpipe(
    db: &ProfileDb,
    cluster: &ClusterSpec,
    backbone: ComponentId,
    global_batch: u32,
    stages: usize,
    micro_batches: usize,
) -> Result<BaselineReport, String> {
    let world = cluster.world_size();
    if !world.is_multiple_of(stages) {
        return Err(format!("{stages} stages do not divide world {world}"));
    }
    let layout =
        DataParallelLayout::new(cluster, stages).ok_or_else(|| "bad group size".to_owned())?;
    let comp = db.model().component(backbone);
    let layers = comp.num_layers();
    if stages > layers {
        return Err(format!("{stages} stages exceed {layers} layers"));
    }
    let group_batch = global_batch as f64 * stages as f64 / world as f64;
    // Equal split.
    let base = layers / stages;
    let rem = layers % stages;
    let mut start = 0;
    let stage_plans: Vec<StagePlan> = (0..stages)
        .map(|s| {
            let take = base + usize::from(s < rem);
            let sp = StagePlan {
                component: backbone,
                layers: start..start + take,
                replication: 1,
                device_offsets: vec![s],
            };
            start += take;
            sp
        })
        .collect();
    let plan = PartitionPlan {
        stages: stage_plans,
        num_micro_batches: micro_batches,
        micro_batch: group_batch / micro_batches as f64,
        t0: 0.0,
        t_sync_gap: 0.0,
        t_max: 0.0,
    };
    let schedule = ScheduleBuilder::new(db, cluster, &layout)
        .build_single(&plan, ScheduleKind::GPipe)
        .map_err(|e| e.to_string())?;
    // GPipe retains every micro-batch's activations through the forward
    // phase: in_flight = M on every stage. report_from_schedule assumes
    // 1F1B in-flight counts; adjust by computing GPipe memory here.
    let mut report = report_from_schedule(
        "gpipe",
        db,
        cluster,
        &schedule,
        &plan,
        &layout,
        global_batch,
    );
    let mm = MemoryModel::new(db.model());
    let peak = plan
        .stages
        .iter()
        .map(|st| {
            mm.pipeline_stage_peak(
                st.component,
                st.layers.clone(),
                st.local_batch(plan.micro_batch),
                micro_batches,
            )
        })
        .max()
        .unwrap_or(0);
    report = report.with_memory(peak, cluster.device_memory_bytes);
    Ok(report)
}

/// SPP: DiffusionPipe's DP-optimised partitioning and (S, M, D) search with
/// FIFO-1F1B scheduling, but *without* bubble filling — isolating the
/// contribution of bubble filling.
///
/// # Errors
///
/// Returns a descriptive string when no feasible configuration exists.
pub fn spp(
    db: &ProfileDb,
    cluster: &ClusterSpec,
    backbone: ComponentId,
    global_batch: u32,
    space: &SearchSpace,
) -> Result<BaselineReport, String> {
    let layers = db.model().component(backbone).num_layers();
    let configs =
        enumerate_configs(cluster, global_batch, layers, space).map_err(|e| e.to_string())?;
    let mut best: Option<BaselineReport> = None;
    for hp in configs {
        // SPP is a pipeline planner: it always partitions the model into at
        // least two stages (falling back to data parallelism is
        // DiffusionPipe's hyper-parameter search, not SPP's).
        if hp.num_stages < 2 {
            continue;
        }
        let Some(layout) = DataParallelLayout::new(cluster, hp.group_size) else {
            continue;
        };
        let part = Partitioner::new(db, cluster, &layout);
        let cfg = PartitionConfig::new(
            hp.num_stages,
            hp.num_micro_batches,
            hp.group_batch(global_batch, cluster.world_size()),
        );
        let Ok(plan) = part.partition_single(backbone, &cfg) else {
            continue;
        };
        let Ok(schedule) =
            ScheduleBuilder::new(db, cluster, &layout).build_single(&plan, ScheduleKind::Fifo1F1B)
        else {
            continue;
        };
        let report =
            report_from_schedule("spp", db, cluster, &schedule, &plan, &layout, global_batch);
        if report.oom {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|b| report.iteration_time < b.iteration_time);
        if better {
            best = Some(report);
        }
    }
    best.ok_or_else(|| "no feasible SPP configuration".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataparallel::ddp;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn setup(batch: u32) -> (ProfileDb, ClusterSpec, ComponentId) {
        let model = zoo::stable_diffusion_v2_1();
        let (db, _) = Profiler::new(DeviceModel::a100_like()).profile(&model, batch);
        let bb = db.model().backbones().next().unwrap().0;
        (db, ClusterSpec::single_node(8), bb)
    }

    #[test]
    fn gpipe_produces_positive_throughput_and_bubbles() {
        let (db, cluster, bb) = setup(64);
        let r = gpipe(&db, &cluster, bb, 256, 2, 4).unwrap();
        assert!(r.throughput > 0.0);
        assert!(r.bubble_ratio > 0.02, "bubble ratio {}", r.bubble_ratio);
    }

    #[test]
    fn spp_beats_or_matches_gpipe() {
        let (db, cluster, bb) = setup(64);
        let g = gpipe(&db, &cluster, bb, 256, 2, 4).unwrap();
        let s = spp(&db, &cluster, bb, 256, &SearchSpace::default()).unwrap();
        assert!(
            s.throughput >= 0.98 * g.throughput,
            "spp {} vs gpipe {}",
            s.throughput,
            g.throughput
        );
    }

    #[test]
    fn gpipe_rejects_bad_stage_counts() {
        let (db, cluster, bb) = setup(64);
        assert!(gpipe(&db, &cluster, bb, 256, 3, 4).is_err()); // 3 !| 8
        assert!(gpipe(&db, &cluster, bb, 256, 64, 4).is_err());
    }

    #[test]
    fn pipeline_uses_less_memory_than_ddp() {
        let (db, cluster, bb) = setup(64);
        let g = gpipe(&db, &cluster, bb, 256, 2, 4).unwrap();
        let d = ddp(&db, &cluster, 256);
        assert!(g.peak_memory_bytes < d.peak_memory_bytes);
    }

    #[test]
    fn spp_search_is_deterministic() {
        let (db, cluster, bb) = setup(64);
        let a = spp(&db, &cluster, bb, 128, &SearchSpace::default()).unwrap();
        let b = spp(&db, &cluster, bb, 128, &SearchSpace::default()).unwrap();
        assert_eq!(a.iteration_time, b.iteration_time);
    }
}
