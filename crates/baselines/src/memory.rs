//! Peak device memory estimation.

use dpipe_model::{ComponentId, ModelSpec};
use std::ops::Range;

/// Bytes per trainable parameter under mixed-precision Adam: fp32 master
/// weight (4) + gradient (4) + two optimizer moments (8).
const TRAINABLE_STATE_BYTES: f64 = 16.0;

/// Multiplier converting a layer's *output* activation bytes into the total
/// intermediate activation footprint its backward pass retains (convs,
/// norms and attention keep several intermediates besides the block
/// output). Calibrated so Stable Diffusion v2.1 training at local batch 8
/// lands near the ~24 GB the paper cites (§2.3).
const ACTIVATION_FACTOR: f64 = 8.0;

/// Estimates peak per-device memory for the training strategies compared in
/// the paper.
#[derive(Debug, Clone)]
pub struct MemoryModel<'a> {
    model: &'a ModelSpec,
}

impl<'a> MemoryModel<'a> {
    /// Creates an estimator for one model.
    pub fn new(model: &'a ModelSpec) -> Self {
        MemoryModel { model }
    }

    fn trainable_param_bytes(&self) -> f64 {
        self.model
            .backbones()
            .map(|(_, c)| c.param_bytes() as f64)
            .sum()
    }

    fn frozen_param_bytes(&self) -> f64 {
        self.model
            .frozen_components()
            .map(|(_, c)| c.param_bytes() as f64)
            .sum()
    }

    /// Retained activation bytes of the full trainable part at a local
    /// batch (the backward graph holds every layer's intermediates).
    fn trainable_activation_bytes(&self, local_batch: f64) -> f64 {
        let out: f64 = self
            .model
            .backbones()
            .flat_map(|(_, c)| c.layers.iter())
            .map(|l| l.out_bytes_per_sample as f64)
            .sum();
        out * ACTIVATION_FACTOR * local_batch
    }

    /// Transient frozen-part peak: frozen layers run forward-only, so only
    /// the widest pair of adjacent activations is alive at once.
    fn frozen_activation_bytes(&self, local_batch: f64) -> f64 {
        let max_out = self
            .model
            .frozen_components()
            .flat_map(|(_, c)| c.layers.iter())
            .map(|l| l.out_bytes_per_sample as f64)
            .fold(0.0, f64::max);
        2.0 * max_out * local_batch
    }

    /// Peak bytes for vanilla DDP at a per-device batch.
    pub fn ddp_peak(&self, local_batch: f64) -> u64 {
        (self.trainable_param_bytes() / 4.0 * TRAINABLE_STATE_BYTES
            + self.frozen_param_bytes()
            + self.trainable_activation_bytes(local_batch)
            + self.frozen_activation_bytes(local_batch)) as u64
    }

    /// Peak bytes for ZeRO-3 (trainable states sharded over `world`).
    pub fn zero3_peak(&self, local_batch: f64, world: usize) -> u64 {
        // Sharded states plus one full layer's gathered parameters.
        let max_layer_params = self
            .model
            .backbones()
            .flat_map(|(_, c)| c.layers.iter())
            .map(|l| l.param_bytes() as f64)
            .fold(0.0, f64::max);
        (self.trainable_param_bytes() / 4.0 * TRAINABLE_STATE_BYTES / world as f64
            + max_layer_params
            + self.frozen_param_bytes()
            + self.trainable_activation_bytes(local_batch)
            + self.frozen_activation_bytes(local_batch)) as u64
    }

    /// Peak bytes for one pipeline stage holding `layers` of `component`,
    /// replicated `r`-way, with `in_flight` micro-batch activations alive
    /// (1F1B keeps at most `min(M, S - s)` per stage).
    pub fn pipeline_stage_peak(
        &self,
        component: ComponentId,
        layers: Range<usize>,
        local_micro_batch: f64,
        in_flight: usize,
    ) -> u64 {
        let comp = self.model.component(component);
        let params: f64 = layers
            .clone()
            .map(|l| comp.layers[l].param_bytes() as f64)
            .sum();
        let act: f64 = layers
            .map(|l| comp.layers[l].out_bytes_per_sample as f64)
            .sum::<f64>()
            * ACTIVATION_FACTOR
            * local_micro_batch
            * in_flight as f64;
        (params / 4.0 * TRAINABLE_STATE_BYTES
            + act
            + self.frozen_param_bytes()
            + self.frozen_activation_bytes(local_micro_batch)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn sd_ddp_memory_near_paper_value() {
        // §2.3: SD v2.1 at local batch 8 consumes about 24.3 GB.
        let m = zoo::stable_diffusion_v2_1();
        let mm = MemoryModel::new(&m);
        let gb = mm.ddp_peak(8.0) as f64 / GB;
        assert!((15.0..35.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn ddp_memory_grows_with_batch() {
        let m = zoo::stable_diffusion_v2_1();
        let mm = MemoryModel::new(&m);
        assert!(mm.ddp_peak(48.0) > mm.ddp_peak(8.0));
    }

    #[test]
    fn zero3_beats_ddp_on_states() {
        let m = zoo::stable_diffusion_v2_1();
        let mm = MemoryModel::new(&m);
        assert!(mm.zero3_peak(8.0, 64) < mm.ddp_peak(8.0));
    }

    #[test]
    fn pipeline_stage_lighter_than_full_model() {
        let m = zoo::stable_diffusion_v2_1();
        let mm = MemoryModel::new(&m);
        let bb = m.backbones().next().unwrap().0;
        let stage = mm.pipeline_stage_peak(bb, 0..14, 8.0, 2);
        assert!(stage < mm.ddp_peak(8.0));
    }

    #[test]
    fn in_flight_micro_batches_scale_activations() {
        let m = zoo::stable_diffusion_v2_1();
        let mm = MemoryModel::new(&m);
        let bb = m.backbones().next().unwrap().0;
        let one = mm.pipeline_stage_peak(bb, 0..14, 8.0, 1);
        let four = mm.pipeline_stage_peak(bb, 0..14, 8.0, 4);
        assert!(four > one);
    }
}
