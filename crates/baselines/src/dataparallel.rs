//! Data-parallel baselines: DeepSpeed DDP and ZeRO-3.

use crate::memory::MemoryModel;
use crate::report::BaselineReport;
use dpipe_cluster::{ClusterSpec, DeviceId};
use dpipe_profile::ProfileDb;

/// Compute time of one DDP iteration on a device: frozen forward plus
/// trainable forward+backward (with the self-conditioning extra forward in
/// expectation), at the per-device batch.
fn compute_time(db: &ProfileDb, local_batch: f64) -> f64 {
    let frozen = db.total_frozen_fwd_time(local_batch);
    let sc_prob = db
        .model()
        .self_conditioning
        .map_or(0.0, |sc| sc.probability);
    let trainable: f64 = db
        .model()
        .backbones()
        .map(|(id, c)| {
            let n = c.num_layers();
            let fwd = db.fwd_time_range(id, 0..n, local_batch);
            let bwd = db.bwd_time_range(id, 0..n, local_batch);
            (1.0 + sc_prob) * fwd + bwd
        })
        .sum();
    frozen + trainable
}

/// Gradient volume of all backbones, bytes.
fn grad_bytes(db: &ProfileDb) -> u64 {
    db.model()
        .backbones()
        .map(|(id, c)| db.grad_bytes_range(id, 0..c.num_layers()))
        .sum()
}

/// Vanilla distributed data parallelism (DeepSpeed default): every device
/// holds the full model; gradients are all-reduced at the end of backward
/// (unoverlapped, matching the paper's Table 2 accounting).
pub fn ddp(db: &ProfileDb, cluster: &ClusterSpec, global_batch: u32) -> BaselineReport {
    let world = cluster.world_size();
    let local = global_batch as f64 / world as f64;
    let compute = compute_time(db, local);
    let devices: Vec<DeviceId> = cluster.devices().collect();
    let sync = cluster
        .comm_model()
        .allreduce_time(grad_bytes(db), &devices);
    let iteration = compute + sync;
    let peak = MemoryModel::new(db.model()).ddp_peak(local);
    BaselineReport {
        name: "deepspeed".to_owned(),
        iteration_time: iteration,
        throughput: global_batch as f64 / iteration,
        bubble_ratio: 0.0,
        peak_memory_bytes: 0,
        oom: false,
        sync_fraction: sync / iteration,
    }
    .with_memory(peak, cluster.device_memory_bytes)
}

/// ZeRO-3: optimizer/gradient/parameter sharding. Parameters are
/// all-gathered before forward and backward and gradients reduce-scattered,
/// tripling the synchronisation volume relative to DDP's single all-reduce;
/// half of it overlaps with compute (prefetching).
pub fn zero3(db: &ProfileDb, cluster: &ClusterSpec, global_batch: u32) -> BaselineReport {
    let world = cluster.world_size();
    let local = global_batch as f64 / world as f64;
    let compute = compute_time(db, local);
    let devices: Vec<DeviceId> = cluster.devices().collect();
    let comm = cluster.comm_model();
    let volume = grad_bytes(db);
    // Two all-gathers (forward + backward) and one reduce-scatter. In ring
    // terms each all-gather or reduce-scatter is half an all-reduce, so the
    // raw traffic is 1.5x DDP's single all-reduce; per-layer gather latency
    // prevents meaningful overlap at scale, so it is all exposed.
    let exposed = 1.5 * comm.allreduce_time(volume, &devices);
    let iteration = compute + exposed;
    let peak = MemoryModel::new(db.model()).zero3_peak(local, world);
    BaselineReport {
        name: "deepspeed-zero3".to_owned(),
        iteration_time: iteration,
        throughput: global_batch as f64 / iteration,
        bubble_ratio: 0.0,
        peak_memory_bytes: 0,
        oom: false,
        sync_fraction: exposed / iteration,
    }
    .with_memory(peak, cluster.device_memory_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn db(model: dpipe_model::ModelSpec, batch: u32) -> ProfileDb {
        Profiler::new(DeviceModel::a100_like())
            .profile(&model, batch)
            .0
    }

    #[test]
    fn table2_sync_fraction_shape() {
        // Table 2: SD v2.1 DDP sync share ~5% at 8 GPUs rising to ~38% at
        // 64 GPUs (local batch 8).
        let mut m = zoo::stable_diffusion_v2_1();
        m.self_conditioning = None;
        let mut fractions = Vec::new();
        for machines in [1usize, 2, 4, 8] {
            let cluster = ClusterSpec::p4de(machines);
            let global = 8 * cluster.world_size() as u32;
            let r = ddp(&db(m.clone(), 8), &cluster, global);
            fractions.push(r.sync_fraction);
        }
        assert!((0.02..0.12).contains(&fractions[0]), "{fractions:?}");
        assert!((0.28..0.50).contains(&fractions[3]), "{fractions:?}");
        assert!(fractions.windows(2).all(|w| w[0] < w[1]), "{fractions:?}");
    }

    #[test]
    fn controlnet_sync_fraction_slightly_higher() {
        let mut sd = zoo::stable_diffusion_v2_1();
        sd.self_conditioning = None;
        let mut cn = zoo::controlnet_v1_0();
        cn.self_conditioning = None;
        let cluster = ClusterSpec::p4de(2);
        let global = 8 * 16;
        let r_sd = ddp(&db(sd, 8), &cluster, global);
        let r_cn = ddp(&db(cn, 8), &cluster, global);
        // ControlNet has a shorter compute iteration (smaller trainable
        // part), so sync takes a slightly larger share (Table 2).
        assert!(r_cn.sync_fraction > 0.8 * r_sd.sync_fraction);
    }

    #[test]
    fn zero3_trades_memory_for_comm() {
        let m = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::p4de(2);
        let d = db(m, 8);
        let r_ddp = ddp(&d, &cluster, 128);
        let r_z3 = zero3(&d, &cluster, 128);
        assert!(r_z3.peak_memory_bytes < r_ddp.peak_memory_bytes);
        assert!(r_z3.iteration_time > r_ddp.iteration_time);
    }

    #[test]
    fn throughput_zero_when_oom() {
        // Absurd batch size forces OOM.
        let m = zoo::stable_diffusion_v2_1();
        let cluster = ClusterSpec::single_node(8);
        let r = ddp(&db(m, 64), &cluster, 8 * 2000);
        assert!(r.oom);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn self_conditioning_slows_ddp() {
        let sc = zoo::stable_diffusion_v2_1();
        let mut vanilla = sc.clone();
        vanilla.self_conditioning = None;
        let cluster = ClusterSpec::single_node(8);
        let r_sc = ddp(&db(sc, 8), &cluster, 64);
        let r_v = ddp(&db(vanilla, 8), &cluster, 64);
        assert!(r_sc.iteration_time > r_v.iteration_time);
    }
}
