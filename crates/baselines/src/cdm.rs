//! Data-parallel training modes for cascaded diffusion models (CDMs).

use crate::memory::MemoryModel;
use crate::report::BaselineReport;
use dpipe_cluster::{ClusterSpec, DeviceId};
use dpipe_profile::ProfileDb;

/// How a CDM's backbones share the cluster (paper §6 "Baselines").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdmMode {
    /// `DeepSpeed(-ZeRO-3)-S`: backbones trained one after another, each on
    /// every device. Throughput = total batch / summed iteration times.
    Sequential,
    /// `DeepSpeed(-ZeRO-3)-P`: backbones trained concurrently on evenly
    /// partitioned device sets. Throughput = summed batch / max iteration
    /// time.
    Parallel,
}

/// One backbone's DDP iteration time on a device subset.
fn backbone_iter(
    db: &ProfileDb,
    comm: &dpipe_cluster::CommModel,
    backbone: dpipe_model::ComponentId,
    devices: &[DeviceId],
    local_batch: f64,
    zero3: bool,
) -> (f64, f64) {
    let comp = db.model().component(backbone);
    let n = comp.num_layers();
    let frozen = db.total_frozen_fwd_time(local_batch);
    let compute = frozen
        + db.fwd_time_range(backbone, 0..n, local_batch)
        + db.bwd_time_range(backbone, 0..n, local_batch);
    let volume = db.grad_bytes_range(backbone, 0..n);
    // ZeRO-3 swaps the all-reduce for two all-gathers plus a reduce-scatter
    // (1.5x the ring traffic, unoverlapped; see `dataparallel::zero3`).
    let sync = if zero3 {
        1.5 * comm.allreduce_time(volume, devices)
    } else {
        comm.allreduce_time(volume, devices)
    };
    (compute + sync, sync)
}

/// Data-parallel CDM training.
///
/// `batch_per_backbone` is the per-backbone global batch (the paper trains
/// all backbones of a CDM at the same batch size).
pub fn cdm_data_parallel(
    db: &ProfileDb,
    cluster: &ClusterSpec,
    batch_per_backbone: u32,
    mode: CdmMode,
    zero3: bool,
) -> BaselineReport {
    let comm = cluster.comm_model();
    let backbones: Vec<_> = db.model().backbones().map(|(id, _)| id).collect();
    let world = cluster.world_size();
    let k = backbones.len();
    let mm = MemoryModel::new(db.model());

    let (iteration, sync_total, local_batch) = match mode {
        CdmMode::Sequential => {
            let devices: Vec<DeviceId> = cluster.devices().collect();
            let local = batch_per_backbone as f64 / world as f64;
            let mut total = 0.0;
            let mut sync = 0.0;
            for &b in &backbones {
                let (t, s) = backbone_iter(db, &comm, b, &devices, local, zero3);
                total += t;
                sync += s;
            }
            (total, sync, local)
        }
        CdmMode::Parallel => {
            let per = world / k.max(1);
            let local = batch_per_backbone as f64 / per.max(1) as f64;
            let mut worst = 0.0f64;
            let mut sync = 0.0f64;
            for (i, &b) in backbones.iter().enumerate() {
                let devices: Vec<DeviceId> = (i * per..(i + 1) * per).map(DeviceId).collect();
                let (t, s) = backbone_iter(db, &comm, b, &devices, local, zero3);
                if t > worst {
                    worst = t;
                    sync = s;
                }
            }
            (worst, sync, local)
        }
    };

    let total_batch = batch_per_backbone as f64 * k as f64;
    // Memory: the heaviest backbone's full states at the mode's local batch.
    let peak = backbones
        .iter()
        .map(|&b| {
            let comp = db.model().component(b);
            let n = comp.num_layers();
            if zero3 {
                let shard = match mode {
                    CdmMode::Sequential => world,
                    CdmMode::Parallel => world / k.max(1),
                };
                mm.pipeline_stage_peak(b, 0..n, local_batch, 1) / shard.max(1) as u64
                    + comp.param_bytes()
            } else {
                mm.pipeline_stage_peak(b, 0..n, local_batch, 1)
            }
        })
        .max()
        .unwrap_or(0);
    let name = match (mode, zero3) {
        (CdmMode::Sequential, false) => "deepspeed-s",
        (CdmMode::Parallel, false) => "deepspeed-p",
        (CdmMode::Sequential, true) => "deepspeed-zero3-s",
        (CdmMode::Parallel, true) => "deepspeed-zero3-p",
    };
    BaselineReport {
        name: name.to_owned(),
        iteration_time: iteration,
        throughput: total_batch / iteration,
        bubble_ratio: 0.0,
        peak_memory_bytes: 0,
        oom: false,
        sync_fraction: sync_total / iteration,
    }
    .with_memory(peak, cluster.device_memory_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpipe_model::zoo;
    use dpipe_profile::{DeviceModel, Profiler};

    fn db(batch: u32) -> ProfileDb {
        Profiler::new(DeviceModel::a100_like())
            .profile(&zoo::cdm_lsun(), batch)
            .0
    }

    #[test]
    fn parallel_mode_overlaps_backbones() {
        let d = db(128);
        let cluster = ClusterSpec::single_node(8);
        let s = cdm_data_parallel(&d, &cluster, 128, CdmMode::Sequential, false);
        let p = cdm_data_parallel(&d, &cluster, 128, CdmMode::Parallel, false);
        // CDM-LSUN's backbones are balanced, so parallel halves the span and
        // roughly matches sequential throughput (paper: DeepSpeed-S already
        // balanced); both must be positive and the same order of magnitude.
        assert!(s.throughput > 0.0 && p.throughput > 0.0);
        let ratio = p.throughput / s.throughput;
        assert!((0.5..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn parallel_needs_more_memory_per_device() {
        let d = db(128);
        let cluster = ClusterSpec::single_node(8);
        let s = cdm_data_parallel(&d, &cluster, 128, CdmMode::Sequential, false);
        let p = cdm_data_parallel(&d, &cluster, 128, CdmMode::Parallel, false);
        // Parallel packs a backbone onto half the devices: higher local
        // batch, more activation memory.
        assert!(p.peak_memory_bytes > s.peak_memory_bytes);
    }

    #[test]
    fn zero3_variants_report_distinct_names() {
        let d = db(128);
        let cluster = ClusterSpec::single_node(8);
        let r = cdm_data_parallel(&d, &cluster, 128, CdmMode::Parallel, true);
        assert_eq!(r.name, "deepspeed-zero3-p");
    }

    #[test]
    fn throughput_counts_all_backbones() {
        let d = db(128);
        let cluster = ClusterSpec::single_node(8);
        let r = cdm_data_parallel(&d, &cluster, 128, CdmMode::Sequential, false);
        assert!((r.throughput * r.iteration_time - 256.0).abs() < 1e-6);
    }
}
