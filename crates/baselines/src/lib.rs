//! Baseline training systems the paper compares against (§6):
//!
//! * **DeepSpeed DDP** — vanilla distributed data parallelism: frozen part
//!   forward, backbone forward+backward, full-gradient all-reduce.
//! * **DeepSpeed ZeRO-3** — stage-3 sharding: optimizer/gradient/parameter
//!   states partitioned across the world, at the cost of parameter
//!   all-gathers in both passes.
//! * **GPipe** — pipeline parallelism with an equal-layer split (the paper
//!   evaluates it at 2 stages × 4 micro-batches).
//! * **SPP** — DP-optimised pipeline partitioning (reusing DiffusionPipe's
//!   partitioner and hyper-parameter search) *without* bubble filling.
//! * **CDM modes** — `DeepSpeed(-ZeRO-3)-S` (backbones trained sequentially
//!   on all devices) and `-P` (backbones trained concurrently on disjoint
//!   device halves).
//!
//! Every baseline returns a [`BaselineReport`] with iteration time,
//! throughput, bubble ratio, and an estimated peak device memory with an
//! out-of-memory flag (the "Out of memory" markers of Fig. 13).

mod cdm;
mod dataparallel;
mod memory;
mod pipeline;
mod report;

pub use cdm::{cdm_data_parallel, CdmMode};
pub use dataparallel::{ddp, zero3};
pub use memory::MemoryModel;
pub use pipeline::{gpipe, spp};
pub use report::BaselineReport;
