//! Common result type for baselines.

use serde::{Deserialize, Serialize};

/// Performance summary of one system on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// System name, e.g. `"deepspeed"` or `"gpipe"`.
    pub name: String,
    /// End-to-end training iteration time, seconds.
    pub iteration_time: f64,
    /// Cluster throughput, samples/second.
    pub throughput: f64,
    /// Pipeline bubble ratio (0 for pure data parallelism).
    pub bubble_ratio: f64,
    /// Estimated peak per-device memory, bytes.
    pub peak_memory_bytes: u64,
    /// True if the estimate exceeds device memory.
    pub oom: bool,
    /// Fraction of the iteration spent in exposed parameter
    /// synchronisation (the paper's Table 2 metric).
    pub sync_fraction: f64,
}

impl BaselineReport {
    /// Marks the report as out of memory against a budget, zeroing the
    /// throughput (an OOM run produces nothing).
    pub fn with_memory(mut self, peak: u64, budget: u64) -> Self {
        self.peak_memory_bytes = peak;
        self.oom = peak > budget;
        if self.oom {
            self.throughput = 0.0;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_zeroes_throughput() {
        let r = BaselineReport {
            name: "x".into(),
            iteration_time: 1.0,
            throughput: 100.0,
            bubble_ratio: 0.0,
            peak_memory_bytes: 0,
            oom: false,
            sync_fraction: 0.0,
        };
        let ok = r.clone().with_memory(10, 100);
        assert!(!ok.oom);
        assert_eq!(ok.throughput, 100.0);
        let oom = r.with_memory(200, 100);
        assert!(oom.oom);
        assert_eq!(oom.throughput, 0.0);
    }
}
