//! Scaling-trend tests for the baselines across cluster sizes.

use dpipe_baselines::{ddp, gpipe, spp, zero3};
use dpipe_cluster::ClusterSpec;
use dpipe_model::zoo;
use dpipe_partition::SearchSpace;
use dpipe_profile::{DeviceModel, ProfileDb, Profiler};

fn db(model: &dpipe_model::ModelSpec, world: usize, batch: u32) -> ProfileDb {
    Profiler::new(DeviceModel::a100_like())
        .with_world_size(world)
        .profile(model, batch)
        .0
}

/// Weak scaling (fixed local batch): every system's throughput grows with
/// cluster size, but data parallelism grows sub-linearly (sync overhead)
/// while pipeline systems scale closer to linearly.
#[test]
fn weak_scaling_trends() {
    let mut model = zoo::stable_diffusion_v2_1();
    model.self_conditioning = None;
    let mut ddp_throughputs = Vec::new();
    let mut spp_throughputs = Vec::new();
    for machines in [1usize, 4] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        let batch = 32 * world as u32;
        let d = db(&model, world, batch);
        ddp_throughputs.push(ddp(&d, &cluster, batch).throughput);
        let bb = model.backbones().next().unwrap().0;
        spp_throughputs.push(
            spp(&d, &cluster, bb, batch, &SearchSpace::default())
                .unwrap()
                .throughput,
        );
    }
    // Both grow with the cluster.
    assert!(ddp_throughputs[1] > ddp_throughputs[0]);
    assert!(spp_throughputs[1] > spp_throughputs[0]);
    // DDP's scaling efficiency (throughput ratio / 4) is worse than SPP's.
    let ddp_eff = ddp_throughputs[1] / (4.0 * ddp_throughputs[0]);
    let spp_eff = spp_throughputs[1] / (4.0 * spp_throughputs[0]);
    assert!(
        spp_eff > ddp_eff,
        "spp eff {spp_eff:.2} should beat ddp eff {ddp_eff:.2}"
    );
}

/// GPipe's bubble ratio is roughly scale-invariant (it depends on S and M,
/// not the cluster), while DDP's sync fraction grows.
#[test]
fn bubble_vs_sync_scaling() {
    let mut model = zoo::controlnet_v1_0();
    model.self_conditioning = None;
    let bb = model.backbones().next().unwrap().0;
    let mut gpipe_bubbles = Vec::new();
    let mut ddp_sync = Vec::new();
    for machines in [1usize, 4] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        let batch = 32 * world as u32;
        let d = db(&model, world, batch);
        gpipe_bubbles.push(gpipe(&d, &cluster, bb, batch, 2, 4).unwrap().bubble_ratio);
        ddp_sync.push(ddp(&d, &cluster, batch).sync_fraction);
    }
    let drift = (gpipe_bubbles[1] - gpipe_bubbles[0]).abs();
    assert!(drift < 0.08, "gpipe bubbles drifted {gpipe_bubbles:?}");
    assert!(ddp_sync[1] > 2.0 * ddp_sync[0], "{ddp_sync:?}");
}

/// ZeRO-3's gap to DDP widens with scale (more exposed gather traffic).
#[test]
fn zero3_gap_grows_with_scale() {
    let model = zoo::stable_diffusion_v2_1();
    let mut gaps = Vec::new();
    for machines in [1usize, 8] {
        let cluster = ClusterSpec::p4de(machines);
        let world = cluster.world_size();
        let batch = 16 * world as u32;
        let d = db(&model, world, batch);
        let r_ddp = ddp(&d, &cluster, batch);
        let r_z3 = zero3(&d, &cluster, batch);
        gaps.push(r_ddp.throughput / r_z3.throughput);
    }
    assert!(gaps[1] > gaps[0], "{gaps:?}");
}
