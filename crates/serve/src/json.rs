//! JSON support, re-homed.
//!
//! The emitter that used to live here grew a parser and moved down-stack
//! to [`dpipe_spec::json`] so the core planner (and the declarative spec
//! API) can use it without depending on the serving layer; the shared
//! [`plan_json`] plan summary moved to `diffusionpipe_core` for the same
//! reason. This module re-exports both so existing
//! `dpipe_serve::json::...` paths keep compiling.

pub use diffusionpipe_core::plan_json;
pub use dpipe_spec::json::{parse, JsonError, JsonValue};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanRequest;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;

    #[test]
    fn re_exported_emitter_and_parser_cover_plan_summaries() {
        let plan = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        )
        .plan()
        .unwrap();
        let rendered = plan_json(&plan).to_string();
        assert!(rendered.contains(&format!("\"id\":\"{:016x}\"", plan.fingerprint())));
        let parsed = parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("partition").and_then(JsonValue::as_str),
            Some("single")
        );
    }
}
