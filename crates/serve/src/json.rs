//! JSON support, re-homed.
//!
//! The emitter that used to live here grew a parser and moved down-stack
//! to [`dpipe_spec::json`] so the core planner (and the declarative spec
//! API) can use it without depending on the serving layer; the shared
//! [`plan_json`] plan summary moved to `diffusionpipe_core` for the same
//! reason. This module re-exports both so existing
//! `dpipe_serve::json::...` paths keep compiling.

pub use diffusionpipe_core::plan_json;
pub use dpipe_spec::json::{parse, JsonError, JsonValue};

use crate::request::PlanRequest;
use diffusionpipe_core::{simulation_json, FaultSpec, Plan, SimulationOutcome};
use dpipe_spec::PlanSpec;

/// The self-describing response document for one planned spec — the exact
/// payload of both `dpipe plan --json` and `POST /plan` over HTTP, built in
/// one place so the two paths are byte-identical by construction. The
/// canonical spec and the request fingerprint ride along, so any emitted
/// plan can be replayed with `dpipe plan --spec` and correlated with
/// serve-cache entries.
pub fn plan_response_doc(spec: &PlanSpec, request: &PlanRequest, plan: &Plan) -> JsonValue {
    JsonValue::Object(vec![
        (
            "model".to_owned(),
            JsonValue::Str(request.model().name.clone()),
        ),
        (
            "world_size".to_owned(),
            JsonValue::UInt(request.cluster().world_size() as u64),
        ),
        (
            "global_batch".to_owned(),
            JsonValue::UInt(u64::from(request.global_batch())),
        ),
        (
            "fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", request.fingerprint())),
        ),
        ("spec".to_owned(), spec.to_json_value()),
        ("plan".to_owned(), plan_json(plan)),
    ])
}

/// The self-describing response document for one fault-injected
/// simulation — the exact payload of both `dpipe simulate --json` and
/// `POST /simulate`, built in one place so the two surfaces are
/// byte-identical by construction. The spec and fault spec ride along, so
/// any emitted simulation can be replayed with
/// `dpipe simulate --spec --faults` and correlated with serve-cache
/// entries; the ASCII timeline is a render-side view (`--timeline`) and
/// not part of the document.
pub fn simulate_response_doc(
    spec: &PlanSpec,
    request: &PlanRequest,
    faults: &FaultSpec,
    outcome: &SimulationOutcome,
) -> JsonValue {
    JsonValue::Object(vec![
        (
            "model".to_owned(),
            JsonValue::Str(request.model().name.clone()),
        ),
        (
            "world_size".to_owned(),
            JsonValue::UInt(request.cluster().world_size() as u64),
        ),
        (
            "global_batch".to_owned(),
            JsonValue::UInt(u64::from(request.global_batch())),
        ),
        (
            "fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", request.fingerprint())),
        ),
        (
            "fault_fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", faults.fingerprint())),
        ),
        ("spec".to_owned(), spec.to_json_value()),
        ("faults".to_owned(), faults.to_json_value()),
        ("simulation".to_owned(), simulation_json(outcome)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanRequest;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;

    #[test]
    fn re_exported_emitter_and_parser_cover_plan_summaries() {
        let plan = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        )
        .plan()
        .unwrap();
        let rendered = plan_json(&plan).to_string();
        assert!(rendered.contains(&format!("\"id\":\"{:016x}\"", plan.fingerprint())));
        let parsed = parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("partition").and_then(JsonValue::as_str),
            Some("single")
        );
    }
}
