//! A minimal JSON emitter for machine-readable CLI output.
//!
//! The workspace's `serde` is an inert offline shim (its derives expand to
//! nothing), so serialization has to be explicit. This module provides the
//! tiny subset needed by `dpipe plan --json` and `dpipe sweep --json`: a
//! [`JsonValue`] tree with a spec-conformant `Display` (string escaping,
//! non-finite numbers as `null`), plus [`plan_json`] — the shared
//! machine-readable summary of a [`Plan`].

use diffusionpipe_core::{BackbonePartition, Plan};
use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Num(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The machine-readable summary of a [`Plan`], shared by `dpipe plan --json`
/// and the sweep report.
pub fn plan_json(plan: &Plan) -> JsonValue {
    JsonValue::Object(vec![
        (
            "id".to_owned(),
            JsonValue::Str(format!("{:016x}", plan.fingerprint())),
        ),
        (
            "num_stages".to_owned(),
            JsonValue::UInt(plan.hyper.num_stages as u64),
        ),
        (
            "num_micro_batches".to_owned(),
            JsonValue::UInt(plan.hyper.num_micro_batches as u64),
        ),
        (
            "group_size".to_owned(),
            JsonValue::UInt(plan.hyper.group_size as u64),
        ),
        (
            "partition".to_owned(),
            JsonValue::Str(
                match plan.partition {
                    BackbonePartition::Single(_) => "single",
                    BackbonePartition::Bidirectional(_) => "bidirectional",
                }
                .to_owned(),
            ),
        ),
        (
            "iteration_time_s".to_owned(),
            JsonValue::Num(plan.iteration_time),
        ),
        (
            "throughput_samples_per_s".to_owned(),
            JsonValue::Num(plan.throughput),
        ),
        ("bubble_ratio".to_owned(), JsonValue::Num(plan.bubble_ratio)),
        (
            "peak_memory_bytes".to_owned(),
            JsonValue::UInt(plan.peak_memory_bytes),
        ),
        ("summary".to_owned(), JsonValue::Str(plan.summary())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanRequest;
    use dpipe_cluster::ClusterSpec;
    use dpipe_model::zoo;

    #[test]
    fn renders_scalars_arrays_and_objects() {
        let v = JsonValue::Object(vec![
            ("a".to_owned(), JsonValue::UInt(3)),
            ("b".to_owned(), JsonValue::Num(0.5)),
            ("c".to_owned(), JsonValue::Bool(true)),
            (
                "d".to_owned(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Str("x".to_owned())]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":0.5,"c":true,"d":[null,"x"]}"#);
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let v = JsonValue::Array(vec![
            JsonValue::Str("a\"b\\c\nd\u{1}".to_owned()),
            JsonValue::Num(f64::NAN),
            JsonValue::Num(f64::INFINITY),
        ]);
        assert_eq!(v.to_string(), "[\"a\\\"b\\\\c\\nd\\u0001\",null,null]");
    }

    #[test]
    fn plan_json_round_trips_headline_numbers() {
        let plan = PlanRequest::new(
            zoo::stable_diffusion_v2_1(),
            ClusterSpec::single_node(8),
            64,
        )
        .plan()
        .unwrap();
        let rendered = plan_json(&plan).to_string();
        assert!(rendered.contains(&format!("\"id\":\"{:016x}\"", plan.fingerprint())));
        assert!(rendered.contains("\"throughput_samples_per_s\":"));
        assert!(rendered.contains("\"partition\":\"single\""));
        // No unescaped control characters and balanced braces.
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
    }
}
